"""Socket transport vs simulated transport — the differential + RTT bench.

PR 5 put a real TCP transport (subprocess servers on loopback) under the
unchanged cluster stack; this bench proves the wire changes *nothing* and
measures what it costs:

* **differential identity** — a (2, 3) Shamir and an n=3 additive
  deployment return byte-identical query results, combined shares and
  per-server call/byte counters over :class:`SocketTransport` (real
  subprocess servers) vs :class:`SimulatedTransport`, *including with one
  server killed mid-run* (the socket side takes a real SIGKILL — the
  surviving fleet completes via quorum — and the transport-level down
  marking then maps the crash onto the same client-side semantics the
  simulated side models),
* **measured cost** — wall-clock round-trip of a minimal structural call
  and end-to-end query throughput over the real wire, alongside the
  in-process figures, emitted to ``BENCH_socket_transport.json`` so the
  transport's overhead is tracked from this PR on.

Run as a script to (re)generate the JSON::

    PYTHONPATH=src python benchmarks/bench_socket_transport.py [--quick]

``--quick`` (or ``REPRO_BENCH_QUICK=1`` under pytest) shrinks the document
and the measurement loops for CI; the identity assertions always run.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import pytest

from repro.core.database import EncryptedXMLDatabase
from repro.rmi.socket import ServerUnavailable
from repro.xmark.generator import generate_document
from repro.xmldoc.dtd import XMARK_DTD

SEED = b"bench-socket-seed-0123456789abcd"

#: scale 0.05 generates the same 598-node document as the cluster benches
DOCUMENT_SCALE = 0.05
QUICK_SCALE = 0.02

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: one containment-heavy, one descendant-heavy, one strict (fetch-path) query
QUERIES = [
    ("//city", "advanced", False),
    ("/site//person//city", "advanced", False),
    ("/site/people/person", "simple", True),
]

#: the two deployments of the acceptance criterion, each with the server
#: the fault half of the differential kills: any server for the threshold
#: scheme, but a regenerable PRG lane for n-of-n additive (the last server
#: stores the irreplaceable residual — losing it is unrecoverable by design)
CONFIGS = [
    ("additive", dict(servers=3, sharing="additive"), 0),
    ("shamir", dict(servers=3, threshold=2, sharing="shamir"), 2),
]

#: the Shamir server killed by the quorum-resilience test
VICTIM = 2

OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_socket_transport.json"


def _document(scale=None):
    return generate_document(scale=scale or (QUICK_SCALE if QUICK else DOCUMENT_SCALE), seed=4242)


def _build(document, mode, **kwargs):
    return EncryptedXMLDatabase.from_document(
        document,
        tag_names=XMARK_DTD.element_names(),
        seed=SEED,
        p=83,
        keep_plaintext=False,
        transport=mode,
        **kwargs,
    )


def _run_queries(database):
    outcomes = []
    for query, engine, strict in QUERIES:
        result = database.query(query, engine=engine, strict=strict)
        outcomes.append((result.matches, result.counters))
    return outcomes


def _comparable_stats(database):
    """Per-server + aggregate counters with the measured-vs-modeled gauges
    (latency, makespan) left out — those are *supposed* to differ."""

    def strip(snapshot):
        snapshot = dict(snapshot)
        snapshot.pop("simulated_latency")
        snapshot.pop("makespan")
        return snapshot

    per_server = [strip(stats.snapshot()) for stats in database.per_server_stats]
    aggregate = strip(database.transport_stats.snapshot())
    return per_server, aggregate


def _assert_byte_identical(simulated, socketed):
    expected = _run_queries(simulated)
    actual = _run_queries(socketed)
    for (expected_matches, expected_counters), (matches, counters) in zip(expected, actual):
        assert matches == expected_matches
        assert counters == expected_counters
    sim_servers, sim_aggregate = _comparable_stats(simulated)
    sock_servers, sock_aggregate = _comparable_stats(socketed)
    assert sock_servers == sim_servers
    assert sock_aggregate == sim_aggregate
    pres = list(range(1, min(41, simulated.node_count)))
    assert socketed.cluster_client.fetch_shares_batch(pres) == (
        simulated.cluster_client.fetch_shares_batch(pres)
    )


@pytest.fixture(scope="module")
def bench_document():
    return _document()


@pytest.mark.parametrize(
    "label,config,victim", CONFIGS, ids=[label for label, _, _ in CONFIGS]
)
def test_socket_transport_is_byte_identical(bench_document, label, config, victim):
    """Acceptance: results, shares and per-server call/byte counters are
    identical over real subprocess servers and the in-process simulation —
    before any fault, and again after one server is killed mid-run."""
    simulated = _build(bench_document, "simulated", **config)
    with _build(bench_document, "socket", **config) as socketed:
        _assert_byte_identical(simulated, socketed)

        # --- kill one server mid-run: a real SIGKILL on the socket side ---
        socketed.socket_cluster.kill_server(victim)
        probe = socketed.transport.transports[victim].invoke_detailed(None, "node_count")
        assert isinstance(probe.error, ServerUnavailable)  # the crash is real

        # Map the crash onto the transports' down semantics on both sides
        # (the simulated side has no process to kill), settle the probe's
        # traffic out of the counters, and prove the identity again.
        socketed.transport.set_down(victim)
        simulated.transport.set_down(victim)
        socketed.reset_transport_stats()
        simulated.reset_transport_stats()
        _assert_byte_identical(simulated, socketed)
        per_server, _ = _comparable_stats(socketed)
        assert per_server[victim]["errors"] > 0  # the dead server is charged


def test_killed_server_completes_via_quorum_without_down_marking(bench_document):
    """Without any client-side marking, the (2, 3) fleet keeps answering
    after a real SIGKILL: quorum completion and fail-over absorb the crash."""
    config = dict(CONFIGS[1][1])
    with _build(bench_document, "socket", **config) as database:
        before = [matches for matches, _ in _run_queries(database)]
        database.socket_cluster.kill_server(VICTIM)
        after = [matches for matches, _ in _run_queries(database)]
        assert after == before
        assert database.per_server_stats[VICTIM].errors > 0


# ----------------------------------------------------------------------
# Measured round-trip and throughput
# ----------------------------------------------------------------------


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _measure(database, rtt_rounds, query_rounds):
    """Measured RTT of a minimal structural call + end-to-end query cost."""
    client = database.cluster_client
    rtts = []
    for _ in range(rtt_rounds):
        start = time.perf_counter()
        client.node_count()
        rtts.append(time.perf_counter() - start)
    database.reset_transport_stats()
    start = time.perf_counter()
    for _ in range(query_rounds):
        _run_queries(database)
    elapsed = time.perf_counter() - start
    aggregate = database.transport_stats
    executed = query_rounds * len(QUERIES)
    return {
        "rtt_median_us": round(_median(rtts) * 1e6, 1),
        "queries": executed,
        "elapsed_seconds": round(elapsed, 4),
        "queries_per_second": round(executed / elapsed, 2) if elapsed else None,
        "calls": aggregate.calls,
        "total_bytes": aggregate.total_bytes,
        "bytes_per_query": round(aggregate.bytes_per_query, 1),
        "errors": aggregate.errors,
    }


def build_report(document, quick=False):
    """Socket vs simulated cost figures for both deployment schemes."""
    rtt_rounds = 20 if quick else 100
    query_rounds = 2 if quick else 5
    series = []
    for label, config, _ in CONFIGS:
        for mode in ("simulated", "socket"):
            database = _build(document, mode, **config)
            try:
                row = _measure(database, rtt_rounds, query_rounds)
            finally:
                database.close()
            row.update({"sharing": label, "n": config["servers"], "mode": mode})
            series.append(row)
    return {
        "benchmark": "socket_transport",
        "document": {
            "generator": "xmark",
            "scale": QUICK_SCALE if quick else DOCUMENT_SCALE,
            "nodes": None,  # filled in by _emit
        },
        "queries": [query for query, _, _ in QUERIES],
        "series": series,
    }


def _emit(document, quick, path=OUTPUT_PATH):
    report = build_report(document, quick=quick)
    probe = _build(document, "simulated", servers=2)
    report["document"]["nodes"] = probe.node_count
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def test_report_json_is_emitted(bench_document, tmp_path):
    report = _emit(bench_document, quick=QUICK, path=tmp_path / "BENCH_socket_transport.json")
    by_key = {(row["sharing"], row["mode"]): row for row in report["series"]}
    for label, _, _ in CONFIGS:
        socketed = by_key[(label, "socket")]
        simulated = by_key[(label, "simulated")]
        # the wire costs real time but never extra traffic or failures
        assert socketed["rtt_median_us"] > 0
        assert socketed["errors"] == 0
        assert socketed["calls"] == simulated["calls"]
        assert socketed["total_bytes"] == simulated["total_bytes"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small document and reduced measurement loops (CI mode)",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT_PATH,
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)
    document = _document(scale=QUICK_SCALE if args.quick else DOCUMENT_SCALE)
    report = _emit(document, quick=args.quick, path=args.output)
    print("wrote %s (%d series rows, %d-node document)" % (
        args.output, len(report["series"]), report["document"]["nodes"]
    ))
    for row in report["series"]:
        print(
            "  %-8s n=%d %-10s rtt=%8.1fus  %6.1f q/s  calls=%d bytes/query=%.0f errors=%d"
            % (
                row["sharing"], row["n"], row["mode"], row["rtt_median_us"],
                row["queries_per_second"], row["calls"], row["bytes_per_query"],
                row["errors"],
            )
        )


if __name__ == "__main__":
    main()
