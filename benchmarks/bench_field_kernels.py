"""Table-driven field kernels vs the naive dispatched arithmetic path.

Encodes the same 598-node XMark document (the document of
``bench_batch_pipeline.py``) and runs one query workload over it under two
field configurations, each compared against the ``"naive"`` reference
backend — which reproduces the pre-kernel arithmetic exactly: one
dynamically-dispatched ``Field`` method call per coefficient operation and
no PRG share memo:

* ``F_83`` — the paper's prime field, served by :class:`PrimeKernel`
  (direct modular arithmetic + Kronecker-substitution convolution).  The
  598-node encode is dominated by parsing/PRG/storage rather than
  arithmetic, so the encode win is modest; the query workload, which *is*
  arithmetic-bound, runs several times faster.
* ``F_81 = F_{3^4}`` — an equally valid field for the 77-name XMark DTD
  (the paper allows any prime power ``> #tags``), served by
  :class:`TableKernel`.  The naive path pays the
  ``ExtensionField.to_coeffs``/``from_coeffs`` round trip on every
  coefficient product; the log/exp tables turn that into O(1) lookups and
  deliver the headline speedups of the kernel layer.

Acceptance criteria asserted below: ≥ 3× faster XMark encode and ≥ 2×
faster query evaluation vs the naive path, with **byte-identical** stored
shares, query results and evaluation counters under both backends (the
kernels change the speed of the arithmetic, not one bit of its output).

Set ``REPRO_BENCH_QUICK=1`` (the CI quick mode) to cap the query timing at
best-of-two repetitions; the identity assertions are unaffected.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import pytest

from repro.encode.encoder import Encoder
from repro.encode.tagmap import TagMap
from repro.engines.advanced import AdvancedQueryEngine
from repro.engines.simple import SimpleQueryEngine
from repro.filters.client import ClientFilter
from repro.filters.interface import MatchRule
from repro.filters.server import ServerFilter
from repro.gf.extension import ExtensionField
from repro.gf.kernels import HAS_NUMPY
from repro.gf.prime import PrimeField
from repro.metrics.counters import EvaluationCounters
from repro.xmark.generator import generate_document
from repro.xmldoc.dtd import XMARK_DTD
from repro.xmldoc.parser import ContentHandler, StreamingParser
from repro.xmldoc.serializer import serialize

SEED = b"bench-kernel-seed-0123456789abcd"

#: scale 0.05 generates the same 598-node document as bench_batch_pipeline
DOCUMENT_SCALE = 0.05

#: the kernel x scale sweep encodes both the 598-node document and the
#: paper-sized ~10^4-node XMark document (scale 1.0 -> 10,918 nodes)
SCALES = {"small": 0.05, "large": 1.0}

#: committed trajectory of the sweep (regenerate with
#: ``python benchmarks/bench_field_kernels.py``); CI emits a quick-mode
#: sibling and gates on >25% speedup regressions against this baseline
OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_field_kernels.json"

#: acceptance floor: the numpy backend must beat the scalar prime kernel by
#: this factor on both encode and batch evaluation at the 10^4-node scale
GATE_MINIMUM = 5.0

#: non-strict descendant queries (containment evaluations) plus one strict
#: child query (equality tests: reconstructions + ring products)
QUERY_WORKLOAD = [
    ("//city", MatchRule.CONTAINMENT),
    ("/site//person//city", MatchRule.CONTAINMENT),
    ("/site/people/person", MatchRule.EQUALITY),
]

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: (field label, field factory, timed query repetitions, asserted minimum
#: encode / query speedups) — the extension field is where arithmetic
#: dominates both phases, so it carries the headline thresholds; the prime
#: field's encode is parse/PRG/storage-bound at this document size and is
#: asserted not to regress
PAIRS = {
    "F_83": (lambda: PrimeField(83), 3, 0.9, 2.0),
    "F_81": (lambda: ExtensionField(3, 4), 1, 3.0, 2.0),
}


def _make_field(label, backend):
    field = PAIRS[label][0]()  # plain constructors: no make_field cache sharing
    if backend is not None:
        field.set_kernel_backend(backend)
    return field


@pytest.fixture(scope="module")
def xml_text():
    return serialize(generate_document(scale=DOCUMENT_SCALE, seed=4242))


class _Stack:
    """One complete encode-and-query stack pinned to a kernel backend.

    The naive stack also disables the PRG share memo — the memo is part of
    this PR's kernel-layer work, so the baseline runs without it, exactly
    like the pre-kernel code did.
    """

    def __init__(self, xml_text, label, backend, encode_reps=3):
        self.backend = backend
        field = _make_field(label, backend)
        self.tag_map = TagMap.from_names(XMARK_DTD.element_names(), field=field)
        memo_size = 0 if backend == "naive" else 1024
        self.encoder = encoder = Encoder(self.tag_map, SEED, prg_memo_size=memo_size)
        # Best-of-N encode timing: encoding is cheap enough at the small
        # scale, and single-shot timings are too noisy for a ratio assert.
        self.encode_seconds = float("inf")
        for _ in range(encode_reps):
            started = time.perf_counter()
            self.encoded = encoder.encode_text(xml_text)
            self.encode_seconds = min(
                self.encode_seconds, time.perf_counter() - started
            )
        self.counters = EvaluationCounters()
        # A share cache covering the whole table keeps repeated timing
        # passes measuring arithmetic rather than LRU churn (identical for
        # every backend either way).
        server = ServerFilter(
            self.encoded.node_table,
            self.encoded.ring,
            share_cache_size=len(self.encoded.node_table),
        )
        self.client = ClientFilter(
            server, self.encoded.sharing, self.tag_map, counters=self.counters
        )
        self.engines = {
            "simple": SimpleQueryEngine(self.client),
            "advanced": AdvancedQueryEngine(self.client),
        }

    def rows(self):
        table = self.encoded.node_table
        return [
            (row["pre"], row["post"], row["parent"], tuple(row["share"]))
            for row in sorted(table, key=lambda row: row["pre"])
        ]

    def run_workload(self):
        """Execute the query workload once; returns the match tuples."""
        results = []
        for engine in ("simple", "advanced"):
            for query, rule in QUERY_WORKLOAD:
                results.append(self.engines[engine].execute(query, rule=rule).matches)
        return results


#: stacks shared between the pytest assertions and the sweep, keyed by
#: (field label, backend, scale label) so nothing is encoded twice per run
_SWEEP_STACKS = {}


def _sweep_stack(xml_text, label, backend, scale_label="small", encode_reps=3):
    key = (label, backend, scale_label)
    if key not in _SWEEP_STACKS:
        _SWEEP_STACKS[key] = _Stack(xml_text, label, backend, encode_reps=encode_reps)
    return _SWEEP_STACKS[key]


@pytest.fixture(params=sorted(PAIRS), scope="module")
def stacks(request, xml_text):
    label = request.param
    return (
        label,
        _sweep_stack(xml_text, label, None),
        _sweep_stack(xml_text, label, "naive"),
    )


def test_document_and_backends(stacks):
    label, kernel_stack, naive_stack = stacks
    assert len(kernel_stack.encoded.node_table) >= 500
    expected = "prime" if label == "F_83" else "table"
    assert kernel_stack.encoded.ring.kernel.name == expected
    assert naive_stack.encoded.ring.kernel.name == "naive"


def test_shares_are_byte_identical_across_backends(stacks):
    """Acceptance criterion: the kernels change nothing about the output."""
    _, kernel_stack, naive_stack = stacks
    assert kernel_stack.rows() == naive_stack.rows()


def test_encode_speedup(stacks):
    """Acceptance criterion: ≥ 3× faster XMark encode where arithmetic
    dominates (the table-kernel field); no regression on the prime field."""
    label, kernel_stack, naive_stack = stacks
    minimum = PAIRS[label][2]
    speedup = naive_stack.encode_seconds / kernel_stack.encode_seconds
    print(
        "\n%s encode: naive %.3fs / kernel %.3fs = %.1fx (needs %.1fx)"
        % (
            label,
            naive_stack.encode_seconds,
            kernel_stack.encode_seconds,
            speedup,
            minimum,
        )
    )
    assert speedup >= minimum, (
        "%s: expected >=%.1fx encode speedup, got %.2fx" % (label, minimum, speedup)
    )


def test_queries_identical_results_and_counters(stacks):
    """Acceptance criterion: identical results and evaluation counters."""
    _, kernel_stack, naive_stack = stacks
    kernel_stack.counters.reset()
    naive_stack.counters.reset()
    assert kernel_stack.run_workload() == naive_stack.run_workload()
    assert kernel_stack.counters.snapshot() == naive_stack.counters.snapshot()


def test_query_speedup_at_least_2x(stacks):
    """Acceptance criterion: ≥ 2× faster query evaluation on the kernels."""
    label, kernel_stack, naive_stack = stacks
    repetitions = 2 if QUICK else max(2, PAIRS[label][1])
    minimum = PAIRS[label][3]
    # One warm-up pass per stack so share caches are warm on both sides
    # before timing (the naive stack has no PRG memo to warm); best-of-N
    # per-repetition timing keeps a noise spike on a loaded CI runner from
    # failing a ratio the arithmetic comfortably clears.
    kernel_stack.run_workload()
    naive_stack.run_workload()
    timings = {}
    for name, stack in (("kernel", kernel_stack), ("naive", naive_stack)):
        best = float("inf")
        for _ in range(repetitions):
            started = time.perf_counter()
            stack.run_workload()
            best = min(best, time.perf_counter() - started)
        timings[name] = best
    speedup = timings["naive"] / timings["kernel"]
    print(
        "\n%s queries: naive %.3fs / kernel %.3fs = %.1fx (needs %.1fx)"
        % (label, timings["naive"], timings["kernel"], speedup, minimum)
    )
    assert speedup >= minimum, (
        "%s: expected >=%.1fx query speedup, got %.2fx" % (label, minimum, speedup)
    )


@pytest.mark.parametrize("backend", ["kernel", "naive"])
def test_query_wallclock(benchmark, stacks, backend):
    """pytest-benchmark timings of the workload on both backends."""
    label, kernel_stack, naive_stack = stacks
    stack = kernel_stack if backend == "kernel" else naive_stack
    if label == "F_81" and backend == "naive" and QUICK:
        pytest.skip("naive extension-field workload is too slow for quick mode")
    benchmark(stack.run_workload)
    benchmark.extra_info["field"] = label
    benchmark.extra_info["backend"] = stack.encoded.ring.kernel.name


# ----------------------------------------------------------------------
# The numpy backend: identity at the small scale, speed at the large one
# ----------------------------------------------------------------------

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")


@needs_numpy
def test_numpy_stack_is_byte_identical(stacks, xml_text):
    """The vectorized backend changes nothing about shares, results or
    counters — only the wall clock."""
    label, kernel_stack, _ = stacks
    numpy_stack = _sweep_stack(xml_text, label, "numpy")
    assert numpy_stack.encoded.ring.kernel.name == "numpy"
    assert numpy_stack.rows() == kernel_stack.rows()
    numpy_stack.counters.reset()
    kernel_stack.counters.reset()
    assert numpy_stack.run_workload() == kernel_stack.run_workload()
    assert numpy_stack.counters.snapshot() == kernel_stack.counters.snapshot()


# ----------------------------------------------------------------------
# Kernel x scale sweep -> BENCH_field_kernels.json
# ----------------------------------------------------------------------

#: auto-selected kernel name per field (the sweep's scalar baseline)
_AUTO_KERNEL = {"F_83": "prime", "F_81": "table"}


class _EventRecorder(ContentHandler):
    """Captures the SAX event stream once so share-encode timing can replay
    it without re-parsing the XML on every repetition."""

    def __init__(self):
        self.events = []

    def start_element(self, tag, attributes):
        self.events.append((True, tag, attributes))

    def end_element(self, tag):
        self.events.append((False, tag, None))

    def characters(self, text):
        return None


_EVENT_CACHE = {}


def _events_for(scale_label, xml_text):
    if scale_label not in _EVENT_CACHE:
        recorder = _EventRecorder()
        StreamingParser(recorder).parse_string(xml_text)
        _EVENT_CACHE[scale_label] = recorder.events
    return _EVENT_CACHE[scale_label]


def _share_encode_seconds(stack, events, repetitions):
    """Best-of-N wall clock of the share-generation phase of an encode.

    Replays the pre-recorded SAX events through a fresh encoding handler
    (node polynomial products, PRG share splitting, bulk row storage) —
    everything the field kernels own.  XML parsing and B-tree index builds
    are excluded: they are kernel-independent and dominate the full
    ``encode_text`` wall clock once the arithmetic is vectorized (the full
    time is still recorded as ``encode_seconds``).
    """
    from repro.encode.encoder import _EncodingHandler, node_table_schema
    from repro.storage.database import Database

    best = float("inf")
    for _ in range(repetitions):
        table = Database().create_table(node_table_schema())
        handler = _EncodingHandler(stack.encoder, [table], stack.encoder.sharing)
        started = time.perf_counter()
        for is_start, tag, attributes in events:
            if is_start:
                handler.start_element(tag, attributes)
            else:
                handler.end_element(tag)
        handler.flush()
        best = min(best, time.perf_counter() - started)
    return best


def _workload_seconds(stack, repetitions):
    """Best-of-N wall clock of one full query-workload pass (caches warm)."""
    stack.run_workload()
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        stack.run_workload()
        best = min(best, time.perf_counter() - started)
    return best


def _batch_eval_seconds(stack, repetitions):
    """Best-of-N wall clock of one whole-document containment sweep.

    This is the batch-query primitive the kernels accelerate end to end:
    ``evaluate_batch`` on the server (one 2-D Horner sweep over every stored
    share) plus the client's regenerate-evaluate-add pass.  Small documents
    are timed in blocks so the per-call number stays above timer noise.
    """
    pres = [row["pre"] for row in stack.encoded.node_table]
    point = stack.tag_map.value("city")
    stack.client.shared_evaluation_many(pres, point)  # warm the share LRU
    inner = max(1, 6000 // max(1, len(pres)))
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        for _ in range(inner):
            stack.client.shared_evaluation_many(pres, point)
        best = min(best, time.perf_counter() - started)
    return best / inner


def build_trajectory(quick):
    """Run the kernel x scale sweep and return the JSON-ready trajectory.

    Quick mode (CI) drops the large-scale extension-field stacks and the
    large-scale naive baseline — the committed full-mode baseline carries
    those rows; the regression gate only compares keys present in both.
    """
    combos = [(label, "small") for label in sorted(PAIRS)]
    combos.append(("F_83", "large"))
    if not quick:
        combos.append(("F_81", "large"))
    documents = {}
    series = []
    by_key = {}
    for label, scale_label in combos:
        if scale_label not in documents:
            documents[scale_label] = serialize(
                generate_document(scale=SCALES[scale_label], seed=4242)
            )
        backends = ["naive", None, "numpy"] if scale_label == "small" else [None, "numpy"]
        if not HAS_NUMPY:
            backends = [backend for backend in backends if backend != "numpy"]
        encode_reps = 3 if scale_label == "small" else (2 if quick else 3)
        workload_reps = (1 if quick else 3) if scale_label == "small" else 1
        batch_reps = 2 if quick else 3
        events = _events_for(scale_label, documents[scale_label])
        for backend in backends:
            stack = _sweep_stack(
                documents[scale_label], label, backend, scale_label, encode_reps
            )
            row = {
                "field": label,
                "scale": SCALES[scale_label],
                "scale_label": scale_label,
                "nodes": len(stack.encoded.node_table),
                "backend": backend or "auto",
                "kernel": stack.encoded.ring.kernel.name,
                "encode_seconds": round(stack.encode_seconds, 6),
                "share_encode_seconds": round(
                    _share_encode_seconds(stack, events, encode_reps), 6
                ),
                "batch_eval_seconds": round(
                    _batch_eval_seconds(stack, batch_reps), 9
                ),
                "workload_seconds": round(_workload_seconds(stack, workload_reps), 6),
            }
            series.append(row)
            by_key[(label, scale_label, row["kernel"])] = row
    speedups = []
    for label, scale_label in combos:
        auto = _AUTO_KERNEL[label]
        for candidate, baseline in ((auto, "naive"), ("numpy", auto), ("numpy", "naive")):
            fast = by_key.get((label, scale_label, candidate))
            slow = by_key.get((label, scale_label, baseline))
            if fast is None or slow is None:
                continue
            speedups.append(
                {
                    "field": label,
                    "scale_label": scale_label,
                    "candidate": candidate,
                    "baseline": baseline,
                    "encode_speedup": round(
                        slow["encode_seconds"] / fast["encode_seconds"], 3
                    ),
                    "share_encode_speedup": round(
                        slow["share_encode_seconds"] / fast["share_encode_seconds"], 3
                    ),
                    "batch_eval_speedup": round(
                        slow["batch_eval_seconds"] / fast["batch_eval_seconds"], 3
                    ),
                    "workload_speedup": round(
                        slow["workload_seconds"] / fast["workload_seconds"], 3
                    ),
                }
            )
    gate = None
    fast = by_key.get(("F_83", "large", "numpy"))
    slow = by_key.get(("F_83", "large", "prime"))
    if fast is not None and slow is not None:
        # The gated encode metric is the share-generation phase (the part
        # the kernels own); full encode_seconds — including the
        # kernel-independent XML parse and index builds — is in the series.
        gate = {
            "field": "F_83",
            "scale_label": "large",
            "nodes": fast["nodes"],
            "candidate": "numpy",
            "baseline": "prime",
            "encode_speedup": round(
                slow["share_encode_seconds"] / fast["share_encode_seconds"], 3
            ),
            "batch_eval_speedup": round(
                slow["batch_eval_seconds"] / fast["batch_eval_seconds"], 3
            ),
            "minimum": GATE_MINIMUM,
        }
    return {
        "quick": quick,
        "numpy": HAS_NUMPY,
        "queries": [query for query, _ in QUERY_WORKLOAD],
        "series": series,
        "speedups": speedups,
        "gate": gate,
    }


def _write(trajectory, path):
    path.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")


_TRAJECTORY = {}


@pytest.fixture(scope="module")
def trajectory():
    if "value" not in _TRAJECTORY:
        _TRAJECTORY["value"] = build_trajectory(quick=QUICK)
    return _TRAJECTORY["value"]


def test_sweep_covers_both_scales(trajectory):
    keys = {(row["field"], row["scale_label"], row["kernel"]) for row in trajectory["series"]}
    assert ("F_83", "small", "prime") in keys
    assert ("F_83", "large", "prime") in keys
    assert ("F_81", "small", "table") in keys
    if HAS_NUMPY:
        assert ("F_83", "large", "numpy") in keys
    large = next(
        row for row in trajectory["series"] if row["scale_label"] == "large"
    )
    assert large["nodes"] >= 10_000


@needs_numpy
def test_numpy_gate_at_10k_nodes(trajectory):
    """Acceptance criterion: >=5x encode and >=5x batch-query throughput
    over the scalar prime kernel at the 10^4-node scale (quick CI mode uses
    a relaxed floor; the committed full-mode JSON carries the real gate —
    ``check_bench_regression.py`` guards it against decay)."""
    gate = trajectory["gate"]
    assert gate is not None
    minimum = 2.0 if QUICK else GATE_MINIMUM
    print(
        "\nnumpy gate (%d nodes): encode %.1fx, batch eval %.1fx (needs %.1fx)"
        % (gate["nodes"], gate["encode_speedup"], gate["batch_eval_speedup"], minimum)
    )
    assert gate["encode_speedup"] >= minimum
    assert gate["batch_eval_speedup"] >= minimum


def test_trajectory_json_is_emitted(trajectory, tmp_path):
    path = tmp_path / "BENCH_field_kernels.json"
    _write(trajectory, path)
    loaded = json.loads(path.read_text())
    assert loaded["series"] and loaded["speedups"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sweep: skips the large-scale extension-field and "
        "naive stacks (CI mode)",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT_PATH,
        help="where to write the JSON trajectory (default: repo root)",
    )
    args = parser.parse_args(argv)
    trajectory = build_trajectory(quick=args.quick)
    _write(trajectory, args.output)
    print("wrote %s (%d series rows)" % (args.output, len(trajectory["series"])))
    for row in trajectory["series"]:
        print(
            "  %-5s %-5s %-6s nodes=%6d encode=%8.3fs share-encode=%8.3fs"
            " batch-eval=%9.6fs workload=%8.3fs"
            % (
                row["field"], row["scale_label"], row["kernel"], row["nodes"],
                row["encode_seconds"], row["share_encode_seconds"],
                row["batch_eval_seconds"], row["workload_seconds"],
            )
        )
    gate = trajectory["gate"]
    if gate is not None:
        print(
            "gate: numpy vs prime at %d nodes: share encode %.1fx, batch eval %.1fx (floor %.1fx)"
            % (gate["nodes"], gate["encode_speedup"], gate["batch_eval_speedup"], gate["minimum"])
        )


if __name__ == "__main__":
    main()
