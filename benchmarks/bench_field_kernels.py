"""Table-driven field kernels vs the naive dispatched arithmetic path.

Encodes the same 598-node XMark document (the document of
``bench_batch_pipeline.py``) and runs one query workload over it under two
field configurations, each compared against the ``"naive"`` reference
backend — which reproduces the pre-kernel arithmetic exactly: one
dynamically-dispatched ``Field`` method call per coefficient operation and
no PRG share memo:

* ``F_83`` — the paper's prime field, served by :class:`PrimeKernel`
  (direct modular arithmetic + Kronecker-substitution convolution).  The
  598-node encode is dominated by parsing/PRG/storage rather than
  arithmetic, so the encode win is modest; the query workload, which *is*
  arithmetic-bound, runs several times faster.
* ``F_81 = F_{3^4}`` — an equally valid field for the 77-name XMark DTD
  (the paper allows any prime power ``> #tags``), served by
  :class:`TableKernel`.  The naive path pays the
  ``ExtensionField.to_coeffs``/``from_coeffs`` round trip on every
  coefficient product; the log/exp tables turn that into O(1) lookups and
  deliver the headline speedups of the kernel layer.

Acceptance criteria asserted below: ≥ 3× faster XMark encode and ≥ 2×
faster query evaluation vs the naive path, with **byte-identical** stored
shares, query results and evaluation counters under both backends (the
kernels change the speed of the arithmetic, not one bit of its output).

Set ``REPRO_BENCH_QUICK=1`` (the CI quick mode) to cap the query timing at
best-of-two repetitions; the identity assertions are unaffected.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.encode.encoder import Encoder
from repro.encode.tagmap import TagMap
from repro.engines.advanced import AdvancedQueryEngine
from repro.engines.simple import SimpleQueryEngine
from repro.filters.client import ClientFilter
from repro.filters.interface import MatchRule
from repro.filters.server import ServerFilter
from repro.gf.extension import ExtensionField
from repro.gf.prime import PrimeField
from repro.metrics.counters import EvaluationCounters
from repro.xmark.generator import generate_document
from repro.xmldoc.dtd import XMARK_DTD
from repro.xmldoc.serializer import serialize

SEED = b"bench-kernel-seed-0123456789abcd"

#: scale 0.05 generates the same 598-node document as bench_batch_pipeline
DOCUMENT_SCALE = 0.05

#: non-strict descendant queries (containment evaluations) plus one strict
#: child query (equality tests: reconstructions + ring products)
QUERY_WORKLOAD = [
    ("//city", MatchRule.CONTAINMENT),
    ("/site//person//city", MatchRule.CONTAINMENT),
    ("/site/people/person", MatchRule.EQUALITY),
]

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: (field label, field factory, timed query repetitions, asserted minimum
#: encode / query speedups) — the extension field is where arithmetic
#: dominates both phases, so it carries the headline thresholds; the prime
#: field's encode is parse/PRG/storage-bound at this document size and is
#: asserted not to regress
PAIRS = {
    "F_83": (lambda: PrimeField(83), 3, 0.9, 2.0),
    "F_81": (lambda: ExtensionField(3, 4), 1, 3.0, 2.0),
}


def _make_field(label, backend):
    field = PAIRS[label][0]()  # plain constructors: no make_field cache sharing
    if backend is not None:
        field.set_kernel_backend(backend)
    return field


@pytest.fixture(scope="module")
def xml_text():
    return serialize(generate_document(scale=DOCUMENT_SCALE, seed=4242))


class _Stack:
    """One complete encode-and-query stack pinned to a kernel backend.

    The naive stack also disables the PRG share memo — the memo is part of
    this PR's kernel-layer work, so the baseline runs without it, exactly
    like the pre-kernel code did.
    """

    def __init__(self, xml_text, label, backend):
        self.backend = backend
        field = _make_field(label, backend)
        tag_map = TagMap.from_names(XMARK_DTD.element_names(), field=field)
        memo_size = 0 if backend == "naive" else 1024
        encoder = Encoder(tag_map, SEED, prg_memo_size=memo_size)
        # Best-of-three encode timing in every mode: encoding is cheap
        # enough, and single-shot timings are too noisy for a ratio assert.
        self.encode_seconds = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            self.encoded = encoder.encode_text(xml_text)
            self.encode_seconds = min(
                self.encode_seconds, time.perf_counter() - started
            )
        self.counters = EvaluationCounters()
        server = ServerFilter(self.encoded.node_table, self.encoded.ring)
        client = ClientFilter(
            server, self.encoded.sharing, tag_map, counters=self.counters
        )
        self.engines = {
            "simple": SimpleQueryEngine(client),
            "advanced": AdvancedQueryEngine(client),
        }

    def rows(self):
        table = self.encoded.node_table
        return [
            (row["pre"], row["post"], row["parent"], tuple(row["share"]))
            for row in sorted(table, key=lambda row: row["pre"])
        ]

    def run_workload(self):
        """Execute the query workload once; returns the match tuples."""
        results = []
        for engine in ("simple", "advanced"):
            for query, rule in QUERY_WORKLOAD:
                results.append(self.engines[engine].execute(query, rule=rule).matches)
        return results


_STACKS = {}


@pytest.fixture(params=sorted(PAIRS), scope="module")
def stacks(request, xml_text):
    label = request.param
    if label not in _STACKS:
        _STACKS[label] = (
            label,
            _Stack(xml_text, label, backend=None),
            _Stack(xml_text, label, backend="naive"),
        )
    return _STACKS[label]


def test_document_and_backends(stacks):
    label, kernel_stack, naive_stack = stacks
    assert len(kernel_stack.encoded.node_table) >= 500
    expected = "prime" if label == "F_83" else "table"
    assert kernel_stack.encoded.ring.kernel.name == expected
    assert naive_stack.encoded.ring.kernel.name == "naive"


def test_shares_are_byte_identical_across_backends(stacks):
    """Acceptance criterion: the kernels change nothing about the output."""
    _, kernel_stack, naive_stack = stacks
    assert kernel_stack.rows() == naive_stack.rows()


def test_encode_speedup(stacks):
    """Acceptance criterion: ≥ 3× faster XMark encode where arithmetic
    dominates (the table-kernel field); no regression on the prime field."""
    label, kernel_stack, naive_stack = stacks
    minimum = PAIRS[label][2]
    speedup = naive_stack.encode_seconds / kernel_stack.encode_seconds
    print(
        "\n%s encode: naive %.3fs / kernel %.3fs = %.1fx (needs %.1fx)"
        % (
            label,
            naive_stack.encode_seconds,
            kernel_stack.encode_seconds,
            speedup,
            minimum,
        )
    )
    assert speedup >= minimum, (
        "%s: expected >=%.1fx encode speedup, got %.2fx" % (label, minimum, speedup)
    )


def test_queries_identical_results_and_counters(stacks):
    """Acceptance criterion: identical results and evaluation counters."""
    _, kernel_stack, naive_stack = stacks
    kernel_stack.counters.reset()
    naive_stack.counters.reset()
    assert kernel_stack.run_workload() == naive_stack.run_workload()
    assert kernel_stack.counters.snapshot() == naive_stack.counters.snapshot()


def test_query_speedup_at_least_2x(stacks):
    """Acceptance criterion: ≥ 2× faster query evaluation on the kernels."""
    label, kernel_stack, naive_stack = stacks
    repetitions = 2 if QUICK else max(2, PAIRS[label][1])
    minimum = PAIRS[label][3]
    # One warm-up pass per stack so share caches are warm on both sides
    # before timing (the naive stack has no PRG memo to warm); best-of-N
    # per-repetition timing keeps a noise spike on a loaded CI runner from
    # failing a ratio the arithmetic comfortably clears.
    kernel_stack.run_workload()
    naive_stack.run_workload()
    timings = {}
    for name, stack in (("kernel", kernel_stack), ("naive", naive_stack)):
        best = float("inf")
        for _ in range(repetitions):
            started = time.perf_counter()
            stack.run_workload()
            best = min(best, time.perf_counter() - started)
        timings[name] = best
    speedup = timings["naive"] / timings["kernel"]
    print(
        "\n%s queries: naive %.3fs / kernel %.3fs = %.1fx (needs %.1fx)"
        % (label, timings["naive"], timings["kernel"], speedup, minimum)
    )
    assert speedup >= minimum, (
        "%s: expected >=%.1fx query speedup, got %.2fx" % (label, minimum, speedup)
    )


@pytest.mark.parametrize("backend", ["kernel", "naive"])
def test_query_wallclock(benchmark, stacks, backend):
    """pytest-benchmark timings of the workload on both backends."""
    label, kernel_stack, naive_stack = stacks
    stack = kernel_stack if backend == "kernel" else naive_stack
    if label == "F_81" and backend == "naive" and QUICK:
        pytest.skip("naive extension-field workload is too slow for quick mode")
    benchmark(stack.run_workload)
    benchmark.extra_info["field"] = label
    benchmark.extra_info["backend"] = stack.encoded.ring.kernel.name
