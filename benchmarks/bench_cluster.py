"""Multi-server share clusters — correctness, fault tolerance, per-server cost.

Runs the same 598-node XMark document as ``bench_batch_pipeline.py`` through
the cluster stack and asserts the acceptance criteria of the sharding work:

* a :class:`~repro.filters.cluster.ClusterClient` over an ``n = 1`` additive
  deployment produces **byte-identical** query results and unchanged
  evaluation counters vs the existing single-server ``ClientFilter`` path
  (the cluster layer is pure topology, not semantics),
* a (k, n) Shamir deployment returns identical results with any ``n − k``
  servers down,
* per-server calls-per-query stays O(1) per query step at ``n ∈ {2, 3, 5}``:
  adding servers scatters the same batched calls wider instead of
  multiplying any single server's load,
* the share-bundle payloads ride the codec's compact matrix form, so the
  per-server byte volume of a cluster stays in the same order as the
  single-server trace.

Wall-clock timings for the scatter-gather overhead come last via
pytest-benchmark.  ``REPRO_BENCH_QUICK=1`` (the CI quick mode) skips the
timing round; the identity and cost assertions always run.
"""

from __future__ import annotations

import os
from itertools import combinations

import pytest

from repro.core.database import EncryptedXMLDatabase
from repro.xmark.generator import generate_document
from repro.xmldoc.dtd import XMARK_DTD

SEED = b"bench-cluster-seed-0123456789abc"

#: scale 0.05 generates the same 598-node document as bench_batch_pipeline
DOCUMENT_SCALE = 0.05

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

QUERIES = ["//city", "/site//person//city"]

ADDITIVE_SIZES = [2, 3, 5]

#: the (k, n) threshold deployment exercised by the failure sweep
SHAMIR_N, SHAMIR_K = 3, 2


@pytest.fixture(scope="module")
def cluster_document():
    return generate_document(scale=DOCUMENT_SCALE, seed=4242)


def _build(document, **kwargs) -> EncryptedXMLDatabase:
    return EncryptedXMLDatabase.from_document(
        document,
        tag_names=XMARK_DTD.element_names(),
        seed=SEED,
        p=83,
        keep_plaintext=False,
        **kwargs,
    )


@pytest.fixture(scope="module")
def single_database(cluster_document):
    return _build(cluster_document)


@pytest.fixture(scope="module")
def cluster_n1_database(cluster_document):
    return _build(cluster_document, cluster=True)


@pytest.fixture(scope="module", params=ADDITIVE_SIZES)
def additive_cluster(request, cluster_document):
    return _build(cluster_document, servers=request.param)


@pytest.fixture(scope="module")
def shamir_database(cluster_document):
    return _build(cluster_document, servers=SHAMIR_N, threshold=SHAMIR_K, sharing="shamir")


@pytest.mark.parametrize("engine", ["simple", "advanced"])
@pytest.mark.parametrize("query", QUERIES)
def test_cluster_n1_is_byte_identical_to_single_server(
    single_database, cluster_n1_database, engine, query
):
    """Acceptance criterion: the n=1 cluster differential on the 598-node doc."""
    assert single_database.node_count >= 500
    assert cluster_n1_database.node_count == single_database.node_count
    expected = single_database.query(query, engine=engine, strict=False)
    actual = cluster_n1_database.query(query, engine=engine, strict=False)
    assert actual.matches == expected.matches
    assert actual.counters == expected.counters


def test_cluster_n1_strict_differential(single_database, cluster_n1_database):
    expected = single_database.query("/site/people/person", engine="simple", strict=True)
    actual = cluster_n1_database.query("/site/people/person", engine="simple", strict=True)
    assert actual.matches == expected.matches
    assert actual.counters == expected.counters


def _nonzero(counters):
    """Counter deltas with zero entries dropped.

    Snapshot key *sets* depend on which counters a database ever touched
    (a strict query introduces the equality keys), so databases with
    different query histories are compared on the non-zero deltas.
    """
    return {key: value for key, value in counters.items() if value}


@pytest.mark.parametrize("engine", ["simple", "advanced"])
def test_additive_cluster_matches_single_server(single_database, additive_cluster, engine):
    for query in QUERIES:
        expected = single_database.query(query, engine=engine, strict=False)
        actual = additive_cluster.query(query, engine=engine, strict=False)
        assert actual.matches == expected.matches
        assert _nonzero(actual.counters) == _nonzero(expected.counters)


def test_shamir_survives_any_n_minus_k_failures(single_database, shamir_database):
    """Acceptance criterion: identical results with any n-k servers down."""
    transport = shamir_database.transport
    expected = {query: single_database.query(query).matches for query in QUERIES}
    down_sets = [
        down
        for count in range(1, SHAMIR_N - SHAMIR_K + 1)
        for down in combinations(range(SHAMIR_N), count)
    ]
    assert down_sets
    for down in down_sets:
        for index in down:
            transport.set_down(index)
        try:
            for query in QUERIES:
                assert shamir_database.query(query).matches == expected[query], (
                    "query %s diverged with servers %s down" % (query, list(down))
                )
        finally:
            for index in down:
                transport.set_down(index, down=False)


def test_per_server_calls_per_query_stay_constant_in_cluster_size(
    single_database, additive_cluster
):
    """Acceptance criterion: per-server calls-per-query is O(1) per query step.

    Scattering to n servers must not multiply any single server's load: the
    busiest server of an n-server cluster answers at most as many calls per
    query as the lone server of the classic deployment (plus the one-off
    structural calls that only hit the primary).
    """
    single_database.reset_transport_stats()
    additive_cluster.reset_transport_stats()
    for query in QUERIES:
        single_database.query(query, engine="advanced", strict=False)
        additive_cluster.query(query, engine="advanced", strict=False)

    single_calls_per_query = single_database.transport_stats.calls_per_query
    per_server = additive_cluster.per_server_stats
    assert all(stats.queries == len(QUERIES) for stats in per_server)
    busiest = max(stats.calls_per_query for stats in per_server)
    assert busiest <= single_calls_per_query, (
        "per-server load grew with cluster size: busiest %.1f vs single %.1f"
        % (busiest, single_calls_per_query)
    )
    # every share server sees the same scatter fan-out (±structural calls)
    quietest = min(stats.calls_per_query for stats in per_server)
    assert quietest > 0


def test_cluster_payload_bytes_stay_honest(single_database, additive_cluster):
    """The compact share-bundle codec keeps per-server bytes in the same
    order as the single-server trace instead of ballooning with framing."""
    single_database.reset_transport_stats()
    additive_cluster.reset_transport_stats()
    single_database.query("/site/people/person", engine="simple", strict=True)
    additive_cluster.query("/site/people/person", engine="simple", strict=True)
    single_bytes = single_database.transport_stats.bytes_per_query
    busiest_bytes = max(stats.bytes_per_query for stats in additive_cluster.per_server_stats)
    assert busiest_bytes <= 1.25 * single_bytes, (
        "per-server payload ballooned: %.0f vs single-server %.0f"
        % (busiest_bytes, single_bytes)
    )


def test_share_bundles_use_compact_matrix_encoding(single_database):
    from repro.rmi.codec import Codec

    server = single_database.server_filter
    bundle = server.fetch_shares_batch(list(range(1, 41)))
    payload = Codec().encode(bundle)
    assert payload[0:1] == b"W"
    # ~1 byte per F_83 coefficient plus 5 bytes framing per row
    assert len(payload) <= len(bundle) * (82 + 6)


@pytest.mark.skipif(QUICK, reason="timing round skipped in quick mode")
@pytest.mark.parametrize("query", ["//city"])
def test_cluster_query_wallclock(benchmark, additive_cluster, query):
    """Scatter-gather wall clock per cluster size (pytest-benchmark)."""
    result = benchmark(lambda: additive_cluster.query(query, engine="advanced", strict=False))
    benchmark.extra_info["servers"] = additive_cluster.num_servers
    benchmark.extra_info["result_size"] = result.result_size
