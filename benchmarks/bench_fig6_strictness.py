"""Figure 6 + Table 2 — execution time, strict vs non-strict, both engines.

Benchmarks every table-2 query in all four configurations of the paper's
strictness experiment ({simple, advanced} × {containment, equality}) and
prints the per-configuration execution times and result sizes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import register_record
from repro.experiments.strictness import run_strictness_experiment
from repro.experiments.workloads import TABLE2_QUERIES

_CONFIGURATIONS = [
    ("simple", False),
    ("simple", True),
    ("advanced", False),
    ("advanced", True),
]


@pytest.fixture(scope="module")
def figure6_record(bench_database):
    record = run_strictness_experiment(database=bench_database)
    register_record(record)
    return record


@pytest.mark.parametrize("query_number", range(1, len(TABLE2_QUERIES) + 1))
@pytest.mark.parametrize("engine,strict", _CONFIGURATIONS)
def test_strictness(benchmark, bench_database, figure6_record, engine, strict, query_number):
    """Time one table-2 query in one of the four configurations."""
    query = TABLE2_QUERIES[query_number - 1]
    result = benchmark(lambda: bench_database.query(query, engine=engine, strict=strict))
    benchmark.extra_info["query"] = query
    benchmark.extra_info["configuration"] = "%s/%s" % ("strict" if strict else "non-strict", engine)
    benchmark.extra_info["result_size"] = result.result_size
    benchmark.extra_info["evaluations"] = result.evaluations
    benchmark.extra_info["equality_tests"] = result.equality_tests


def test_advanced_beats_simple_on_descendant_queries(figure6_record):
    """The paper: the advanced algorithm outperforms the simple algorithm."""
    for query in TABLE2_QUERIES:
        if "//" not in query:
            continue
        simple = next(
            m for m in figure6_record.measurements
            if m.query == query and m.extra["configuration"] == "non-strict/simple"
        )
        advanced = next(
            m for m in figure6_record.measurements
            if m.query == query and m.extra["configuration"] == "non-strict/advanced"
        )
        assert advanced.evaluations <= simple.evaluations


def test_strict_checking_shrinks_result_sets(figure6_record):
    """Equality results are never larger than containment results."""
    for query in TABLE2_QUERIES:
        strict = next(
            m for m in figure6_record.measurements
            if m.query == query and m.extra["configuration"] == "strict/advanced"
        )
        loose = next(
            m for m in figure6_record.measurements
            if m.query == query and m.extra["configuration"] == "non-strict/advanced"
        )
        assert strict.result_size <= loose.result_size
