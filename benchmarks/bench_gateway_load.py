"""Asyncio wire + gateway under load — the differential + scaling bench.

PR 6 put a multiplexed asyncio transport under the unchanged cluster stack
(one pipelined connection per server, first-k quorum admission on real
arrival) and a gateway daemon that serves many concurrent client sessions
over one shared fleet.  This bench proves the new wire changes *nothing*
and measures what the multiplexing buys:

* **differential identity** — a (2, 3) Shamir and an n=3 additive
  deployment return byte-identical query results, combined shares and
  per-server call/byte counters over ``transport="asyncio"`` vs
  ``transport="socket"`` (both real subprocess fleets), *including with
  one server SIGKILLed mid-run*,
* **admission latency** — first-k ``invoke_quorum`` admits the fast
  replies while a delayed straggler is still sleeping, strictly faster
  than ``invoke_all`` (asserted, not just reported),
* **gateway scaling** — N concurrent client sessions share one
  ``repro-gateway`` over a fleet with a modeled per-request service delay
  (an injected WAN round trip: on a zero-latency loopback the pure-Python
  share math is the bottleneck and no transport could scale); pipelining
  sessions onto one connection per upstream server must lift aggregate
  throughput ≥ 2x from 1 to 8 clients.

Run as a script to (re)generate ``BENCH_gateway_load.json``::

    PYTHONPATH=src python benchmarks/bench_gateway_load.py [--quick]

``--quick`` (or ``REPRO_BENCH_QUICK=1`` under pytest) shrinks the document
and the measurement loops for CI; the identity assertions always run.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.core.database import EncryptedXMLDatabase
from repro.encode.encoder import Encoder
from repro.encode.tagmap import TagMap
from repro.engines.advanced import AdvancedQueryEngine
from repro.engines.simple import SimpleQueryEngine
from repro.filters.client import ClientFilter
from repro.filters.interface import MatchRule
from repro.gf.factory import make_field
from repro.prg.seed import SeedFile
from repro.rmi.aio import AsyncClusterTransport, AsyncSocketTransport, LoopThread
from repro.rmi.gateway import GatewayProcess
from repro.rmi.server import SocketCluster, SocketServer
from repro.rmi.socket import ServerUnavailable
from repro.xmark.generator import generate_document
from repro.xmldoc.dtd import XMARK_DTD

SEED = b"bench-gateway-seed-0123456789abc"

#: scale 0.05 generates the same 598-node document as the cluster benches
DOCUMENT_SCALE = 0.05
QUICK_SCALE = 0.02

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: one containment-heavy, one descendant-heavy, one strict (fetch-path) query
QUERIES = [
    ("//city", "advanced", False),
    ("/site//person//city", "advanced", False),
    ("/site/people/person", "simple", True),
]

ENGINES = {"advanced": AdvancedQueryEngine, "simple": SimpleQueryEngine}

#: the two deployments of the acceptance criterion, each with the server
#: the fault half of the differential kills (same choices as the socket
#: transport bench: any server for the threshold scheme, a regenerable PRG
#: lane for n-of-n additive)
CONFIGS = [
    ("additive", dict(servers=3, sharing="additive"), 0),
    ("shamir", dict(servers=3, threshold=2, sharing="shamir"), 2),
]

#: the modeled per-request service delay of the gateway-scaling fleet (an
#: injected WAN round trip; see the module docstring) and the straggler
#: delay of the quorum-admission measurement
GATEWAY_DELAY = 0.005
STRAGGLER_DELAY = 0.4

#: concurrent session counts of the scaling sweep and the asserted
#: aggregate-throughput lift from the first to the last of them
CLIENT_COUNTS = (1, 8) if QUICK else (1, 2, 4, 8)
MIN_SCALING = 1.3 if QUICK else 2.0

#: the repeated-workload scenario: this many sessions replay the same
#: query mix with the gateway cache off vs on; cache-on must lift the
#: aggregate throughput by at least this factor (PR 8 acceptance: 3x
#: full mode, relaxed under --quick where the loops are tiny)
REPEAT_SESSIONS = 8
MIN_CACHE_SPEEDUP = 1.5 if QUICK else 3.0
CACHE_BYTES = 32 * 1024 * 1024

#: the hog-vs-interactive scenario: one mux session keeps HOG_BURST
#: fetch_shares_batch rounds of HOG_BATCH nodes in flight (varying the
#: slices so the cache cannot absorb them) while an interactive session
#: issues single structural calls; under --fair with this per-session
#: cap, the interactive p95 must stay within MAX_FAIR_P95_FACTOR of its
#: solo baseline.  The scenario runs a larger modeled service delay than
#: the scaling sweep: the QoS bound is about *queueing* behind the hog's
#: admitted batches, so the modeled round trip must dominate the raw
#: CPU cost of one batch (on a zero-latency loopback nothing could)
FAIRNESS_DELAY = 0.025
HOG_BURST = 16
HOG_BATCH = 64
FAIR_CAP = 1
INTERACTIVE_CALLS = 30 if QUICK else 120
MAX_FAIR_P95_FACTOR = 4.0 if QUICK else 2.0

OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_gateway_load.json"


def _document(scale=None):
    return generate_document(scale=scale or (QUICK_SCALE if QUICK else DOCUMENT_SCALE), seed=4242)


def _build(document, mode, **kwargs):
    return EncryptedXMLDatabase.from_document(
        document,
        tag_names=XMARK_DTD.element_names(),
        seed=SEED,
        p=83,
        keep_plaintext=False,
        transport=mode,
        **kwargs,
    )


def _run_queries(database):
    outcomes = []
    for query, engine, strict in QUERIES:
        result = database.query(query, engine=engine, strict=strict)
        outcomes.append((result.matches, result.counters))
    return outcomes


def _comparable_stats(database):
    """Per-server + aggregate counters with the measured-vs-modeled gauges
    (latency, makespan) left out — those are *supposed* to differ."""

    def strip(snapshot):
        snapshot = dict(snapshot)
        snapshot.pop("simulated_latency")
        snapshot.pop("makespan")
        return snapshot

    per_server = [strip(stats.snapshot()) for stats in database.per_server_stats]
    aggregate = strip(database.transport_stats.snapshot())
    return per_server, aggregate


def _assert_byte_identical(socketed, asyncioed):
    expected = _run_queries(socketed)
    actual = _run_queries(asyncioed)
    for (expected_matches, expected_counters), (matches, counters) in zip(expected, actual):
        assert matches == expected_matches
        assert counters == expected_counters
    sock_servers, sock_aggregate = _comparable_stats(socketed)
    aio_servers, aio_aggregate = _comparable_stats(asyncioed)
    assert aio_servers == sock_servers
    assert aio_aggregate == sock_aggregate
    pres = list(range(1, min(41, socketed.node_count)))
    assert asyncioed.cluster_client.fetch_shares_batch(pres) == (
        socketed.cluster_client.fetch_shares_batch(pres)
    )


@pytest.fixture(scope="module")
def bench_document():
    return _document()


@pytest.mark.parametrize(
    "label,config,victim", CONFIGS, ids=[label for label, _, _ in CONFIGS]
)
def test_asyncio_transport_is_byte_identical(bench_document, label, config, victim):
    """Acceptance: results, shares and per-server call/byte counters are
    identical over the multiplexed asyncio wire and the threaded socket
    transport — before any fault, and again after one server of *each*
    fleet takes a real SIGKILL mid-run."""
    with _build(bench_document, "socket", **config) as socketed:
        with _build(bench_document, "asyncio", **config) as asyncioed:
            _assert_byte_identical(socketed, asyncioed)

            # --- kill one server mid-run: a real SIGKILL on both fleets ---
            socketed.socket_cluster.kill_server(victim)
            asyncioed.socket_cluster.kill_server(victim)
            probe = socketed.transport.transports[victim].invoke_detailed(None, "node_count")
            assert isinstance(probe.error, ServerUnavailable)  # the crash is real
            with pytest.raises(ServerUnavailable):
                asyncioed.transport.invoke(victim, "node_count")

            # Map the crash onto the transports' down semantics on both
            # sides, settle the probes' traffic out of the counters, and
            # prove the identity again over the surviving quorum.
            socketed.transport.set_down(victim)
            asyncioed.transport.set_down(victim)
            socketed.reset_transport_stats()
            asyncioed.reset_transport_stats()
            _assert_byte_identical(socketed, asyncioed)
            per_server, _ = _comparable_stats(asyncioed)
            assert per_server[victim]["errors"] > 0  # the dead server is charged


# ----------------------------------------------------------------------
# First-k quorum admission vs wait-for-all under an injected delay
# ----------------------------------------------------------------------


class _Echo:
    def whoami(self):  # pragma: no cover - trivial
        return "here"


def _measure_quorum_admission(rounds):
    """invoke_quorum(k=2) vs invoke_all over a fleet whose last server
    sleeps ``STRAGGLER_DELAY`` before every answer."""
    fleet = [SocketServer(_Echo(), name="quorum-%d" % i) for i in range(3)]
    for server in fleet:
        server.start()
    fleet[2].delay = STRAGGLER_DELAY
    cluster = AsyncClusterTransport([server.address for server in fleet])
    try:
        cluster.invoke_all("whoami")  # warm every connection (and the loop)
        cluster.drain()
        quorum_times, all_times = [], []
        for _ in range(rounds):
            start = time.perf_counter()
            replies = cluster.invoke_quorum("whoami", k=2)
            quorum_times.append(time.perf_counter() - start)
            assert sum(1 for reply in replies if reply.ok) >= 2
            cluster.drain()  # settle the straggler before the next round
            start = time.perf_counter()
            replies = cluster.invoke_all("whoami")
            all_times.append(time.perf_counter() - start)
            assert all(reply.ok for reply in replies)
        return _median(quorum_times), _median(all_times)
    finally:
        cluster.close()
        for server in fleet:
            server.close()


def test_quorum_admission_beats_wait_for_all():
    """Acceptance: admit-on-arrival first-k returns strictly before the
    injected straggler; wait-for-all pays the full delay."""
    quorum_s, all_s = _measure_quorum_admission(rounds=2 if QUICK else 3)
    assert all_s >= STRAGGLER_DELAY  # wait-for-all pays the sleep
    assert quorum_s < all_s  # strictly faster, as promised
    assert quorum_s < STRAGGLER_DELAY / 2  # and not by luck: no sleep paid


# ----------------------------------------------------------------------
# Gateway scaling: N concurrent sessions over one shared fleet
# ----------------------------------------------------------------------


class _GatewayStack:
    """A subprocess fleet with a modeled service delay + the gateway daemon.

    The deployment's tag map is pinned to F_83 so it matches the gateway's
    ``--p 83``: the gateway rebuilds the sharing scheme from the seed file
    and its field, and a field mismatch surfaces as share-verification
    failures (the auto-selected field for the XMark alphabet is F_79).
    """

    def __init__(self, document, delay, cache_bytes=0, fair=False, fair_cap=8):
        tag_map = TagMap.from_names(XMARK_DTD.element_names(), field=make_field(83))
        self.tag_map = tag_map
        self.deployment = Encoder(tag_map, SEED).deploy_document(
            document, servers=3, threshold=2, sharing="shamir"
        )
        self.cluster = SocketCluster.from_deployment(self.deployment, delay=delay)
        self._tmp = tempfile.mkdtemp(prefix="repro-gateway-bench-")
        seed_path = os.path.join(self._tmp, "seed.bin")
        SeedFile(SEED).save(seed_path)
        self.gateway = GatewayProcess(
            self.cluster.addresses,
            seed_path,
            p=83,
            sharing="shamir",
            threshold=2,
            cache_bytes=cache_bytes,
            fair=fair,
            fair_cap=fair_cap,
        )
        self.gateway.start()

    def close(self):
        try:
            self.gateway.shutdown()
        finally:
            self.cluster.shutdown()


def _run_session_load(stack, clients, rounds, collect=False):
    """``clients`` barrier-started sessions, each running ``rounds`` passes
    over the query mix; returns aggregate throughput + latency quantiles.
    With ``collect`` each session also records its (query, matches,
    counters) trace so two runs can be compared byte for byte."""
    barrier = threading.Barrier(clients + 1)
    latencies = [[] for _ in range(clients)]
    traces = [[] for _ in range(clients)]
    failures = []

    def worker(index):
        endpoint = stack.gateway.endpoint(timeout=60.0)
        try:
            client = ClientFilter(endpoint, stack.deployment.scheme, stack.tag_map)
            barrier.wait()
            for _ in range(rounds):
                for query, engine, strict in QUERIES:
                    rule = MatchRule.EQUALITY if strict else MatchRule.CONTAINMENT
                    start = time.perf_counter()
                    result = ENGINES[engine](client).execute(query, rule=rule)
                    latencies[index].append(time.perf_counter() - start)
                    if collect:
                        traces[index].append(
                            (query, result.matches, dict(result.counters))
                        )
        except Exception as error:  # pragma: no cover - diagnostic path
            failures.append("client %d: %r" % (index, error))
        finally:
            endpoint.close()

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    assert not failures, failures
    flat = sorted(sample for samples in latencies for sample in samples)
    row = {
        "clients": clients,
        "queries": len(flat),
        "elapsed_seconds": round(wall, 4),
        "queries_per_second": round(len(flat) / wall, 2),
        "latency_p50_ms": round(flat[len(flat) // 2] * 1e3, 1),
        "latency_p95_ms": round(flat[int(len(flat) * 0.95)] * 1e3, 1),
    }
    if collect:
        return row, traces
    return row


def _gateway_series(document, rounds):
    stack = _GatewayStack(document, delay=GATEWAY_DELAY)
    try:
        _run_session_load(stack, 1, 1)  # warm the fleet connections + caches
        return [_run_session_load(stack, n, rounds) for n in CLIENT_COUNTS]
    finally:
        stack.close()


def _scaling(series):
    return series[-1]["queries_per_second"] / series[0]["queries_per_second"]


def test_gateway_throughput_scales_with_concurrent_clients(bench_document):
    """Acceptance: 1 -> 8 concurrent sessions over one gateway lift
    aggregate throughput by at least ``MIN_SCALING`` on the delay-modeled
    fleet (2x full mode, relaxed in --quick CI mode)."""
    series = _gateway_series(bench_document, rounds=2 if QUICK else 3)
    assert series[0]["clients"] == 1 and series[-1]["clients"] == 8
    assert _scaling(series) >= MIN_SCALING


# ----------------------------------------------------------------------
# Repeated workload: the gateway result cache, off vs on
# ----------------------------------------------------------------------


def _run_repeated_workload(document, rounds):
    """The same query mix from ``REPEAT_SESSIONS`` sessions, cache off vs
    cache on: byte-identical traces (matches AND client-side counters)
    are asserted, the aggregate throughput lift is the scenario result."""
    rows, traces = {}, {}
    for label, cache_bytes in (("cache_off", 0), ("cache_on", CACHE_BYTES)):
        stack = _GatewayStack(document, delay=GATEWAY_DELAY, cache_bytes=cache_bytes)
        try:
            _run_session_load(stack, 1, 1)  # warm connections (and the cache)
            rows[label], traces[label] = _run_session_load(
                stack, REPEAT_SESSIONS, rounds, collect=True
            )
        finally:
            stack.close()
    # the cache must be invisible: every session's every run identical
    assert traces["cache_on"] == traces["cache_off"]
    speedup = (
        rows["cache_on"]["queries_per_second"]
        / rows["cache_off"]["queries_per_second"]
    )
    return {
        "sessions": REPEAT_SESSIONS,
        "rounds": rounds,
        "cache_bytes": CACHE_BYTES,
        "cache_off": rows["cache_off"],
        "cache_on": rows["cache_on"],
        "cache_speedup": round(speedup, 2),
    }


def test_repeated_workload_cache_speedup(bench_document):
    """Acceptance: 8 sessions replaying the same query mix run at least
    ``MIN_CACHE_SPEEDUP`` times faster in aggregate with the gateway
    cache on — with byte-identical results and counters (asserted inside
    the scenario)."""
    scenario = _run_repeated_workload(bench_document, rounds=2 if QUICK else 3)
    assert scenario["cache_speedup"] >= MIN_CACHE_SPEEDUP


# ----------------------------------------------------------------------
# Hog vs interactive: per-session QoS under --fair
# ----------------------------------------------------------------------


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(len(ordered) * q))]


def _interactive_p95(stack, calls, pre):
    """p95 of single small structural calls over one fresh session."""
    endpoint = stack.gateway.endpoint(timeout=60.0)
    try:
        endpoint.node_info(pre)  # connection warm-up, unmeasured
        samples = []
        for _ in range(calls):
            start = time.perf_counter()
            endpoint.node_info(pre)
            samples.append(time.perf_counter() - start)
        return _percentile(samples, 0.95)
    finally:
        endpoint.close()


class _Hog:
    """One mux session keeping ``HOG_BURST`` batch reads in flight.

    Uses the pipelined asyncio client so a *single* session saturates the
    gateway the way a sync endpoint (one request per round trip) cannot;
    the slices rotate so no two rounds repeat and the result cache cannot
    absorb the load.
    """

    def __init__(self, address, pres):
        self.pres = list(pres)
        self.stop = threading.Event()
        self.loop = LoopThread(name="bench-hog")
        self.transport = AsyncSocketTransport(address, timeout=120.0)
        self.rounds = 0
        self.thread = threading.Thread(target=self._run, name="bench-hog-driver")
        self.thread.start()

    def _slices(self, offset):
        span = max(1, len(self.pres) - HOG_BATCH)
        return [
            self.pres[(offset * HOG_BURST + i * 7) % span :][:HOG_BATCH]
            for i in range(HOG_BURST)
        ]

    def _run(self):
        async def burst(slices):
            await asyncio.gather(
                *[
                    self.transport.ainvoke(None, "fetch_shares_batch", (chunk,))
                    for chunk in slices
                ]
            )

        offset = 0
        while not self.stop.is_set():
            self.loop.run(burst(self._slices(offset)))
            offset += 1
            self.rounds += 1

    def close(self):
        self.stop.set()
        self.thread.join(timeout=120.0)
        self.loop.run(self.transport.aclose())
        self.loop.close()


def _measure_fairness(document):
    """Interactive p95 solo and under a saturating hog, fair vs FIFO.

    The asserted bound lives on the ``fair`` row; the ``fifo`` row is the
    informational control showing what the same contention costs without
    admission control.
    """
    rows = {}
    for label, fair in (("fair", True), ("fifo", False)):
        stack = _GatewayStack(
            document, delay=FAIRNESS_DELAY, fair=fair, fair_cap=FAIR_CAP
        )
        try:
            warm = stack.gateway.endpoint(timeout=60.0)
            root = warm.root_pre()
            pres = warm.descendants_of(root)
            warm.close()
            solo = _interactive_p95(stack, INTERACTIVE_CALLS, root)
            hog = _Hog(stack.gateway.address, pres)
            try:
                time.sleep(0.3)  # let the hog reach a steady burst cadence
                contended = _interactive_p95(stack, INTERACTIVE_CALLS, root)
            finally:
                hog.close()
            assert hog.rounds > 0  # the hog really ran while we measured
            rows[label] = {
                "solo_p95_ms": round(solo * 1e3, 2),
                "contended_p95_ms": round(contended * 1e3, 2),
                "slowdown": round(contended / solo, 2) if solo else None,
                "hog_rounds": hog.rounds,
            }
        finally:
            stack.close()
    return {
        "service_delay_seconds": FAIRNESS_DELAY,
        "hog_burst": HOG_BURST,
        "hog_batch": HOG_BATCH,
        "fair_session_cap": FAIR_CAP,
        "interactive_calls": INTERACTIVE_CALLS,
        "fair": rows["fair"],
        "fifo": rows["fifo"],
    }


def test_interactive_p95_bounded_under_fair_hog(bench_document):
    """Acceptance: with --fair, an interactive session's p95 under a
    saturating batch hog stays within ``MAX_FAIR_P95_FACTOR`` of its solo
    baseline (2x full mode, relaxed under --quick)."""
    scenario = _measure_fairness(bench_document)
    fair = scenario["fair"]
    # a 1ms floor keeps the ratio meaningful on a sub-millisecond loopback
    baseline = max(fair["solo_p95_ms"], 1.0)
    assert fair["contended_p95_ms"] <= MAX_FAIR_P95_FACTOR * baseline


# ----------------------------------------------------------------------
# The JSON report
# ----------------------------------------------------------------------


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def build_report(document, quick=False):
    """Quorum-admission timings + the gateway scaling, cache and QoS sweeps."""
    quorum_s, all_s = _measure_quorum_admission(rounds=2 if quick else 3)
    series = _gateway_series(document, rounds=2 if quick else 3)
    repeated = _run_repeated_workload(document, rounds=2 if quick else 3)
    fairness = _measure_fairness(document)
    return {
        "benchmark": "gateway_load",
        "quick": bool(quick),
        "document": {
            "generator": "xmark",
            "scale": QUICK_SCALE if quick else DOCUMENT_SCALE,
            "nodes": None,  # filled in by _emit
        },
        "queries": [query for query, _, _ in QUERIES],
        "quorum_admission": {
            "servers": 3,
            "k": 2,
            "straggler_delay_seconds": STRAGGLER_DELAY,
            "invoke_quorum_seconds": round(quorum_s, 4),
            "invoke_all_seconds": round(all_s, 4),
            "admission_speedup": round(all_s / quorum_s, 2),
        },
        "gateway": {
            "sharing": "shamir",
            "n": 3,
            "threshold": 2,
            "service_delay_seconds": GATEWAY_DELAY,
            "series": series,
            "throughput_scaling": round(_scaling(series), 2),
        },
        "repeated_workload": repeated,
        "fairness": fairness,
    }


def _emit(document, quick, path=OUTPUT_PATH):
    report = build_report(document, quick=quick)
    probe = _build(document, "simulated", servers=2)
    report["document"]["nodes"] = probe.node_count
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def test_report_json_is_emitted(bench_document, tmp_path):
    report = _emit(bench_document, quick=QUICK, path=tmp_path / "BENCH_gateway_load.json")
    assert report["quick"] is QUICK
    quorum = report["quorum_admission"]
    assert quorum["invoke_quorum_seconds"] < quorum["invoke_all_seconds"]
    series = report["gateway"]["series"]
    assert [row["clients"] for row in series] == list(CLIENT_COUNTS)
    assert report["gateway"]["throughput_scaling"] >= MIN_SCALING
    assert report["repeated_workload"]["cache_speedup"] >= MIN_CACHE_SPEEDUP
    fair = report["fairness"]["fair"]
    assert fair["contended_p95_ms"] <= MAX_FAIR_P95_FACTOR * max(fair["solo_p95_ms"], 1.0)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small document and reduced measurement loops (CI mode)",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT_PATH,
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)
    document = _document(scale=QUICK_SCALE if args.quick else DOCUMENT_SCALE)
    report = _emit(document, quick=args.quick, path=args.output)
    quorum = report["quorum_admission"]
    print("wrote %s (%d-node document)" % (args.output, report["document"]["nodes"]))
    print(
        "  quorum admission: k=%d of %d in %.1fms vs invoke_all %.1fms (%.1fx)"
        % (
            quorum["k"], quorum["servers"],
            quorum["invoke_quorum_seconds"] * 1e3, quorum["invoke_all_seconds"] * 1e3,
            quorum["admission_speedup"],
        )
    )
    for row in report["gateway"]["series"]:
        print(
            "  gateway %d client(s): %6.1f q/s  p50=%6.1fms  p95=%6.1fms"
            % (
                row["clients"], row["queries_per_second"],
                row["latency_p50_ms"], row["latency_p95_ms"],
            )
        )
    print("  throughput scaling 1 -> %d clients: %.2fx" % (
        CLIENT_COUNTS[-1], report["gateway"]["throughput_scaling"]
    ))
    repeated = report["repeated_workload"]
    print(
        "  repeated workload (%d sessions): %6.1f q/s off -> %6.1f q/s on (%.2fx)"
        % (
            repeated["sessions"],
            repeated["cache_off"]["queries_per_second"],
            repeated["cache_on"]["queries_per_second"],
            repeated["cache_speedup"],
        )
    )
    for label in ("fair", "fifo"):
        row = report["fairness"][label]
        print(
            "  %s interactive p95: solo %6.2fms  under hog %6.2fms (%.2fx)"
            % (label, row["solo_p95_ms"], row["contended_p95_ms"], row["slowdown"] or 0.0)
        )


if __name__ == "__main__":
    main()
