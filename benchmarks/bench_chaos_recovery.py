"""Chaos recovery — random kills + corruptions under sustained query load.

PR 9 closed the fault loop: majority-vote corruption *attribution*
(``SharingScheme.attribute_corruption``), threshold-based *quarantine*
(``FleetSupervisor``) and seed/Lagrange *healing* that re-derives a lost
server's table without re-encoding the document.  This bench proves the
pipeline end to end on a real (2, 4) Shamir socket fleet — subprocess
servers, wire-injected faults — under a deterministically seeded chaos
schedule:

* **zero wrong results** — every query answered during the run matches the
  clean single-server ground truth; verification + supervised retry means
  corruption is *never* silently served,
* **correct attribution** — every corruption quarantine names exactly the
  server the schedule corrupted; a healthy server is never blamed,
* **byte-identical heals** — every replacement table file equals the
  original deployment slice byte for byte (Shamir re-share from k healthy
  peers reproduces the exact coefficients),
* **bounded unavailability** — SIGKILLed servers are absorbed by the
  read quorum, so no query during the run fails for availability.

The schedule alternates SIGKILLs (``SocketCluster.kill_server`` — a real
``SIGKILL`` to the child) and share corruptions (the ``--chaos``-gated
``corrupt_share`` injector, applied over the wire to the victim's whole
table) on servers drawn from a :class:`~repro.prg.generator.SplitMix64`
stream, with the full query mix replayed and verified after every event.

Run as a script to (re)generate ``BENCH_chaos_recovery.json``::

    PYTHONPATH=src python benchmarks/bench_chaos_recovery.py [--quick]

``--quick`` (or ``REPRO_BENCH_QUICK=1`` under pytest) shrinks the document
and the schedule for CI; the invariants are asserted in both modes.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

import pytest

from repro.encode.encoder import Encoder
from repro.encode.tagmap import TagMap
from repro.engines.advanced import AdvancedQueryEngine
from repro.engines.simple import SimpleQueryEngine
from repro.filters.client import ClientFilter
from repro.filters.cluster import ClusterClient
from repro.filters.server import ServerFilter
from repro.prg.generator import SplitMix64
from repro.rmi.proxy import Registry
from repro.rmi.server import SocketCluster
from repro.rmi.transport import SimulatedTransport
from repro.xmark.generator import generate_document
from repro.xmldoc.dtd import XMARK_DTD

SEED = b"bench-chaos-seed-0123456789abcde"
CHAOS_SEED = 20050905

DOCUMENT_SCALE = 0.05
QUICK_SCALE = 0.02

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: chaos events per run (each: one kill or one corruption, then the full
#: query mix, ping sweeps and a heal)
QUICK_ROUNDS = 4
FULL_ROUNDS = 8
ROUNDS = QUICK_ROUNDS if QUICK else FULL_ROUNDS

#: the query mix replayed after every chaos event
QUERIES = [
    ("//city", "advanced", False),
    ("/site//person//city", "advanced", False),
    ("/site/people/person", "simple", True),
]

ENGINES = {"advanced": AdvancedQueryEngine, "simple": SimpleQueryEngine}

#: the fleet under test — the smallest Shamir shape whose surplus supports
#: single-culprit attribution (m = n = 4 >= k + 2)
FLEET = dict(servers=4, threshold=2, sharing="shamir")

OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_chaos_recovery.json"


def _document(scale=None):
    return generate_document(scale=scale or DOCUMENT_SCALE, seed=20050905)


def _deployment(document):
    tag_map = TagMap.from_names(XMARK_DTD.element_names())
    return Encoder(tag_map, SEED).deploy_document(document, **FLEET)


def _ground_truth(document):
    """Query results from a clean single-server in-process reference."""
    tag_map = TagMap.from_names(XMARK_DTD.element_names())
    encoded = Encoder(tag_map, SEED).encode_document(document)
    registry = Registry(SimulatedTransport())
    registry.bind("ServerFilter", ServerFilter(encoded.node_table, encoded.ring))
    client = ClientFilter(registry.lookup("ServerFilter"), encoded.sharing, tag_map)
    return {
        (query, engine, strict): ENGINES[engine](client)
        .execute(query, rule=_rule(strict))
        .matches
        for query, engine, strict in QUERIES
    }


def _rule(strict):
    from repro.filters.interface import MatchRule

    return MatchRule.EQUALITY if strict else MatchRule.CONTAINMENT


class ChaosRun:
    """One seeded chaos schedule against one live socket fleet."""

    def __init__(self, document, seed=CHAOS_SEED, rounds=ROUNDS):
        from repro.rmi.supervisor import FleetSupervisor

        self.rng = SplitMix64(seed)
        self.rounds = rounds
        self.deployment = _deployment(document)
        self.truth = _ground_truth(document)
        self.cluster = SocketCluster.from_deployment(self.deployment, chaos=True)
        self.transport = self.cluster.cluster_transport()
        self.client = ClusterClient(self.transport, self.deployment.scheme)
        self.filter = ClientFilter(
            self.client, self.deployment.scheme, TagMap.from_names(XMARK_DTD.element_names())
        )
        self.supervisor = FleetSupervisor(
            self.transport, self.deployment.scheme, cluster=self.cluster, ping_failures=2
        )
        root = self.client.root_pre()
        self.pres = [root] + self.client.descendants_of(root)
        # ground truth of the fault state, updated by the injectors and
        # checked against every supervisor verdict
        self.corrupted = set()
        self.killed = set()
        self.metrics = {
            "queries": 0,
            "wrong_results": 0,
            "unavailable": 0,
            "corruptions": 0,
            "kills": 0,
            "attribution_events": 0,
            "misattributions": 0,
            "heals": 0,
            "byte_identical_heals": 0,
            "quarantine_refusals": 0,
        }
        self._log_cursor = 0

    # -- fault injection ------------------------------------------------

    def corrupt(self, index):
        delta = 1 + self.rng.next_below(self.deployment.ring.field.order - 1)
        for pre in self.pres:
            self.cluster.transports[index].invoke(None, "corrupt_share", (pre, delta))
        self.corrupted.add(index)
        self.metrics["corruptions"] += 1

    def kill(self, index):
        self.cluster.kill_server(index)
        self.killed.add(index)
        self.metrics["kills"] += 1

    def _pick_victim(self):
        """A currently-healthy server (one bad actor at a time: with n =
        k + 2 the attribution majority needs every other reply honest)."""
        candidates = [
            index
            for index in range(self.transport.num_servers)
            if index not in self.corrupted
            and index not in self.killed
            and index not in self.supervisor.quarantined_servers()
        ]
        return candidates[self.rng.next_below(len(candidates))]

    # -- verification ---------------------------------------------------

    def run_queries(self):
        from repro.filters.cluster import ClusterUnavailableError

        for key, expected in self.truth.items():
            query, engine, strict = key
            self.metrics["queries"] += 1
            try:
                result = self.supervisor.supervised_call(
                    lambda: ENGINES[engine](self.filter).execute(query, rule=_rule(strict))
                )
            except (ClusterUnavailableError, ConnectionError):
                self.metrics["unavailable"] += 1
                continue
            if result.matches != expected:
                self.metrics["wrong_results"] += 1
            self._audit_log()

    def _audit_log(self):
        """Check new supervisor events against the fault ground truth."""
        for event in self.supervisor.log[self._log_cursor :]:
            if event["event"] == "quarantine":
                if event["reason"] == "corruption":
                    self.metrics["attribution_events"] += 1
                    if event["server"] not in self.corrupted:
                        self.metrics["misattributions"] += 1
                elif event["reason"] == "unreachable":
                    if event["server"] not in self.killed:
                        self.metrics["misattributions"] += 1
            elif event["event"] == "heal":
                self._audit_heal(event["server"])
            elif event["event"] == "quarantine_refused":
                self.metrics["quarantine_refusals"] += 1
        self._log_cursor = len(self.supervisor.log)

    def _audit_heal(self, index):
        self.metrics["heals"] += 1
        original = os.path.join(self.cluster.directory, "server-%d.json" % index)
        healed = self.cluster.processes[index].database_path
        with open(original, "rb") as handle:
            original_bytes = handle.read()
        with open(healed, "rb") as handle:
            healed_bytes = handle.read()
        if healed_bytes == original_bytes:
            self.metrics["byte_identical_heals"] += 1
        self.corrupted.discard(index)
        self.killed.discard(index)

    def sweep_and_heal(self):
        """Ping sweeps catch killed servers; heal whatever is quarantined."""
        for _ in range(self.supervisor.ping_failures):
            self.supervisor.ping_sweep()
        for index in list(self.supervisor.quarantined_servers()):
            self.supervisor.heal(index)
        self._audit_log()

    # -- the schedule ---------------------------------------------------

    def run(self):
        try:
            self.run_queries()  # clean baseline pass
            for round_index in range(self.rounds):
                victim = self._pick_victim()
                if self.rng.next_below(2):
                    self.kill(victim)
                else:
                    self.corrupt(victim)
                self.run_queries()
                self.sweep_and_heal()
                self.run_queries()
            assert not self.corrupted and not self.killed, (
                "schedule ended with unhealed faults: corrupted=%s killed=%s"
                % (sorted(self.corrupted), sorted(self.killed))
            )
            return self.metrics
        finally:
            self.transport.close()
            self.cluster.shutdown()


def build_report(document, quick=False):
    run = ChaosRun(document, rounds=QUICK_ROUNDS if quick else FULL_ROUNDS)
    metrics = run.run()
    return {
        "benchmark": "chaos_recovery",
        "quick": bool(quick),
        "document": {
            "generator": "xmark",
            "scale": QUICK_SCALE if quick else DOCUMENT_SCALE,
            "nodes": len(run.pres),
        },
        "fleet": dict(FLEET),
        "schedule": {
            "seed": CHAOS_SEED,
            "rounds": run.rounds,
            "corruptions": metrics["corruptions"],
            "kills": metrics["kills"],
        },
        "queries": {
            "mix": [query for query, _, _ in QUERIES],
            "total": metrics["queries"],
            "wrong_results": metrics["wrong_results"],
            "unavailable": metrics["unavailable"],
        },
        "attribution": {
            "events": metrics["attribution_events"],
            "misattributions": metrics["misattributions"],
        },
        "heals": {
            "count": metrics["heals"],
            "byte_identical": metrics["byte_identical_heals"],
            "quarantine_refusals": metrics["quarantine_refusals"],
        },
    }


def _emit(document, quick, path=OUTPUT_PATH):
    report = build_report(document, quick=quick)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


# ----------------------------------------------------------------------
# The asserted invariants (run under pytest, both modes)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def chaos_report(tmp_path_factory):
    document = _document(scale=QUICK_SCALE if QUICK else DOCUMENT_SCALE)
    path = tmp_path_factory.mktemp("chaos") / "BENCH_chaos_recovery.json"
    return _emit(document, quick=QUICK, path=path)


def test_zero_wrong_results_under_chaos(chaos_report):
    queries = chaos_report["queries"]
    assert queries["total"] >= (1 + 2 * ROUNDS) * len(QUERIES)
    assert queries["wrong_results"] == 0


def test_unavailability_is_bounded(chaos_report):
    # the (2, 4) quorum absorbs every single-server fault in the schedule
    assert chaos_report["queries"]["unavailable"] == 0


def test_attribution_never_blames_a_healthy_server(chaos_report):
    attribution = chaos_report["attribution"]
    assert attribution["events"] == chaos_report["schedule"]["corruptions"]
    assert attribution["misattributions"] == 0


def test_every_heal_is_byte_identical(chaos_report):
    heals = chaos_report["heals"]
    assert heals["count"] >= chaos_report["schedule"]["rounds"]
    assert heals["byte_identical"] == heals["count"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small document and short schedule (CI mode)",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT_PATH,
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)
    document = _document(scale=QUICK_SCALE if args.quick else DOCUMENT_SCALE)
    report = _emit(document, quick=args.quick, path=args.output)
    queries = report["queries"]
    heals = report["heals"]
    print("wrote %s (%d-node document)" % (args.output, report["document"]["nodes"]))
    print(
        "  schedule: %d rounds (%d corruptions, %d kills) on a (%d, %d) shamir fleet"
        % (
            report["schedule"]["rounds"],
            report["schedule"]["corruptions"],
            report["schedule"]["kills"],
            FLEET["threshold"],
            FLEET["servers"],
        )
    )
    print(
        "  queries: %d total, %d wrong, %d unavailable"
        % (queries["total"], queries["wrong_results"], queries["unavailable"])
    )
    print(
        "  attribution: %d events, %d misattributions"
        % (report["attribution"]["events"], report["attribution"]["misattributions"])
    )
    print(
        "  heals: %d, byte-identical %d, quarantine refusals %d"
        % (heals["count"], heals["byte_identical"], heals["quarantine_refusals"])
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
