"""Write path — incremental re-encode vs full re-deploy, repair convergence.

PR 10 gave the share fleet a versioned-row write path: node mutations are
re-encoded *incrementally* — only the contiguous pre-order range a mutation
actually touches (the ancestor path plus any renumbered tail) is re-shared
and shipped to the servers as a two-phase delta — instead of re-deploying
the whole document.  This bench measures and gates that promise on a
(2, 4) Shamir fleet:

* **incremental beats full** — the mean wall-clock of an incremental
  write (delta computation + two-phase apply across all four servers) is
  a multiple of a from-scratch ``deploy_document`` of the same tree;
  tag renames, which re-share only the ancestor path, are gated at a
  higher floor than the blended mix (inserts and deletes must also
  re-share the renumbered pre-order tail),
* **only the affected range** — the mean fraction of rows a delta
  touches stays far below 1.0 on an update-heavy mix,
* **byte-identical writes** — after every committed delta each server's
  table equals the from-scratch re-encode oracle
  (:meth:`~repro.encode.mutate.DocumentState.expected_rows`),
* **reads match a fresh re-deploy** — reconstructed secrets over the
  mutated fleet equal those of a clean re-deploy of the mutated tree
  (share *bytes* differ by the version salt; the reconstruction must not),
* **zero stale reads after repair** — with one server knocked out of a
  commit, the next read detects the version skew, replays the journal
  backlog, and afterwards not a single row on any server is stale.

Run as a script to (re)generate ``BENCH_write_path.json``::

    PYTHONPATH=src python benchmarks/bench_write_path.py [--quick]

``--quick`` (or ``REPRO_BENCH_QUICK=1`` under pytest) shrinks the document
and the schedule for CI; the invariants are asserted in both modes.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import pytest

from repro.encode.encoder import Encoder
from repro.encode.mutate import DocumentState
from repro.encode.tagmap import TagMap
from repro.filters.cluster import ClusterClient
from repro.filters.server import ServerFilter
from repro.prg.generator import SplitMix64
from repro.rmi.cluster import ClusterTransport
from repro.rmi.write import WriteCoordinator, WriteJournal
from repro.xmark.generator import generate_document
from repro.xmldoc.dtd import XMARK_DTD
from repro.xmldoc.parser import parse_string

SEED = b"bench-write-path-0123456789abcde"
SCHEDULE_SEED = 20051005

DOCUMENT_SCALE = 0.05
QUICK_SCALE = 0.02

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

QUICK_WRITES = 8
FULL_WRITES = 24

#: how many from-scratch deploys are timed for the denominator
FULL_DEPLOY_SAMPLES = 3

#: the fleet under test (matches the chaos/recovery benches)
FLEET = dict(servers=4, threshold=2, sharing="shamir")

#: update-heavy mix: renames re-share only the ancestor path; inserts and
#: deletes additionally re-share the renumbered pre-order tail
UPDATE_TAGS = ("city", "name", "date", "price")

OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_write_path.json"


def _tag_map():
    return TagMap.from_names(XMARK_DTD.element_names())


def _document(quick):
    return generate_document(
        scale=QUICK_SCALE if quick else DOCUMENT_SCALE, seed=20051005
    )


class WriteRun:
    """One seeded write schedule against one simulated Shamir fleet."""

    def __init__(self, document, writes):
        self.rng = SplitMix64(SCHEDULE_SEED)
        self.writes = writes
        self.tag_map = _tag_map()
        self.deployment = Encoder(self.tag_map, SEED).deploy_document(
            document, **FLEET
        )
        self.filters = [
            ServerFilter(table, self.deployment.ring)
            for table in self.deployment.node_tables
        ]
        self.transport = ClusterTransport(self.filters)
        self.state = DocumentState(document, self.tag_map, self.deployment.scheme)
        self.coordinator = WriteCoordinator(
            self.transport, journal=WriteJournal(), prg=self.deployment.prg
        )
        self.client = ClusterClient(self.transport, self.deployment.scheme)
        self.client.enable_read_repair(self.coordinator.repair_stale)
        self.metrics = {
            "writes": 0,
            "updates": 0,
            "inserts": 0,
            "deletes": 0,
            "rows_touched": 0,
            "rows_total": 0,
            "byte_identical_writes": 0,
            "incremental_seconds": 0.0,
            "update_seconds": 0.0,
            "read_repairs": 0,
            "stale_reads_after_repair": 0,
            "redeploy_read_mismatches": 0,
        }

    # -- the write schedule ---------------------------------------------

    def _random_pre(self):
        # never the root (pre 1): deletes of the root are refused
        return 2 + self.rng.next_below(self.state.node_count - 1)

    def _one_edit(self):
        roll = self.rng.next_below(10)
        if roll < 7 or self.state.node_count < 20:
            tag = UPDATE_TAGS[self.rng.next_below(len(UPDATE_TAGS))]
            return "updates", self.state.update_tag(self._random_pre(), tag)
        if roll < 9:
            element = parse_string("<emailaddress/>").root
            return "inserts", self.state.insert_subtree(self._random_pre(), element)
        return "deletes", self.state.delete_subtree(self._random_pre())

    def _oracle_mismatches(self):
        mismatches = 0
        for index, server in enumerate(self.transport.servers):
            rows = sorted(
                (dict(row, share=tuple(row["share"])) for row in server._table.scan()),
                key=lambda row: row["pre"],
            )
            if rows != self.state.expected_rows(index):
                mismatches += 1
        return mismatches

    def run_writes(self):
        for _ in range(self.writes):
            self.metrics["rows_total"] += self.state.node_count
            started = time.perf_counter()
            kind, delta = self._one_edit()
            self.coordinator.apply(delta)
            elapsed = time.perf_counter() - started
            self.metrics["incremental_seconds"] += elapsed
            self.metrics[kind] += 1
            if kind == "updates":
                self.metrics["update_seconds"] += elapsed
            self.metrics["writes"] += 1
            self.metrics["rows_touched"] += delta.write_rows + len(delta.deletes)
            if self._oracle_mismatches() == 0:
                self.metrics["byte_identical_writes"] += 1

    # -- the repair phase -----------------------------------------------

    def run_repair_phase(self):
        """One write misses its commit on one server; the next read must
        repair the skew and leave zero stale rows anywhere."""
        victim = self.rng.next_below(len(self.filters))
        real_invoke = self.transport.invoke

        def flaky_invoke(index, method, args=()):
            if index == victim and method == "commit_delta":
                raise ConnectionError("server %d crashed mid-commit" % victim)
            return real_invoke(index, method, args)

        self.transport.invoke = flaky_invoke
        try:
            delta = self.state.update_tag(self._random_pre(), UPDATE_TAGS[0])
            self.coordinator.apply(delta)
        finally:
            self.transport.invoke = real_invoke
        # the read of a touched row hits the stale share, repairs, retries
        self.client.fetch_shares_batch(list(delta.touched_pres))
        self.metrics["read_repairs"] = sum(
            len(repair) for repair in self.client.read_repairs
        )
        self.metrics["stale_reads_after_repair"] = self._oracle_mismatches()

    # -- the re-deploy comparison ---------------------------------------

    def run_redeploy_comparison(self):
        """Reconstructed reads over the mutated fleet vs a fresh deploy."""
        redeploy_seconds = 0.0
        for _ in range(FULL_DEPLOY_SAMPLES):
            started = time.perf_counter()
            fresh = Encoder(self.tag_map, SEED).deploy_document(
                self.state.document, **FLEET
            )
            redeploy_seconds += time.perf_counter() - started
        self.metrics["redeploy_seconds_per_write"] = (
            redeploy_seconds / FULL_DEPLOY_SAMPLES
        )
        fresh_filters = [
            ServerFilter(table, fresh.ring) for table in fresh.node_tables
        ]
        fresh_transport = ClusterTransport(fresh_filters)
        fresh_client = ClusterClient(fresh_transport, fresh.scheme)
        pres = [self.client.root_pre()] + self.client.descendants_of(
            self.client.root_pre()
        )
        mutated_reads = self.client.fetch_shares_batch(pres)
        fresh_reads = fresh_client.fetch_shares_batch(pres)
        self.metrics["redeploy_read_mismatches"] = sum(
            1 for ours, theirs in zip(mutated_reads, fresh_reads) if ours != theirs
        )

    def run(self):
        self.run_writes()
        self.run_repair_phase()
        self.run_redeploy_comparison()
        return self.metrics


def build_report(document, quick=False):
    run = WriteRun(document, writes=QUICK_WRITES if quick else FULL_WRITES)
    metrics = run.run()
    incremental_per_write = metrics["incremental_seconds"] / metrics["writes"]
    speedup = metrics["redeploy_seconds_per_write"] / incremental_per_write
    update_per_write = metrics["update_seconds"] / max(1, metrics["updates"])
    update_speedup = metrics["redeploy_seconds_per_write"] / update_per_write
    return {
        "benchmark": "write_path",
        "quick": bool(quick),
        "document": {
            "generator": "xmark",
            "scale": QUICK_SCALE if quick else DOCUMENT_SCALE,
            "nodes": run.state.node_count,
        },
        "fleet": dict(FLEET),
        "writes": {
            "count": metrics["writes"],
            "updates": metrics["updates"],
            "inserts": metrics["inserts"],
            "deletes": metrics["deletes"],
            "byte_identical": metrics["byte_identical_writes"],
            "avg_touched_fraction": metrics["rows_touched"]
            / max(1, metrics["rows_total"]),
        },
        "timing": {
            "incremental_ms_per_write": incremental_per_write * 1000.0,
            "update_ms_per_write": update_per_write * 1000.0,
            "full_redeploy_ms": metrics["redeploy_seconds_per_write"] * 1000.0,
            "incremental_vs_full_speedup": speedup,
            "update_vs_full_speedup": update_speedup,
        },
        "repair": {
            "read_repairs": metrics["read_repairs"],
            "stale_reads_after_repair": metrics["stale_reads_after_repair"],
            "redeploy_read_mismatches": metrics["redeploy_read_mismatches"],
        },
    }


def _emit(document, quick, path=OUTPUT_PATH):
    report = build_report(document, quick=quick)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


# ----------------------------------------------------------------------
# The asserted invariants (run under pytest, both modes)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def write_report(tmp_path_factory):
    document = _document(quick=QUICK)
    path = tmp_path_factory.mktemp("write") / "BENCH_write_path.json"
    return _emit(document, quick=QUICK, path=path)


def test_every_write_is_byte_identical_to_the_oracle(write_report):
    writes = write_report["writes"]
    assert writes["byte_identical"] == writes["count"]


def test_incremental_touches_a_fraction_of_the_table(write_report):
    assert write_report["writes"]["avg_touched_fraction"] < 0.8


def test_incremental_beats_a_full_redeploy(write_report):
    # the mixed schedule includes inserts/deletes whose renumbered tail
    # must be re-shared, so the blended margin is modest; plain renames —
    # the common case — re-share only the ancestor path and win big
    assert write_report["timing"]["incremental_vs_full_speedup"] > 1.2
    assert write_report["timing"]["update_vs_full_speedup"] > 2.0


def test_reads_match_a_fresh_redeploy(write_report):
    assert write_report["repair"]["redeploy_read_mismatches"] == 0


def test_zero_stale_reads_after_repair(write_report):
    repair = write_report["repair"]
    assert repair["read_repairs"] >= 1
    assert repair["stale_reads_after_repair"] == 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--output", type=Path, default=OUTPUT_PATH, help="report destination"
    )
    args = parser.parse_args(argv)
    report = _emit(_document(quick=args.quick), quick=args.quick, path=args.output)
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
