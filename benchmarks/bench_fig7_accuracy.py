"""Figure 7 — accuracy of the containment test (E/C per table-2 query).

Accuracy itself is not a timing quantity; the benchmark times the pair of
query executions (equality + containment) that produce one accuracy point,
and the printed record reports the E, C and accuracy values of figure 7.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import register_record
from repro.experiments.accuracy import run_accuracy_experiment
from repro.experiments.workloads import TABLE2_QUERIES


@pytest.fixture(scope="module")
def figure7_record(bench_database):
    record = run_accuracy_experiment(database=bench_database)
    register_record(record)
    return record


@pytest.mark.parametrize("query_number", range(1, len(TABLE2_QUERIES) + 1))
def test_accuracy_measurement(benchmark, bench_database, figure7_record, query_number):
    """Time the E and C measurements for one table-2 query."""
    query = TABLE2_QUERIES[query_number - 1]

    def measure():
        exact = bench_database.query(query, engine="advanced", strict=True)
        loose = bench_database.query(query, engine="advanced", strict=False)
        return exact, loose

    exact, loose = benchmark(measure)
    accuracy = 100.0 * len(exact.matches) / len(loose.matches) if loose.matches else 100.0
    benchmark.extra_info["query"] = query
    benchmark.extra_info["equality_size"] = len(exact.matches)
    benchmark.extra_info["containment_size"] = len(loose.matches)
    benchmark.extra_info["accuracy_percent"] = round(accuracy, 2)
    assert set(exact.matches) <= set(loose.matches)


def test_absolute_queries_reach_100_percent(figure7_record):
    """Figure 7: queries without // have containment accuracy 100%."""
    for measurement in figure7_record.measurements:
        if measurement.extra["descendant_steps"] == 0:
            assert measurement.extra["accuracy_percent"] == 100.0


def test_accuracy_is_bounded(figure7_record):
    for measurement in figure7_record.measurements:
        assert 0 < measurement.extra["accuracy_percent"] <= 100.0
