"""Shared fixtures and reporting for the benchmark harness.

Every ``bench_*`` module corresponds to one table or figure of the paper.
pytest-benchmark measures the timing of the underlying operations; in
addition each module builds the corresponding
:class:`repro.metrics.records.ExperimentRecord` once and registers it here so
the rows/series the paper reports are printed at the end of the run (and are
therefore captured in ``bench_output.txt``).

Scale: benchmarks default to small documents so the suite stays fast.  Set
``REPRO_BENCH_SCALE`` (≈ megabytes of XMark input, e.g. ``1`` or ``10``) to
run paper-sized workloads.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import render_record
from repro.experiments.workloads import bench_scale, build_database

#: experiment records registered by the bench modules, printed at session end
_RECORDS = []


def register_record(record) -> None:
    """Register an experiment record for the end-of-run report."""
    _RECORDS.append(record)


def registered_records():
    """Records registered so far (used by tests of the harness itself)."""
    return list(_RECORDS)


@pytest.fixture(scope="session")
def bench_scale_value() -> float:
    """Document scale used by the query benchmarks."""
    return bench_scale(0.02)


@pytest.fixture(scope="session")
def bench_database(bench_scale_value):
    """One encoded database shared by all query benchmarks."""
    return build_database(scale=bench_scale_value)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every registered experiment record after the benchmark tables."""
    if not _RECORDS:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("paper figures / tables reproduced by this run")
    for record in _RECORDS:
        terminalreporter.write_line("")
        for line in render_record(record).splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
