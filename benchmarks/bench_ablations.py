"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not part of the paper's evaluation; these quantify the cost structure behind
its qualitative statements:

* the equality test's cost grows with the node's fan-out (section 6.3),
* the B-tree indexes on pre/post/parent are what make the structural
  navigation cheap (section 5.1),
* the client/server split pays a per-call serialisation cost (section 5.2),
* regenerating client shares from the PRG is the client's dominant
  per-evaluation cost.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import register_record
from repro.experiments.ablations import (
    run_equality_cost_ablation,
    run_index_ablation,
    run_rmi_overhead_ablation,
)
from repro.experiments.workloads import bench_scale, build_database, build_document
from repro.xmldoc.dtd import XMARK_DTD
from repro.core.database import EncryptedXMLDatabase


@pytest.fixture(scope="module")
def ablation_records(bench_database):
    records = [
        run_equality_cost_ablation(database=bench_database),
        run_index_ablation(scale=min(bench_scale(0.02), 0.05)),
        run_rmi_overhead_ablation(scale=min(bench_scale(0.02), 0.05)),
    ]
    for record in records:
        register_record(record)
    return records


def test_containment_test_cost(benchmark, bench_database, ablation_records):
    """Cost of a single containment test (one shared evaluation)."""
    client = bench_database.client_filter
    root = client.root_pre()
    benchmark(lambda: client.contains(root, "person"))


def test_equality_test_cost_at_root(benchmark, bench_database, ablation_records):
    """Cost of a single equality test on the root (fan-out 6)."""
    client = bench_database.client_filter
    root = client.root_pre()
    benchmark(lambda: client.equals(root, "site"))


def test_equality_test_cost_at_leaf(benchmark, bench_database, ablation_records):
    """Cost of a single equality test on a leaf (fan-out 0)."""
    client = bench_database.client_filter
    leaf = bench_database.plaintext_query("//city")[0]
    benchmark(lambda: client.equals(leaf, "city"))


def test_client_share_regeneration_cost(benchmark, bench_database):
    """Cost of regenerating one client share from the seed."""
    sharing = bench_database.encoded.sharing
    benchmark(lambda: sharing.client_share(17))


def test_indexed_vs_unindexed_navigation(benchmark):
    """Parent-index lookups against a full-scan fallback."""
    document = build_document(min(bench_scale(0.02), 0.05))
    database = EncryptedXMLDatabase.from_document(
        document,
        tag_names=XMARK_DTD.element_names(),
        seed=b"bench-ablation-seed-000000000000",
        p=83,
        use_rmi=False,
        index_columns=[],
    )
    server = database.server_filter
    root = server.root_pre()
    benchmark(lambda: server.children_of(root))


def test_rmi_call_overhead(benchmark, bench_database):
    """Round-trip cost of one remote structural call through the codec."""
    client = bench_database.client_filter
    root = client.root_pre()
    benchmark(lambda: client.children_of(root))


def test_equality_cost_tracks_fanout(ablation_records):
    equality_record = ablation_records[0]
    for measurement in equality_record.measurements:
        assert measurement.extra["reconstructions"] == measurement.extra["fanout"] + 1
