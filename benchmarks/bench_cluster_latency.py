"""Concurrent scatter-gather vs the sequential cluster path — the latency bench.

PR 3 made the cluster *correct*; this bench proves the concurrent
scatter-gather layer makes it *fast* without changing a single byte:

* at ``n ∈ {2, 3, 5}`` (additive) and ``(k, n) = (2, 3)`` (Shamir), the
  concurrent transport produces **byte-identical** query results, combined
  shares and per-server call/byte counters vs ``concurrency=False``,
* under uniform per-server latency the modeled **makespan** of (2, 3)
  Shamir share reads is at least 2× lower concurrent than the sequential
  sum (it is n× in the limit: the critical path replaces the sum),
* under deterministic latency jitter, **first-k** quorum reads
  (``verify_shares=False``) finish strictly earlier than all-quorum reads —
  the k-th modeled arrival beats the slowest server,
* the whole trajectory (makespan vs n, k, jitter and read mode) is emitted
  to ``BENCH_cluster_latency.json`` so the perf curve is tracked from this
  PR on.

Run as a script to (re)generate the JSON trajectory::

    PYTHONPATH=src python benchmarks/bench_cluster_latency.py [--quick]

``--quick`` (or ``REPRO_BENCH_QUICK=1`` under pytest) shrinks the document
and the sweep for CI; the identity and makespan assertions always run.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

import pytest

from repro.core.database import EncryptedXMLDatabase
from repro.xmark.generator import generate_document
from repro.xmldoc.dtd import XMARK_DTD

SEED = b"bench-cluster-seed-0123456789abc"

#: scale 0.05 generates the same 598-node document as bench_cluster
DOCUMENT_SCALE = 0.05
QUICK_SCALE = 0.02

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: one containment-heavy, one descendant-heavy, one strict (fetch-path) query
QUERIES = [
    ("//city", "advanced", False),
    ("/site//person//city", "advanced", False),
    ("/site/people/person", "simple", True),
]

ADDITIVE_SIZES = [2, 3, 5]
SHAMIR_N, SHAMIR_K = 3, 2

#: uniform per-call latency used by every makespan measurement (seconds)
CALL_LATENCY = 1.0
JITTER = 0.75

OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_cluster_latency.json"


def _document(scale=None):
    return generate_document(scale=scale or (QUICK_SCALE if QUICK else DOCUMENT_SCALE), seed=4242)


def _build(document, **kwargs):
    return EncryptedXMLDatabase.from_document(
        document,
        tag_names=XMARK_DTD.element_names(),
        seed=SEED,
        p=83,
        keep_plaintext=False,
        **kwargs,
    )


def _run_queries(database):
    """Execute the bench queries; returns (matches, counters) per query."""
    outcomes = []
    for query, engine, strict in QUERIES:
        result = database.query(query, engine=engine, strict=strict)
        outcomes.append((result.matches, result.counters))
    return outcomes


def _comparable_stats(database):
    """Per-server + aggregate counters, with the makespan gauge left out
    (the makespan is *supposed* to differ between the modes)."""
    per_server = [stats.snapshot() for stats in database.per_server_stats]
    aggregate = database.transport_stats.snapshot()
    aggregate.pop("makespan")
    return per_server, aggregate


@pytest.fixture(scope="module")
def cluster_document():
    return _document()


@pytest.fixture(scope="module")
def node_floor():
    return 400 if not QUICK else 100


def _identity_pair(document, **kwargs):
    sequential = _build(document, concurrency=False, **kwargs)
    concurrent = _build(document, concurrency=True, **kwargs)
    return sequential, concurrent


def _assert_byte_identical(sequential, concurrent):
    expected = _run_queries(sequential)
    actual = _run_queries(concurrent)
    for (expected_matches, expected_counters), (matches, counters) in zip(expected, actual):
        assert matches == expected_matches
        assert counters == expected_counters
    seq_servers, seq_aggregate = _comparable_stats(sequential)
    conc_servers, conc_aggregate = _comparable_stats(concurrent)
    assert conc_servers == seq_servers
    assert conc_aggregate == seq_aggregate
    # combined shares come back identical through either transport
    pres = list(range(1, min(41, sequential.node_count)))
    assert concurrent.cluster_client.fetch_shares_batch(pres) == (
        sequential.cluster_client.fetch_shares_batch(pres)
    )


@pytest.mark.parametrize("servers", ADDITIVE_SIZES)
def test_concurrent_additive_cluster_is_byte_identical(cluster_document, node_floor, servers):
    """Acceptance: results, shares and counters identical at n ∈ {2, 3, 5}."""
    sequential, concurrent = _identity_pair(cluster_document, servers=servers)
    assert concurrent.node_count >= node_floor
    _assert_byte_identical(sequential, concurrent)


def test_concurrent_shamir_cluster_is_byte_identical(cluster_document):
    sequential, concurrent = _identity_pair(
        cluster_document, servers=SHAMIR_N, threshold=SHAMIR_K, sharing="shamir"
    )
    _assert_byte_identical(sequential, concurrent)


def _read_makespan(database, rounds=20):
    """Makespan of a run of pure share reads through the cluster client."""
    database.reset_transport_stats()
    client = database.cluster_client
    pres = list(range(1, min(31, database.node_count)))
    for point in range(2, 2 + rounds):
        client.evaluate_batch(pres, point % 82 + 1)
    client.fetch_shares_batch(pres)
    return database.makespan


def test_shamir_read_makespan_beats_sequential_sum_2x(cluster_document):
    """Acceptance: (2, 3) Shamir reads ≥ 2× lower makespan than the
    sequential sum under uniform per-server latency."""
    kwargs = dict(
        servers=SHAMIR_N, threshold=SHAMIR_K, sharing="shamir",
        per_call_latency=CALL_LATENCY,
    )
    sequential, concurrent = _identity_pair(cluster_document, **kwargs)
    sequential_sum = _read_makespan(sequential)
    concurrent_makespan = _read_makespan(concurrent)
    assert sequential_sum >= 2 * concurrent_makespan, (
        "expected ≥2× makespan win, got %.2f vs %.2f"
        % (sequential_sum, concurrent_makespan)
    )
    # with uniform latency the win is exactly n×: critical path vs sum
    assert sequential_sum == pytest.approx(SHAMIR_N * concurrent_makespan)


def test_first_k_reads_beat_all_quorum_under_jitter(cluster_document):
    """Acceptance: first-k strictly below all-quorum makespan under jitter."""
    kwargs = dict(
        servers=SHAMIR_N, threshold=SHAMIR_K, sharing="shamir",
        per_call_latency=CALL_LATENCY, latency_jitter=JITTER,
    )
    all_quorum = _build(cluster_document, verify_shares=True, **kwargs)
    first_k = _build(cluster_document, verify_shares=False, **kwargs)
    # identical answers first (the first-k path reconstructs from any k)
    assert _run_queries(first_k)[0][0] == _run_queries(all_quorum)[0][0]
    makespan_all = _read_makespan(all_quorum)
    makespan_first_k = _read_makespan(first_k)
    assert makespan_first_k < makespan_all, (
        "first-k (%.2f) did not beat all-quorum (%.2f)"
        % (makespan_first_k, makespan_all)
    )


def test_prefetch_and_hedge_compose_on_the_read_path(cluster_document):
    """The facade knobs stack: hedged first-k + prefetch keeps results
    identical and never increases the modeled makespan."""
    base = dict(
        servers=SHAMIR_N, threshold=SHAMIR_K, sharing="shamir",
        per_call_latency=CALL_LATENCY, latency_jitter=JITTER,
        verify_shares=False, read_quorum=SHAMIR_K,
    )
    plain = _build(cluster_document, **base)
    tuned = _build(cluster_document, hedge=True, prefetch=2, **base)
    expected = _run_queries(plain)
    actual = _run_queries(tuned)
    assert [matches for matches, _ in actual] == [matches for matches, _ in expected]
    assert tuned.makespan <= plain.makespan


# ----------------------------------------------------------------------
# Trajectory emission
# ----------------------------------------------------------------------

def _sweep_configs(quick):
    configs = [
        ("additive", 2, 2),
        ("shamir", SHAMIR_N, SHAMIR_K),
    ]
    if not quick:
        configs[1:1] = [("additive", 3, 3), ("additive", 5, 5)]
        configs.append(("shamir", 5, 3))
    return configs


def build_trajectory(document, quick=False):
    """Makespan vs n, k, jitter and read mode over the bench queries."""
    series = []
    for sharing, n, k in _sweep_configs(quick):
        for jitter in (0.0, JITTER):
            for mode in ("sequential", "concurrent", "first_k"):
                kwargs = dict(
                    servers=n,
                    sharing=sharing,
                    per_call_latency=CALL_LATENCY,
                    latency_jitter=jitter,
                    concurrency=mode != "sequential",
                    verify_shares=mode != "first_k",
                )
                if sharing == "shamir":
                    kwargs["threshold"] = k
                database = _build(document, **kwargs)
                _run_queries(database)
                aggregate = database.transport_stats
                series.append(
                    {
                        "sharing": sharing,
                        "n": n,
                        "k": k,
                        "jitter": jitter,
                        "mode": mode,
                        "makespan": round(database.makespan, 6),
                        "simulated_latency": round(aggregate.simulated_latency, 6),
                        "calls": aggregate.calls,
                        "total_bytes": aggregate.total_bytes,
                        "errors": aggregate.errors,
                    }
                )
    return {
        "benchmark": "cluster_latency",
        "document": {
            "generator": "xmark",
            "scale": QUICK_SCALE if quick else DOCUMENT_SCALE,
            "nodes": None,  # filled in by _emit
        },
        "queries": [query for query, _, _ in QUERIES],
        "call_latency": CALL_LATENCY,
        "series": series,
    }


def _emit(document, quick, path=OUTPUT_PATH):
    trajectory = build_trajectory(document, quick=quick)
    probe = _build(document, servers=2)
    trajectory["document"]["nodes"] = probe.node_count
    path.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    return trajectory


def test_trajectory_json_is_emitted(cluster_document, tmp_path):
    trajectory = _emit(cluster_document, quick=QUICK, path=tmp_path / "BENCH_cluster_latency.json")
    by_mode = {}
    for row in trajectory["series"]:
        by_mode.setdefault((row["sharing"], row["n"], row["jitter"]), {})[row["mode"]] = row
    for (sharing, n, jitter), modes in by_mode.items():
        assert modes["concurrent"]["makespan"] <= modes["sequential"]["makespan"]
        assert modes["first_k"]["makespan"] <= modes["concurrent"]["makespan"]
        if sharing == "shamir" and jitter:
            assert modes["first_k"]["makespan"] < modes["concurrent"]["makespan"]
        # identical traffic in every mode: the win is wall-clock only
        assert modes["concurrent"]["calls"] == modes["sequential"]["calls"]
        assert modes["concurrent"]["total_bytes"] == modes["sequential"]["total_bytes"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small document and reduced sweep (CI mode)",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT_PATH,
        help="where to write the JSON trajectory (default: repo root)",
    )
    args = parser.parse_args(argv)
    document = _document(scale=QUICK_SCALE if args.quick else DOCUMENT_SCALE)
    trajectory = _emit(document, quick=args.quick, path=args.output)
    print("wrote %s (%d series rows, %d-node document)" % (
        args.output, len(trajectory["series"]), trajectory["document"]["nodes"]
    ))
    for row in trajectory["series"]:
        print(
            "  %-8s n=%d k=%d jitter=%.2f %-10s makespan=%8.1f latency-sum=%8.1f calls=%d"
            % (
                row["sharing"], row["n"], row["k"], row["jitter"], row["mode"],
                row["makespan"], row["simulated_latency"], row["calls"],
            )
        )


if __name__ == "__main__":
    main()
