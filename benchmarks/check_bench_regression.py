"""Gate benchmark regressions against the committed baselines.

CI re-runs a benchmark in ``--quick`` mode into a sibling JSON and then
compares it against the committed baseline.  The current report's
``benchmark`` key selects the rule set:

* kernel reports (no ``benchmark`` key — ``BENCH_field_kernels.json``):
  speedup rows are keyed on ``(field, scale_label, candidate, baseline)``;
  only keys present in *both* files are compared (quick mode drops the
  large-scale naive and extension-field rows on purpose).  A run fails
  when a compared ``share_encode_speedup`` or ``batch_eval_speedup``
  drops more than ``--tolerance`` (default 25%) below the committed
  value, or when the current gate block falls below its quick-mode floor.
* ``"gateway_load"`` reports (``BENCH_gateway_load.json``): the
  many-client ``throughput_scaling`` and the repeated-workload
  ``cache_speedup`` gate against the committed ratios (static floors
  under quick mode, where the document is small and the loops short),
  and the fairness row must keep the interactive contended p95 within
  its factor of the solo baseline.
* ``"chaos_recovery"`` reports (``BENCH_chaos_recovery.json``): absolute
  correctness invariants — zero wrong results, zero misattributions,
  every heal byte-identical, at least one heal — plus coverage checks
  that the schedule actually injected and attributed faults.
* ``"write_path"`` reports (``BENCH_write_path.json``): absolute
  correctness invariants — every write byte-identical to the re-encode
  oracle, zero stale rows after read-repair, reconstructed reads equal
  to a from-scratch re-deploy — plus the incremental-vs-full speedup
  ratios (static floors under quick mode, committed ratios otherwise).

Absolute wall-clock numbers are never compared — CI machines are slower
and noisier than the baseline host; the speedup *ratios* are what the
optimisations promise.

Usage::

    python benchmarks/check_bench_regression.py BENCH_field_kernels.ci.json
    python benchmarks/check_bench_regression.py BENCH_gateway_load.ci.json \\
        --baseline BENCH_gateway_load.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: fraction of the committed speedup a current run may lose before failing
DEFAULT_TOLERANCE = 0.25

#: the speedup columns that gate (workload/encode stay informational:
#: full encode folds in kernel-independent parse + index time, and the
#: workload mixes cache-warm query layers measured elsewhere)
GATED_METRICS = ("share_encode_speedup", "batch_eval_speedup")

#: quick-mode CI floor for the 10^4-node numpy-vs-prime gate block; the
#: committed full-mode baseline carries the real >= 5x numbers
QUICK_GATE_FLOOR = 2.0

#: quick-mode floors for the gateway_load report (small document, short
#: loops); full-mode runs gate against the committed ratios instead
QUICK_SCALING_FLOOR = 1.3
QUICK_CACHE_SPEEDUP_FLOOR = 1.5

#: the interactive contended p95 may exceed the solo baseline by at most
#: this factor (relaxed under quick mode, mirroring the bench's own bound)
FAIR_P95_FACTOR = 2.0
QUICK_FAIR_P95_FACTOR = 4.0

#: quick-mode floors for the write_path report: the blended mix (inserts
#: and deletes re-share the renumbered tail) wins modestly; plain tag
#: renames re-share only the ancestor path and must win clearly
QUICK_MIX_SPEEDUP_FLOOR = 1.2
QUICK_UPDATE_SPEEDUP_FLOOR = 2.0


def _index(trajectory):
    return {
        (
            row["field"],
            row["scale_label"],
            row["candidate"],
            row["baseline"],
        ): row
        for row in trajectory.get("speedups", [])
    }


def compare(baseline, current, tolerance):
    """Yield (severity, message) findings; severity is 'fail' or 'info'."""
    base_rows = _index(baseline)
    current_rows = _index(current)
    compared = 0
    for key in sorted(base_rows):
        row = current_rows.get(key)
        if row is None:
            yield "info", "skipping %s/%s %s-vs-%s: not in current run" % key
            continue
        compared += 1
        for metric in GATED_METRICS:
            committed = base_rows[key].get(metric)
            measured = row.get(metric)
            if committed is None or measured is None:
                continue
            floor = committed * (1.0 - tolerance)
            verdict = "fail" if measured < floor else "info"
            yield verdict, "%s/%s %s-vs-%s %s: %.2fx vs committed %.2fx (floor %.2fx)" % (
                key + (metric, measured, committed, floor)
            )
    if compared == 0:
        yield "fail", "no comparable speedup rows between baseline and current run"
    gate = current.get("gate")
    if gate is None:
        if current.get("numpy"):
            yield "fail", "current run has numpy but no gate block"
        else:
            yield "info", "no numpy in current run: gate block skipped"
    else:
        floor = QUICK_GATE_FLOOR if current.get("quick") else gate.get("minimum", 5.0)
        for metric in ("encode_speedup", "batch_eval_speedup"):
            measured = gate.get(metric, 0.0)
            verdict = "fail" if measured < floor else "info"
            yield verdict, "gate %s at %d nodes: %.2fx (floor %.2fx)" % (
                metric,
                gate.get("nodes", 0),
                measured,
                floor,
            )


def _gate_ratio(name, committed, measured, quick, quick_floor, tolerance):
    """One (severity, message) finding for a committed-vs-measured ratio."""
    if measured is None:
        return "fail", "%s missing from current run" % name
    if quick or committed is None:
        floor = quick_floor
        context = "static quick floor" if quick else "no committed value"
    else:
        floor = committed * (1.0 - tolerance)
        context = "committed %.2fx" % committed
    verdict = "fail" if measured < floor else "info"
    return verdict, "%s: %.2fx (floor %.2fx, %s)" % (name, measured, floor, context)


def compare_gateway(baseline, current, tolerance):
    """Findings for a ``gateway_load`` report (see module docstring)."""
    quick = bool(current.get("quick"))
    yield _gate_ratio(
        "gateway throughput_scaling",
        (baseline.get("gateway") or {}).get("throughput_scaling"),
        (current.get("gateway") or {}).get("throughput_scaling"),
        quick,
        QUICK_SCALING_FLOOR,
        tolerance,
    )
    yield _gate_ratio(
        "repeated_workload cache_speedup",
        (baseline.get("repeated_workload") or {}).get("cache_speedup"),
        (current.get("repeated_workload") or {}).get("cache_speedup"),
        quick,
        QUICK_CACHE_SPEEDUP_FLOOR,
        tolerance,
    )
    fair = (current.get("fairness") or {}).get("fair")
    if not fair:
        yield "fail", "fairness.fair row missing from current run"
        return
    factor = QUICK_FAIR_P95_FACTOR if quick else FAIR_P95_FACTOR
    solo = max(fair.get("solo_p95_ms") or 0.0, 1.0)
    contended = fair.get("contended_p95_ms")
    if contended is None:
        yield "fail", "fairness.fair.contended_p95_ms missing from current run"
        return
    verdict = "fail" if contended > factor * solo else "info"
    yield verdict, "fairness contended p95 %.2fms vs solo %.2fms (bound %.1fx)" % (
        contended,
        solo,
        factor,
    )


def compare_chaos(baseline, current, tolerance):
    """Findings for a ``chaos_recovery`` report.

    Correctness invariants are absolute — zero wrong results, zero
    misattributions, every heal byte-identical — and do not soften under
    quick mode or tolerance: a fleet that serves one wrong answer or
    blames one healthy server has regressed, full stop.  Coverage (at
    least one heal, at least one attribution event when the schedule
    corrupted anything) guards against the bench silently doing nothing.
    """
    queries = current.get("queries") or {}
    attribution = current.get("attribution") or {}
    heals = current.get("heals") or {}
    schedule = current.get("schedule") or {}

    total = queries.get("total") or 0
    verdict = "fail" if total < 1 else "info"
    yield verdict, "chaos schedule answered %d queries over %d rounds" % (
        total,
        schedule.get("rounds") or 0,
    )

    wrong = queries.get("wrong_results")
    verdict = "fail" if wrong != 0 else "info"
    yield verdict, "wrong results: %s (must be 0)" % wrong

    unavailable = queries.get("unavailable")
    verdict = "fail" if unavailable != 0 else "info"
    yield verdict, "unavailable queries: %s (must be 0 — the quorum absorbs faults)" % (
        unavailable,
    )

    missed = attribution.get("misattributions")
    verdict = "fail" if missed != 0 else "info"
    yield verdict, "misattributions: %s (a healthy server must never be blamed)" % missed

    corruptions = schedule.get("corruptions") or 0
    events = attribution.get("events") or 0
    verdict = "fail" if events < corruptions else "info"
    yield verdict, "attribution events: %d of %d injected corruptions" % (
        events,
        corruptions,
    )

    count = heals.get("count") or 0
    verdict = "fail" if count < 1 else "info"
    yield verdict, "heals: %d (at least one required)" % count

    identical = heals.get("byte_identical")
    verdict = "fail" if identical != count else "info"
    yield verdict, "byte-identical heals: %s of %d (every heal must match)" % (
        identical,
        count,
    )


def compare_write_path(baseline, current, tolerance):
    """Findings for a ``write_path`` report.

    Correctness is absolute regardless of mode: a write that leaves any
    server differing from the from-scratch re-encode oracle, a stale row
    surviving read-repair, or a reconstruction that differs from a clean
    re-deploy is a regression, full stop.  The speedup ratios gate
    against static floors under quick mode and the committed ratios in
    full mode.
    """
    quick = bool(current.get("quick"))
    writes = current.get("writes") or {}
    repair = current.get("repair") or {}
    timing = current.get("timing") or {}

    count = writes.get("count") or 0
    verdict = "fail" if count < 1 else "info"
    yield verdict, "write schedule applied %d deltas" % count

    identical = writes.get("byte_identical")
    verdict = "fail" if identical != count else "info"
    yield verdict, "byte-identical writes: %s of %d (every write must match)" % (
        identical,
        count,
    )

    stale = repair.get("stale_reads_after_repair")
    verdict = "fail" if stale != 0 else "info"
    yield verdict, "stale rows after read-repair: %s (must be 0)" % stale

    repairs = repair.get("read_repairs") or 0
    verdict = "fail" if repairs < 1 else "info"
    yield verdict, "read repairs: %d (the injected skew must trigger one)" % repairs

    mismatches = repair.get("redeploy_read_mismatches")
    verdict = "fail" if mismatches != 0 else "info"
    yield verdict, "reads differing from a fresh re-deploy: %s (must be 0)" % mismatches

    base_timing = baseline.get("timing") or {}
    yield _gate_ratio(
        "incremental_vs_full_speedup",
        base_timing.get("incremental_vs_full_speedup"),
        timing.get("incremental_vs_full_speedup"),
        quick,
        QUICK_MIX_SPEEDUP_FLOOR,
        tolerance,
    )
    yield _gate_ratio(
        "update_vs_full_speedup",
        base_timing.get("update_vs_full_speedup"),
        timing.get("update_vs_full_speedup"),
        quick,
        QUICK_UPDATE_SPEEDUP_FLOOR,
        tolerance,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="freshly emitted trajectory JSON")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_field_kernels.json",
        help="committed baseline trajectory (default: repo root)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional speedup loss before failing (default 0.25)",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    kind = current.get("benchmark")
    if kind != baseline.get("benchmark"):
        print(
            "[FAIL] benchmark mismatch: current %r vs baseline %r"
            % (kind, baseline.get("benchmark"))
        )
        return 1
    if kind == "gateway_load":
        findings = compare_gateway(baseline, current, args.tolerance)
        label = "gateway load"
    elif kind == "chaos_recovery":
        findings = compare_chaos(baseline, current, args.tolerance)
        label = "chaos recovery"
    elif kind == "write_path":
        findings = compare_write_path(baseline, current, args.tolerance)
        label = "write path"
    else:
        findings = compare(baseline, current, args.tolerance)
        label = "kernel speedup"
    failures = 0
    for severity, message in findings:
        print("[%s] %s" % (severity.upper(), message))
        if severity == "fail":
            failures += 1
    if failures:
        print("%d %s regression(s) beyond tolerance" % (failures, label))
        return 1
    print("%s metrics within tolerance of the committed baseline" % label)
    return 0


if __name__ == "__main__":
    sys.exit(main())
