"""Gate kernel-speedup regressions against the committed baseline.

CI re-runs ``bench_field_kernels.py --quick`` into a sibling JSON and then
compares its speedup rows against the committed ``BENCH_field_kernels.json``.
Rows are keyed on ``(field, scale_label, candidate, baseline)``; only keys
present in *both* files are compared (quick mode drops the large-scale
naive and extension-field rows on purpose).  A run fails when a compared
``share_encode_speedup`` or ``batch_eval_speedup`` drops more than
``--tolerance`` (default 25%) below the committed value, or when the
current gate block falls below its quick-mode floor.  Absolute wall-clock
numbers are never compared — CI machines are slower and noisier than the
baseline host; the speedup *ratios* are what the kernels promise.

Usage::

    python benchmarks/check_bench_regression.py BENCH_field_kernels.ci.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: fraction of the committed speedup a current run may lose before failing
DEFAULT_TOLERANCE = 0.25

#: the speedup columns that gate (workload/encode stay informational:
#: full encode folds in kernel-independent parse + index time, and the
#: workload mixes cache-warm query layers measured elsewhere)
GATED_METRICS = ("share_encode_speedup", "batch_eval_speedup")

#: quick-mode CI floor for the 10^4-node numpy-vs-prime gate block; the
#: committed full-mode baseline carries the real >= 5x numbers
QUICK_GATE_FLOOR = 2.0


def _index(trajectory):
    return {
        (
            row["field"],
            row["scale_label"],
            row["candidate"],
            row["baseline"],
        ): row
        for row in trajectory.get("speedups", [])
    }


def compare(baseline, current, tolerance):
    """Yield (severity, message) findings; severity is 'fail' or 'info'."""
    base_rows = _index(baseline)
    current_rows = _index(current)
    compared = 0
    for key in sorted(base_rows):
        row = current_rows.get(key)
        if row is None:
            yield "info", "skipping %s/%s %s-vs-%s: not in current run" % key
            continue
        compared += 1
        for metric in GATED_METRICS:
            committed = base_rows[key].get(metric)
            measured = row.get(metric)
            if committed is None or measured is None:
                continue
            floor = committed * (1.0 - tolerance)
            verdict = "fail" if measured < floor else "info"
            yield verdict, "%s/%s %s-vs-%s %s: %.2fx vs committed %.2fx (floor %.2fx)" % (
                key + (metric, measured, committed, floor)
            )
    if compared == 0:
        yield "fail", "no comparable speedup rows between baseline and current run"
    gate = current.get("gate")
    if gate is None:
        if current.get("numpy"):
            yield "fail", "current run has numpy but no gate block"
        else:
            yield "info", "no numpy in current run: gate block skipped"
    else:
        floor = QUICK_GATE_FLOOR if current.get("quick") else gate.get("minimum", 5.0)
        for metric in ("encode_speedup", "batch_eval_speedup"):
            measured = gate.get(metric, 0.0)
            verdict = "fail" if measured < floor else "info"
            yield verdict, "gate %s at %d nodes: %.2fx (floor %.2fx)" % (
                metric,
                gate.get("nodes", 0),
                measured,
                floor,
            )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="freshly emitted trajectory JSON")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_field_kernels.json",
        help="committed baseline trajectory (default: repo root)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional speedup loss before failing (default 0.25)",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    failures = 0
    for severity, message in compare(baseline, current, args.tolerance):
        print("[%s] %s" % (severity.upper(), message))
        if severity == "fail":
            failures += 1
    if failures:
        print("%d kernel speedup regression(s) beyond tolerance" % failures)
        return 1
    print("kernel speedups within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
