"""Section 4 — trie compression of text content.

Benchmarks the trie transform on a synthetic corpus and prints the size
claims of section 4: duplicate-word removal ≈50%, compressed trie ≈75–80%,
and ≈3.5–4.5 encoded bytes per original letter at p = 29.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import register_record
from repro.experiments.trie_compression import build_corpus, run_trie_compression_experiment
from repro.trie.stats import measure_text_compression
from repro.trie.transform import TrieTransformer
from repro.xmldoc.nodes import XMLDocument, XMLElement


@pytest.fixture(scope="module")
def corpus():
    return build_corpus()


@pytest.fixture(scope="module")
def section4_record(corpus):
    record = run_trie_compression_experiment(texts=corpus)
    register_record(record)
    return record


def test_measure_compression(benchmark, corpus, section4_record):
    """Time the full corpus measurement (tokenise + trie build + accounting)."""
    report = benchmark(lambda: measure_text_compression(corpus, p=29))
    benchmark.extra_info["dedup_reduction"] = round(report.dedup_reduction, 3)
    benchmark.extra_info["trie_reduction"] = round(report.trie_reduction, 3)
    benchmark.extra_info["bytes_per_letter"] = round(report.encoded_bytes_per_original_letter, 3)


def test_document_transform(benchmark, corpus):
    """Time rewriting a text-heavy document into its compressed trie form."""
    root = XMLElement("people")
    for index, text in enumerate(corpus[:50]):
        person = root.make_child("person")
        person.make_child("name", text="Person %d" % index)
        person.make_child("description", text=text)
    document = XMLDocument(root)
    transformer = TrieTransformer(compressed=True)

    transformed = benchmark(lambda: transformer.transform_document(document))
    benchmark.extra_info["input_elements"] = document.element_count()
    benchmark.extra_info["output_elements"] = transformed.element_count()
    assert transformed.element_count() > document.element_count()


def test_paper_claims(section4_record):
    """The three quantitative claims of section 4 hold on the synthetic corpus."""
    series = section4_record.series
    assert 40 <= series["dedup_reduction_percent"][0] <= 70
    assert 70 <= series["trie_reduction_percent"][0] <= 90
    assert 3.0 <= series["encoded_bytes_per_letter"][0] <= 5.5
