"""Figure 5 + Table 1 — evaluations vs query length, simple vs advanced.

Benchmarks each of the nine table-1 queries on both engines (containment
test, as in the paper's first experiment) and prints the per-query evaluation
counts and result sizes — the series plotted in figure 5.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import register_record
from repro.experiments.query_length import run_query_length_experiment
from repro.experiments.workloads import TABLE1_QUERIES


@pytest.fixture(scope="module")
def figure5_record(bench_database):
    record = run_query_length_experiment(database=bench_database)
    register_record(record)
    return record


@pytest.mark.parametrize("query_number", range(1, len(TABLE1_QUERIES) + 1))
@pytest.mark.parametrize("engine", ["simple", "advanced"])
def test_query_length(benchmark, bench_database, figure5_record, engine, query_number):
    """Time one table-1 query under the containment test."""
    query = TABLE1_QUERIES[query_number - 1]
    result = benchmark(lambda: bench_database.query(query, engine=engine, strict=False))
    benchmark.extra_info["query"] = query
    benchmark.extra_info["evaluations"] = result.evaluations
    benchmark.extra_info["result_size"] = result.result_size


def test_engines_differ_by_at_most_a_constant_factor(figure5_record):
    """The paper's figure-5 finding for the table-1 worst-case queries."""
    for number in range(1, len(TABLE1_QUERIES) + 1):
        pair = [m for m in figure5_record.measurements if m.extra["query_number"] == number]
        simple = next(m for m in pair if m.engine == "simple")
        advanced = next(m for m in pair if m.engine == "advanced")
        if simple.evaluations:
            assert advanced.evaluations / simple.evaluations < 12
