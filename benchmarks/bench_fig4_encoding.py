"""Figure 4 — encoding cost: output size, index size and time vs input size.

Benchmarks the encoder itself (time per encode at increasing document sizes)
and prints the same series the paper plots: input size, encoded output size,
index size and encoding time, plus the storage-breakdown claims of section
6.1 (≈17% structure overhead, payload ≈1.5× the input).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import register_record
from repro.encode.encoder import Encoder
from repro.encode.tagmap import TagMap
from repro.experiments.encoding import run_encoding_experiment, summarize_linearity
from repro.experiments.workloads import DEFAULT_ENCODING_SEED, bench_scale
from repro.gf.factory import make_field
from repro.xmark.generator import generate_document
from repro.xmldoc.dtd import XMARK_DTD
from repro.xmldoc.serializer import serialize

_UNIT = bench_scale(0.01)
_SWEEP_STEPS = (1, 2, 4, 6, 8, 10)


@pytest.fixture(scope="module")
def tag_map():
    return TagMap.from_names(XMARK_DTD.element_names(), field=make_field(83))


@pytest.fixture(scope="module")
def figure4_record():
    """Run the full figure-4 sweep once and register its report."""
    record = run_encoding_experiment(scales=[_UNIT * step for step in _SWEEP_STEPS])
    record.parameters["linearity"] = summarize_linearity(record)
    register_record(record)
    return record


@pytest.mark.parametrize("step", _SWEEP_STEPS)
def test_encode_document(benchmark, tag_map, figure4_record, step):
    """Time one full encode (parse → polynomials → shares → indexed rows)."""
    xml_text = serialize(generate_document(scale=_UNIT * step))

    def encode():
        return Encoder(tag_map, DEFAULT_ENCODING_SEED).encode_text(xml_text)

    encoded = benchmark(encode)
    stats = encoded.stats
    benchmark.extra_info["input_bytes"] = stats.input_bytes
    benchmark.extra_info["output_bytes"] = stats.output_bytes
    benchmark.extra_info["index_bytes"] = stats.index_bytes
    benchmark.extra_info["nodes"] = stats.node_count
    benchmark.extra_info["structure_fraction"] = round(stats.structure_fraction, 4)
    benchmark.extra_info["expansion_ratio"] = round(stats.expansion_ratio, 4)
    assert stats.node_count > 0
    assert stats.output_bytes > stats.structure_bytes


def test_encoding_is_linear_in_input_size(figure4_record):
    """The paper: storage space and encoding time are strictly linear."""
    fits = figure4_record.parameters["linearity"]
    assert fits["output_mb"]["r_squared"] > 0.95
    assert fits["time_s"]["r_squared"] > 0.8
