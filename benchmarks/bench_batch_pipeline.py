"""Batched vs per-node query pipeline — remote calls, bytes, wall-clock.

The batched pipeline (server bulk endpoints + ``*_many`` client primitives)
must issue O(1) remote calls per query step instead of O(candidates).  This
module quantifies the win on a generated XMark document of ≥ 500 nodes:

* ≥ 5× fewer transport ``invoke`` calls on descendant-axis queries,
* ``descendants_of`` touches only subtree-sized row ranges (the pre-order
  subtree is contiguous, so the range scan stops at the subtree boundary),
* wall-clock timings for both paths via pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.core.database import EncryptedXMLDatabase
from repro.filters.server import ServerFilter
from repro.xmark.generator import generate_document
from repro.xmldoc.dtd import XMARK_DTD

SEED = b"bench-batch-seed-0123456789abcde"

#: scale 0.05 generates a 598-node document (the criterion asks for ≥ 500)
DOCUMENT_SCALE = 0.05

DESCENDANT_QUERIES = ["//city", "/site//person//city"]


@pytest.fixture(scope="module")
def batch_document():
    document = generate_document(scale=DOCUMENT_SCALE, seed=4242)
    return document


def _build(document, batched: bool) -> EncryptedXMLDatabase:
    return EncryptedXMLDatabase.from_document(
        document,
        tag_names=XMARK_DTD.element_names(),
        seed=SEED,
        p=83,
        keep_plaintext=False,
        batched=batched,
    )


@pytest.fixture(scope="module")
def batched_database(batch_document):
    return _build(batch_document, batched=True)


@pytest.fixture(scope="module")
def per_node_database(batch_document):
    return _build(batch_document, batched=False)


class _RowCountingTable:
    """Table wrapper counting the rows an index range scan materialises."""

    def __init__(self, table):
        self._table = table
        self.rows_examined = 0

    def lookup(self, column, value):
        return self._table.lookup(column, value)

    def range_lookup(self, *args, **kwargs):
        for row in self._table.range_lookup(*args, **kwargs):
            self.rows_examined += 1
            yield row

    def __len__(self):
        return len(self._table)


@pytest.mark.parametrize("engine", ["simple", "advanced"])
@pytest.mark.parametrize("query", DESCENDANT_QUERIES)
def test_batched_pipeline_issues_5x_fewer_calls(
    batched_database, per_node_database, engine, query
):
    """Acceptance criterion: ≥ 5× fewer transport invokes on //-queries."""
    assert batched_database.node_count >= 500
    batched_database.transport_stats.reset()
    per_node_database.transport_stats.reset()

    batched_result = batched_database.query(query, engine=engine, strict=False)
    per_node_result = per_node_database.query(query, engine=engine, strict=False)

    assert batched_result.matches == per_node_result.matches
    batched_calls = batched_database.transport_stats.calls
    per_node_calls = per_node_database.transport_stats.calls
    assert batched_calls > 0
    assert per_node_calls >= 5 * batched_calls, (
        "expected >=5x fewer calls, got %d vs %d" % (batched_calls, per_node_calls)
    )
    # Per-query accounting reflects the run just recorded.
    assert batched_database.transport_stats.queries == 1
    assert batched_database.transport_stats.calls_per_query == batched_calls


def test_descendants_scan_examines_subtree_sized_ranges(batched_database):
    """Acceptance criterion: descendants_of touches subtree-sized row ranges."""
    table = batched_database.encoded.node_table
    counting = _RowCountingTable(table)
    server = ServerFilter(counting, batched_database.encoded.ring)

    root = server.root_pre()
    for anchor in server.children_of(root):
        counting.rows_examined = 0
        descendants = server.descendants_of(anchor)
        # The scan reads the subtree rows plus at most the one boundary row
        # whose larger ``post`` ends it — never the remainder of the table.
        assert counting.rows_examined <= len(descendants) + 1
    # Sanity: at least one anchor has a subtree much smaller than the table.
    smallest = min(len(server.descendants_of(pre)) for pre in server.children_of(root))
    assert smallest + 1 < len(table)


@pytest.mark.parametrize("path", ["batched", "per-node"])
@pytest.mark.parametrize("engine", ["simple", "advanced"])
def test_descendant_query_wallclock(
    benchmark, batched_database, per_node_database, engine, path
):
    """Wall-clock of the two protocols on the descendant-axis hot path."""
    database = batched_database if path == "batched" else per_node_database
    result = benchmark(lambda: database.query("//city", engine=engine, strict=False))
    benchmark.extra_info["path"] = path
    benchmark.extra_info["calls"] = database.transport_stats.calls
    benchmark.extra_info["result_size"] = result.result_size


def test_batched_pipeline_moves_fewer_or_same_order_bytes(
    batched_database, per_node_database
):
    """Batching must not blow the payload volume up while cutting calls."""
    batched_database.transport_stats.reset()
    per_node_database.transport_stats.reset()
    batched_database.query("//city", engine="advanced", strict=False)
    per_node_database.query("//city", engine="advanced", strict=False)
    assert (
        batched_database.transport_stats.total_bytes
        <= 2 * per_node_database.transport_stats.total_bytes
    )
