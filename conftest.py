"""Pytest bootstrap: make ``src/`` importable even without installation.

The canonical workflow is ``pip install -e .``; this fallback lets the test
and benchmark suites run from a plain checkout (e.g. on offline CI machines
where editable installs are awkward).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
