"""The abstract n-party sharing scheme behind every deployment topology.

The paper's security argument rests on the node polynomials being split
across *non-colluding parties*: the client (whose share is pseudorandom and
regenerable from the secret seed) and one or more storage servers.  This
module fixes the interface every concrete scheme implements, so the encoder,
the :class:`~repro.filters.client.ClientFilter` and the cluster layer can be
wired against any of them:

* the **client-facing surface** (``client_share`` / ``reconstruct`` /
  ``evaluate_shared``) is exactly what the two-party
  :class:`~repro.secretshare.additive.AdditiveSharing` always offered — the
  query-time filter code runs unmodified against every scheme;
* the **cluster-facing surface** (``server_shares`` / ``combine_vectors`` /
  ``combine_values_many`` / ``verify_vectors``) is what the deploy path and
  the :class:`~repro.filters.cluster.ClusterClient` use to scatter one share
  slice per server and gather any sufficient subset of replies back into the
  single "combined server share" the client-facing surface expects.

Because every combination rule here is *linear* in the shares, combining a
batch of evaluations (one value per candidate node, per server) is the same
kernel vector operation as combining coefficient vectors — which is why the
cluster surface is expressed over plain integer vectors rather than ring
polynomials.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.poly.ring import QuotientRing, RingPolynomial
from repro.prg.generator import KeyedPRG


class SharingError(ValueError):
    """Raised for invalid scheme parameters or insufficient share subsets."""


class AttributionInconclusive(SharingError):
    """Corruption is detectable but cannot be pinned on a server.

    Raised by :meth:`SharingScheme.attribute_corruption` when the reply set
    carries too little redundancy for a majority vote (fewer than ``k + 2``
    replies), when no consistent subset reaches the ``k + 1`` agreements an
    honest polynomial must collect, or when two maximal consistent subsets
    tie.  Carries the partial ``evidence`` gathered before giving up.
    """

    def __init__(self, message: str, evidence: Mapping[str, object] = None):
        super().__init__(message)
        self.evidence: Dict[str, object] = dict(evidence or {})


@dataclass(frozen=True)
class Attribution:
    """Verdict of a majority vote across k-subset reconstructions.

    ``suspects`` are the server indices whose replies disagree with the
    unique largest mutually-consistent subset (``majority``).  ``votes``
    counts, per server, how many of the ``subsets`` evaluated k-subsets
    produced a polynomial that server's reply agrees with — honest servers
    collect at least ``C(len(majority) - 1, k - 1)`` votes, corrupt ones
    strictly fewer.  ``divergence`` maps each suspect to the first vector
    component where its reply departs from the majority reconstruction,
    letting callers point at a concrete pre/batch position.
    """

    suspects: Tuple[int, ...]
    majority: Tuple[int, ...]
    votes: Dict[int, int] = field(default_factory=dict)
    subsets: int = 0
    replies: int = 0
    divergence: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form for error payloads and supervisor logs."""
        return {
            "suspects": list(self.suspects),
            "majority": list(self.majority),
            "votes": dict(self.votes),
            "subsets": self.subsets,
            "replies": self.replies,
            "divergence": dict(self.divergence),
        }


class SharingScheme(ABC):
    """Splits node polynomials into one client share plus n server shares.

    Invariant of every concrete scheme: for any polynomial ``P`` and node
    position ``pre``::

        client_share(pre) + combine(server_shares(P, pre))  ==  P

    where ``combine`` accepts any subset of server shares the scheme declares
    sufficient (all of them for additive schemes, any ``threshold`` of them
    for threshold schemes).
    """

    #: short scheme name used by factories and reports
    name = "abstract"

    def __init__(self, ring: QuotientRing, prg: KeyedPRG):
        if prg.field != ring.field:
            raise SharingError(
                "PRG field %r does not match ring field %r" % (prg.field, ring.field)
            )
        self.ring = ring
        self.prg = prg

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def num_servers(self) -> int:
        """Number of server-side share slices (n)."""

    @property
    @abstractmethod
    def threshold(self) -> int:
        """Minimum number of server shares a combination needs.

        Additive schemes need every share (``threshold == num_servers``)
        but may mark individual shares as :meth:`regenerable`; threshold
        schemes accept any ``threshold``-sized subset.
        """

    def regenerable(self, server_index: int) -> bool:
        """Whether the client can locally recompute this server's share.

        Regenerable shares are the cluster's cheap fail-over path: when the
        server holding one is down, the client derives the share from its
        secret seed instead of aborting the query.
        """
        self._check_index(server_index)
        return False

    def regenerate_share(self, pre: int, server_index: int, version: int = 0) -> RingPolynomial:
        """Locally recompute a regenerable server share (see above).

        ``version`` is the row's write epoch: re-shared rows draw their PRG
        material from a version-salted stream, so regenerating the share of
        a row that has been mutated needs the version stored with it.
        Version 0 — every row the bulk encoder produced — is the historical
        unsalted stream.
        """
        self._check_index(server_index)
        raise SharingError(
            "share of server %d is not regenerable under %s sharing"
            % (server_index, self.name)
        )

    def _check_index(self, server_index: int) -> None:
        if not 0 <= server_index < self.num_servers:
            raise SharingError(
                "server index %d out of range for %d servers"
                % (server_index, self.num_servers)
            )

    def complete(self, present) -> bool:
        """Whether :meth:`combine_vectors` accepts exactly these server indices.

        The default — at least ``threshold`` distinct indices — covers both
        additive schemes (``threshold == num_servers``: every share must be
        present) and threshold schemes (any ``k``-subset).
        """
        return len(set(present)) >= self.threshold

    def sufficient(self, present) -> bool:
        """Whether ``present`` can be *completed* into a combinable set.

        True when the subset already combines, or when every missing share
        is :meth:`regenerable` by the client — the cluster's fail-over test.
        """
        present = set(present)
        if self.complete(present):
            return True
        missing = set(range(self.num_servers)) - present
        return all(self.regenerable(index) for index in missing)

    # ------------------------------------------------------------------
    # Client-facing surface (what ClientFilter uses)
    # ------------------------------------------------------------------

    @abstractmethod
    def client_share(self, pre: int) -> RingPolynomial:
        """The client's (regenerable, never stored) share of node ``pre``."""

    def client_shares(self, pres: Sequence[int]) -> List[RingPolynomial]:
        """Client shares of a whole candidate list."""
        return [self.client_share(pre) for pre in pres]

    def reconstruct(self, server_share: RingPolynomial, pre: int) -> RingPolynomial:
        """Recombine the *combined* server share with the client share."""
        return self.client_share(pre) + server_share

    def evaluate_shared(self, server_share: RingPolynomial, pre: int, point: int) -> int:
        """Evaluate the underlying polynomial at ``point`` via its shares."""
        server_value = self.ring.evaluate(server_share, point)
        client_value = self.ring.evaluate(self.client_share(pre), point)
        return self.ring.field.add(server_value, client_value)

    def client_evaluations(self, pres: Sequence[int], point: int) -> List[int]:
        """Client-side evaluation values for a whole candidate list.

        One value per ``pre``: the client share of that node evaluated at
        ``point``.  The generic path regenerates the share polynomials and
        sweeps them through ``evaluate_many``; array-native schemes override
        it to evaluate the PRG block without building polynomial objects.
        """
        return self.ring.evaluate_many(self.client_shares(pres), point)

    def reconstruct_rows(
        self, rows: Sequence[Sequence[int]], pres: Sequence[int]
    ) -> List[RingPolynomial]:
        """Reconstruct many node polynomials from combined-server rows.

        ``rows[i]`` is the combined server share's coefficient vector for
        node ``pres[i]`` (as fetched from a share table or decoded from the
        wire).  The generic path validates each row through the
        ``RingPolynomial`` constructor and recombines with the client share,
        exactly as calling :meth:`reconstruct` per node.
        """
        ring = self.ring
        return [
            self.reconstruct(RingPolynomial(ring, row), pre)
            for row, pre in zip(rows, pres)
        ]

    def _trusted_matrix(self, kernel, rows):
        """Rows as a canonical kernel matrix, or None to use the validating path.

        Helper for array-native ``reconstruct_rows`` overrides.  Rows
        typically come straight out of a schema-validated share table;
        anything irregular (ragged, non-integer, out of the field's range)
        returns None so the caller falls back to the generic per-row
        constructor, keeping error semantics and out-of-range reduction
        exactly as before.
        """
        if not rows:
            return None
        length = self.ring.length
        if any(len(row) != length for row in rows):
            return None
        try:
            matrix = kernel.stack(rows)
        except (TypeError, ValueError):
            return None
        if ((matrix < 0) | (matrix >= self.ring.field.order)).any():
            return None
        return matrix

    # ------------------------------------------------------------------
    # Cluster-facing surface (what deploy and ClusterClient use)
    # ------------------------------------------------------------------

    @abstractmethod
    def server_shares(
        self, polynomial: RingPolynomial, pre: int, version: int = 0
    ) -> List[RingPolynomial]:
        """Split ``polynomial`` into the n stored server shares (in server order).

        ``version`` selects the PRG epoch the masking material is drawn
        from: re-sharing a mutated row under a fresh version prevents the
        servers from learning the polynomial delta by subtracting the old
        slice from the new one.  Version 0 reproduces the bulk encoder's
        historical output bit for bit.
        """

    @staticmethod
    def check_versions(pres: Sequence[int], versions) -> Sequence[int]:
        """Normalise an optional per-row version vector (None → all zeros)."""
        if versions is None:
            return [0] * len(pres)
        versions = list(versions)
        if len(versions) != len(pres):
            raise SharingError(
                "got %d versions but %d pre positions" % (len(versions), len(pres))
            )
        return versions

    def server_share_rows(
        self,
        vectors: Sequence[Sequence[int]],
        pres: Sequence[int],
        versions: Sequence[int] = None,
    ) -> List[List[Sequence[int]]]:
        """Split a whole batch of canonical coefficient vectors at once.

        Returns one row list per server: ``result[s][i]`` is server ``s``'s
        share of the polynomial ``vectors[i]`` (node ``pres[i]``) as a raw
        coefficient sequence — the encoder's bulk-insert shape.  The generic
        path wraps each vector and calls :meth:`server_shares`; array-native
        schemes override it with whole-matrix arithmetic over the PRG's
        block interface.  Bit-identical either way.  ``versions`` aligns
        with ``pres`` (omitted → all zero, the bulk-encode epoch).
        """
        if len(vectors) != len(pres):
            raise SharingError(
                "got %d polynomials but %d pre positions" % (len(vectors), len(pres))
            )
        versions = self.check_versions(pres, versions)
        ring = self.ring
        rows: List[List[Sequence[int]]] = [[] for _ in range(self.num_servers)]
        for vector, pre, version in zip(vectors, pres, versions):
            polynomial = ring.wrap_canonical(vector)
            for index, share in enumerate(
                self.server_shares(polynomial, pre, version=version)
            ):
                rows[index].append(share.coeffs)
        return rows

    @abstractmethod
    def combine_vectors(self, vectors: Mapping[int, Sequence[int]]) -> List[int]:
        """Linearly combine per-server vectors into the combined server vector.

        ``vectors`` maps server index → an integer vector; all vectors must
        have the same length.  Works for share coefficient vectors and for
        batched evaluation-result vectors alike (the combination rule is the
        same linear map).  Raises :class:`SharingError` when the subset of
        servers present is insufficient or the vectors are misaligned.
        """

    @staticmethod
    def check_aligned(vectors: Mapping[int, Sequence[int]]) -> None:
        """Reject per-server vectors of differing lengths.

        The kernel's component-wise ``zip`` would otherwise silently
        truncate to the shortest reply — a desynchronised server must be an
        error, not a shorter result.
        """
        lengths = {index: len(vector) for index, vector in vectors.items()}
        if len(set(lengths.values())) > 1:
            raise SharingError(
                "misaligned per-server vectors (lengths %s)" % lengths
            )

    def combine_shares(self, shares: Mapping[int, RingPolynomial]) -> RingPolynomial:
        """Combine per-server share polynomials into the combined server share."""
        return self.ring.wrap_canonical(
            self.combine_vectors({index: poly.coeffs for index, poly in shares.items()})
        )

    def combine_values_many(self, values: Mapping[int, Sequence[int]]) -> List[int]:
        """Combine per-server batched evaluation results (aligned vectors)."""
        return self.combine_vectors(values)

    def combine_value(self, values: Mapping[int, int]) -> int:
        """Combine one evaluation result per server into the server-side value."""
        return self.combine_vectors({index: (value,) for index, value in values.items()})[0]

    def verify_vectors(self, vectors: Mapping[int, Sequence[int]]) -> List[int]:
        """Server indices whose vectors are inconsistent with the rest.

        Only meaningful when the scheme carries redundancy (more replies than
        the threshold needs); schemes without redundancy return ``[]``.
        """
        return []

    def attribute_corruption(self, vectors: Mapping[int, Sequence[int]]) -> Attribution:
        """Majority-vote which server(s) sent inconsistent vectors.

        Where :meth:`verify_vectors` only reports disagreement *relative to
        the base k-subset* (and so accuses the wrong server when a base
        member is the corrupt one), this surface cross-reconstructs over
        every k-subset of the replies and votes: the unique largest
        mutually-consistent subset is the honest majority, everything
        outside it is a suspect.  Needs at least ``k + 2`` replies; schemes
        without redundancy (``threshold == num_servers``) can never
        out-vote a corrupt share and always raise
        :class:`AttributionInconclusive`.
        """
        raise AttributionInconclusive(
            "%s sharing carries no redundancy (threshold %d of %d servers): "
            "corruption is detectable at best, never attributable"
            % (self.name, self.threshold, self.num_servers),
            evidence={"replies": len(vectors), "threshold": self.threshold},
        )

    def reshare_vectors(
        self, vectors: Mapping[int, Sequence[int]], server_index: int
    ) -> List[int]:
        """Re-derive ``server_index``'s stored vector from healthy peers' rows.

        The heal path: given any sufficient subset of *other* servers' rows
        for the same nodes, rebuild the row the missing server must hold —
        without touching the original polynomials or the encoding seed.
        Threshold schemes interpolate to the victim's abscissa; schemes
        whose shares are independent random slices cannot (their only heal
        path is :meth:`regenerate_share` for regenerable lanes).
        """
        self._check_index(server_index)
        raise SharingError(
            "share of server %d cannot be re-derived from peers under %s "
            "sharing" % (server_index, self.name)
        )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def split_all(self, polynomial: RingPolynomial, pre: int) -> Dict[str, object]:
        """All shares of one polynomial (used by tests and demos)."""
        return {
            "client": self.client_share(pre),
            "servers": self.server_shares(polynomial, pre),
        }

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "%s(n=%d, k=%d, field=F_%d)" % (
            type(self).__name__,
            self.num_servers,
            self.threshold,
            self.ring.field.order,
        )
