"""Two-party additive sharing of polynomials in the encoding ring."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.poly.ring import QuotientRing, RingPolynomial
from repro.prg.generator import KeyedPRG


@dataclass(frozen=True)
class SharePair:
    """The two additive shares of one node polynomial.

    ``client`` is the pseudorandom share (regenerable from the seed),
    ``server`` is the stored share.  ``client + server`` equals the original
    node polynomial.
    """

    client: RingPolynomial
    server: RingPolynomial

    def reconstruct(self) -> RingPolynomial:
        """Recombine the shares into the original polynomial."""
        return self.client + self.server


class AdditiveSharing:
    """Splits and recombines node polynomials using a :class:`KeyedPRG`.

    The client share of the node at position ``pre`` is defined as the first
    ``q - 1`` elements of the PRG stream for ``pre``; the server share is the
    component-wise difference ``original - client``.  Because the client share
    depends only on ``(seed, pre)`` it never needs to be stored: both the
    encoder and the query-time :class:`repro.filters.client.ClientFilter`
    derive it independently.
    """

    def __init__(self, ring: QuotientRing, prg: KeyedPRG):
        if prg.field != ring.field:
            raise ValueError(
                "PRG field %r does not match ring field %r" % (prg.field, ring.field)
            )
        self.ring = ring
        self.prg = prg

    # ------------------------------------------------------------------
    # Sharing
    # ------------------------------------------------------------------

    def client_share(self, pre: int) -> RingPolynomial:
        """Regenerate the pseudorandom client share for node ``pre``."""
        # PRG output is canonical field integers, so the validating
        # constructor would only re-check what the stream guarantees.
        coefficients = self.prg.elements(pre, self.ring.length)
        return self.ring.wrap_canonical(coefficients)

    def client_shares(self, pres: Sequence[int]) -> list:
        """Regenerate the client shares of a whole candidate list."""
        length = self.ring.length
        return [
            self.ring.wrap_canonical(coefficients)
            for coefficients in self.prg.elements_many(pres, length)
        ]

    def split(self, polynomial: RingPolynomial, pre: int) -> SharePair:
        """Split ``polynomial`` into its client/server share pair for ``pre``."""
        client = self.client_share(pre)
        server = polynomial - client
        return SharePair(client=client, server=server)

    def server_share(self, polynomial: RingPolynomial, pre: int) -> RingPolynomial:
        """Compute only the server share (what actually gets stored)."""
        return polynomial - self.client_share(pre)

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------

    def reconstruct(self, server_share: RingPolynomial, pre: int) -> RingPolynomial:
        """Recombine a stored server share with the regenerated client share."""
        return self.client_share(pre) + server_share

    def evaluate_shared(self, server_share: RingPolynomial, pre: int, point: int) -> int:
        """Evaluate the underlying polynomial at ``point`` via its shares.

        This mirrors the distributed containment test: the server evaluates
        its share, the client evaluates its regenerated share, and the two
        results are added.  Returns the combined field value (zero means the
        tag occurs in the node's subtree).
        """
        server_value = self.ring.evaluate(server_share, point)
        client_value = self.ring.evaluate(self.client_share(pre), point)
        return self.ring.field.add(server_value, client_value)

    # ------------------------------------------------------------------
    # Batch helpers
    # ------------------------------------------------------------------

    def split_many(
        self, polynomials: Sequence[RingPolynomial], pres: Sequence[int]
    ) -> list:
        """Split a batch of polynomials; ``pres`` supplies their positions."""
        if len(polynomials) != len(pres):
            raise ValueError(
                "got %d polynomials but %d pre positions" % (len(polynomials), len(pres))
            )
        return [self.split(poly, pre) for poly, pre in zip(polynomials, pres)]
