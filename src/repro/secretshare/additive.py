"""Additive sharing of polynomials in the encoding ring (two-party and n-party).

:class:`AdditiveSharing` is the paper's original two-party split — one
PRG-derived client share plus exactly one stored server share.
:class:`AdditiveNSharing` generalises it to n servers: the first ``n - 1``
stored shares are further PRG lanes (so the client can regenerate them when
their server is unreachable) and only the last share — the *residual* — is
genuinely new information that must be fetched from its server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence

from repro.poly.ring import QuotientRing, RingPolynomial
from repro.prg.generator import KeyedPRG
from repro.secretshare.scheme import SharingError, SharingScheme


@dataclass(frozen=True)
class SharePair:
    """The two additive shares of one node polynomial.

    ``client`` is the pseudorandom share (regenerable from the seed),
    ``server`` is the stored share.  ``client + server`` equals the original
    node polynomial.
    """

    client: RingPolynomial
    server: RingPolynomial

    def reconstruct(self) -> RingPolynomial:
        """Recombine the shares into the original polynomial."""
        return self.client + self.server


class AdditiveSharing(SharingScheme):
    """Splits and recombines node polynomials using a :class:`KeyedPRG`.

    The client share of the node at position ``pre`` is defined as the first
    ``q - 1`` elements of the PRG stream for ``pre``; the server share is the
    component-wise difference ``original - client``.  Because the client share
    depends only on ``(seed, pre)`` it never needs to be stored: both the
    encoder and the query-time :class:`repro.filters.client.ClientFilter`
    derive it independently.

    As a :class:`~repro.secretshare.scheme.SharingScheme` this is the
    degenerate single-server cluster: one stored share, threshold one.
    """

    name = "additive"

    def __init__(self, ring: QuotientRing, prg: KeyedPRG):
        super().__init__(ring, prg)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def num_servers(self) -> int:
        return 1

    @property
    def threshold(self) -> int:
        return 1

    # ------------------------------------------------------------------
    # Sharing
    # ------------------------------------------------------------------

    def client_share(self, pre: int) -> RingPolynomial:
        """Regenerate the pseudorandom client share for node ``pre``."""
        # PRG output is canonical field integers, so the validating
        # constructor would only re-check what the stream guarantees.
        coefficients = self.prg.elements(pre, self.ring.length)
        return self.ring.wrap_canonical(coefficients)

    def client_shares(self, pres: Sequence[int]) -> list:
        """Regenerate the client shares of a whole candidate list."""
        length = self.ring.length
        return [
            self.ring.wrap_canonical(coefficients)
            for coefficients in self.prg.elements_many(pres, length)
        ]

    def split(self, polynomial: RingPolynomial, pre: int) -> SharePair:
        """Split ``polynomial`` into its client/server share pair for ``pre``."""
        client = self.client_share(pre)
        server = polynomial - client
        return SharePair(client=client, server=server)

    def server_share(self, polynomial: RingPolynomial, pre: int) -> RingPolynomial:
        """Compute only the server share (what actually gets stored)."""
        return polynomial - self.client_share(pre)

    def server_shares(
        self, polynomial: RingPolynomial, pre: int, version: int = 0
    ) -> List[RingPolynomial]:
        """The single stored share, as a one-element cluster bundle.

        Two-party sharing has no version-salted material: the client lane
        must stay regenerable from ``(seed, pre)`` alone, so a re-shared
        row's new slice differs from the old one exactly by the polynomial
        delta.  The lone server therefore learns mutation deltas — an
        accepted (and documented) leak of the two-party topology; use a
        threshold scheme when that matters.
        """
        return [self.server_share(polynomial, pre)]

    def _client_block(self, pres: Sequence[int]):
        """The client-share coefficient block (lane 0) for many nodes."""
        return self.prg.elements_block(pres, self.ring.length)

    def client_evaluations(self, pres: Sequence[int], point: int) -> List[int]:
        kernel = self.ring.kernel
        if not kernel.array_native:
            return super().client_evaluations(pres, point)
        # Evaluate the regenerated PRG block directly — same memo accounting
        # as per-node client_share calls, no polynomial objects on the way.
        return self.ring.evaluate_rows(self._client_block(pres), point)

    def server_share_rows(
        self,
        vectors: Sequence[Sequence[int]],
        pres: Sequence[int],
        versions: Sequence[int] = None,
    ) -> List[List[Sequence[int]]]:
        kernel = self.ring.kernel
        if not kernel.array_native:
            return super().server_share_rows(vectors, pres, versions)
        if len(vectors) != len(pres):
            raise SharingError(
                "got %d polynomials but %d pre positions" % (len(vectors), len(pres))
            )
        self.check_versions(pres, versions)  # validated, then unused: no salted lanes
        matrix = kernel.stack(vectors)
        residual = kernel.vec_sub(matrix, self._client_block(pres))
        return [kernel.unstack(residual)]

    def reconstruct_rows(
        self, rows: Sequence[Sequence[int]], pres: Sequence[int]
    ) -> List[RingPolynomial]:
        kernel = self.ring.kernel
        if not kernel.array_native:
            return super().reconstruct_rows(rows, pres)
        # mirror the generic zip: the shorter of rows/pres bounds the batch
        count = min(len(rows), len(pres))
        rows = list(rows)[:count]
        pres = list(pres)[:count]
        matrix = self._trusted_matrix(kernel, rows)
        if matrix is None:
            return super().reconstruct_rows(rows, pres)
        combined = kernel.vec_add(matrix, self._client_block(pres))
        ring = self.ring
        return [ring.wrap_canonical(row) for row in kernel.unstack(combined)]

    def combine_vectors(self, vectors: Mapping[int, Sequence[int]]) -> List[int]:
        if 0 not in vectors:
            raise SharingError("two-party additive sharing needs the server share")
        return self.ring.kernel.unwrap(vectors[0])

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------

    def reconstruct(self, server_share: RingPolynomial, pre: int) -> RingPolynomial:
        """Recombine a stored server share with the regenerated client share."""
        return self.client_share(pre) + server_share

    def evaluate_shared(self, server_share: RingPolynomial, pre: int, point: int) -> int:
        """Evaluate the underlying polynomial at ``point`` via its shares.

        This mirrors the distributed containment test: the server evaluates
        its share, the client evaluates its regenerated share, and the two
        results are added.  Returns the combined field value (zero means the
        tag occurs in the node's subtree).
        """
        server_value = self.ring.evaluate(server_share, point)
        client_value = self.ring.evaluate(self.client_share(pre), point)
        return self.ring.field.add(server_value, client_value)

    # ------------------------------------------------------------------
    # Batch helpers
    # ------------------------------------------------------------------

    def split_many(
        self, polynomials: Sequence[RingPolynomial], pres: Sequence[int]
    ) -> list:
        """Split a batch of polynomials; ``pres`` supplies their positions."""
        if len(polynomials) != len(pres):
            raise ValueError(
                "got %d polynomials but %d pre positions" % (len(polynomials), len(pres))
            )
        return [self.split(poly, pre) for poly, pre in zip(polynomials, pres)]


class AdditiveNSharing(AdditiveSharing):
    """n-of-n additive sharing with one PRG lane per non-residual server.

    The polynomial is split as::

        P  =  client (lane 0)  +  s_0 (lane 1)  +  …  +  s_{n-2} (lane n-1)  +  residual

    Every share except the stored residual is a deterministic PRG stream, so
    the client can regenerate it when its server is down — only the residual
    server is irreplaceable.  With ``servers == 1`` this degenerates to
    exactly :class:`AdditiveSharing` (the residual *is* the classic server
    share), bit-for-bit.
    """

    name = "additive-n"

    def __init__(self, ring: QuotientRing, prg: KeyedPRG, servers: int = 1):
        super().__init__(ring, prg)
        if servers < 1:
            raise SharingError("additive sharing needs at least 1 server, got %d" % servers)
        self._servers = servers

    @property
    def num_servers(self) -> int:
        return self._servers

    @property
    def threshold(self) -> int:
        """All shares are needed — but all except the residual are regenerable."""
        return self._servers

    @property
    def residual_index(self) -> int:
        """Index of the one server whose share cannot be regenerated."""
        return self._servers - 1

    def regenerable(self, server_index: int) -> bool:
        self._check_index(server_index)
        return server_index != self.residual_index

    def regenerate_share(self, pre: int, server_index: int, version: int = 0) -> RingPolynomial:
        if not self.regenerable(server_index):
            raise SharingError(
                "the residual share (server %d) is stored-only and cannot be "
                "regenerated from the seed" % server_index
            )
        coefficients = self.prg.elements(
            pre, self.ring.length, lane=server_index + 1, version=version
        )
        return self.ring.wrap_canonical(coefficients)

    def server_shares(
        self, polynomial: RingPolynomial, pre: int, version: int = 0
    ) -> List[RingPolynomial]:
        shares = [
            self.regenerate_share(pre, index, version=version)
            for index in range(self._servers - 1)
        ]
        residual = polynomial - self.client_share(pre)
        for share in shares:
            residual = residual - share
        shares.append(residual)
        return shares

    def server_share(self, polynomial: RingPolynomial, pre: int) -> RingPolynomial:
        """The two-party server share: the sum of all stored slices.

        Kept so the single-table encoder path works for any ``n`` — what a
        lone server would store is the combination of every slice.
        """
        return polynomial - self.client_share(pre)

    def server_share_rows(
        self,
        vectors: Sequence[Sequence[int]],
        pres: Sequence[int],
        versions: Sequence[int] = None,
    ) -> List[List[Sequence[int]]]:
        kernel = self.ring.kernel
        if not kernel.array_native:
            return SharingScheme.server_share_rows(self, vectors, pres, versions)
        if len(vectors) != len(pres):
            raise SharingError(
                "got %d polynomials but %d pre positions" % (len(vectors), len(pres))
            )
        versions = self.check_versions(pres, versions)
        length = self.ring.length
        residual = kernel.vec_sub(kernel.stack(vectors), self._client_block(pres))
        rows: List[List[Sequence[int]]] = []
        for index in range(self._servers - 1):
            lane_block = self.prg.elements_block(
                pres, length, lane=index + 1, versions=versions
            )
            residual = kernel.vec_sub(residual, lane_block)
            rows.append(kernel.unstack(lane_block))
        rows.append(kernel.unstack(residual))
        return rows

    def combine_vectors(self, vectors: Mapping[int, Sequence[int]]) -> List[int]:
        missing = [index for index in range(self._servers) if index not in vectors]
        if missing:
            raise SharingError(
                "additive combination needs all %d shares; missing servers %s"
                % (self._servers, missing)
            )
        self.check_aligned(vectors)
        kernel = self.ring.kernel
        return kernel.unwrap(
            kernel.sum_rows([vectors[index] for index in range(self._servers)])
        )
