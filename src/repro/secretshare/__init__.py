"""Secret sharing of ring polynomials across one client and n servers.

Step 3 of the encoding (section 3): the tree of node polynomials is split
into a *client* tree and one or more *server* trees of the same shape.  The
client polynomials come from a pseudorandom generator; the server shares are
chosen so that a sufficient subset of them plus the client share recombines
to the original tree.  Only the server trees are stored (publicly); the
client tree is regenerated from the PRG seed.

Schemes:

* :class:`AdditiveSharing` — the paper's two-party split (one server).
* :class:`AdditiveNSharing` — n-of-n additive: one PRG lane per server, only
  the final *residual* share is stored-only.
* :class:`ShamirSharing` — (k, n) threshold sharing over the coefficient
  vectors; any k servers reconstruct, fewer learn nothing.
"""

from typing import Optional

from repro.poly.ring import QuotientRing
from repro.prg.generator import KeyedPRG
from repro.secretshare.additive import AdditiveNSharing, AdditiveSharing, SharePair
from repro.secretshare.scheme import (
    Attribution,
    AttributionInconclusive,
    SharingError,
    SharingScheme,
)
from repro.secretshare.shamir import ShamirSharing

#: scheme names accepted by :func:`make_scheme` (and the database facade)
SCHEME_NAMES = ("additive", "shamir")


def make_scheme(
    name: str,
    ring: QuotientRing,
    prg: KeyedPRG,
    servers: int = 1,
    threshold: Optional[int] = None,
) -> SharingScheme:
    """Build a sharing scheme from its short name.

    ``"additive"`` yields the two-party :class:`AdditiveSharing` for one
    server (bit-compatible with the original encoding) and
    :class:`AdditiveNSharing` for more; ``threshold`` must then be omitted
    or equal to ``servers``.  ``"shamir"`` yields a (k, n)
    :class:`ShamirSharing`; ``threshold`` defaults to ``servers`` (n-of-n).
    """
    if servers < 1:
        raise SharingError("a deployment needs at least 1 server, got %d" % servers)
    if name == "additive":
        if threshold is not None and threshold != servers:
            raise SharingError(
                "additive sharing is n-of-n: threshold %r conflicts with %d servers"
                % (threshold, servers)
            )
        if servers == 1:
            return AdditiveSharing(ring, prg)
        return AdditiveNSharing(ring, prg, servers)
    if name == "shamir":
        return ShamirSharing(ring, prg, servers, servers if threshold is None else threshold)
    raise SharingError(
        "unknown sharing scheme %r; expected one of %s" % (name, list(SCHEME_NAMES))
    )


__all__ = [
    "AdditiveSharing",
    "AdditiveNSharing",
    "Attribution",
    "AttributionInconclusive",
    "ShamirSharing",
    "SharingScheme",
    "SharingError",
    "SharePair",
    "SCHEME_NAMES",
    "make_scheme",
]
