"""Additive secret sharing of ring polynomials.

Step 3 of the encoding (section 3): the tree of node polynomials is split into
a *client* tree and a *server* tree of the same shape.  The client polynomials
come from a pseudorandom generator; the server polynomials are chosen so that
``client + server == original`` coefficient-wise.  Only the server tree is
stored (publicly); the client tree is regenerated from the PRG seed.
"""

from repro.secretshare.additive import AdditiveSharing, SharePair

__all__ = ["AdditiveSharing", "SharePair"]
