"""(k, n) Shamir threshold sharing of ring polynomials, coefficient-wise.

Each node polynomial ``P`` (a length ``q - 1`` coefficient vector) is hidden
inside a degree ``k - 1`` masking polynomial *over the vector space*::

    g(y)  =  P  +  r_1 · y  +  …  +  r_{k-1} · y^{k-1}

where the mask vectors ``r_j`` are drawn from PRG lane ``j`` of the node's
stream (deterministic, so the encoder never stores them).  Server ``i``
stores the slice ``g(x_i)`` for its fixed non-zero abscissa ``x_i = i + 1``.

Any ``k`` slices determine ``g`` and hence ``P = g(0)`` by Lagrange
interpolation at zero; fewer than ``k`` slices are statistically independent
of ``P``.  Because the interpolation weights depend only on *which* servers
replied — not on the data — they are computed once per subset, cached, and
applied to whole coefficient (or batched-evaluation) vectors through the
kernel layer's ``vec_scale`` / ``vec_add``.

Evaluation commutes with the sharing: evaluating every slice at a point
``a`` yields ``G(x_i)`` for the scalar polynomial ``G(y) = g(y)(a)`` with
``G(0) = P(a)`` — so the distributed containment test combines per-server
evaluation results with exactly the same Lagrange weights.

There is no client share: ``client_share`` is the zero polynomial, which
keeps the :class:`~repro.filters.client.ClientFilter` bookkeeping identical
across schemes.  The client's secret material is the PRG seed (used at
encoding time) and the tag map; ``k`` colluding servers can reconstruct the
polynomial tree but still learn no tag names without the map.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.poly.ring import QuotientRing, RingPolynomial
from repro.prg.generator import KeyedPRG
from repro.secretshare.scheme import (
    Attribution,
    AttributionInconclusive,
    SharingError,
    SharingScheme,
)


class ShamirSharing(SharingScheme):
    """(k, n) threshold sharing over the encoding ring's coefficient vectors."""

    name = "shamir"

    def __init__(self, ring: QuotientRing, prg: KeyedPRG, servers: int, threshold: int):
        super().__init__(ring, prg)
        if servers < 1:
            raise SharingError("Shamir sharing needs at least 1 server, got %d" % servers)
        if not 1 <= threshold <= servers:
            raise SharingError(
                "threshold must be in [1, %d] for %d servers, got %d"
                % (servers, servers, threshold)
            )
        if servers >= ring.field.order:
            raise SharingError(
                "Shamir sharing needs %d distinct non-zero abscissae but F_%d "
                "only has %d" % (servers, ring.field.order, ring.field.order - 1)
            )
        self._servers = servers
        self._threshold = threshold
        #: fixed per-server abscissae x_i = i + 1 (non-zero, distinct)
        self._xs: Tuple[int, ...] = tuple(range(1, servers + 1))
        #: Lagrange-at-zero weights per sorted subset of server indices
        self._weight_cache: Dict[Tuple[int, ...], Dict[int, int]] = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def num_servers(self) -> int:
        return self._servers

    @property
    def threshold(self) -> int:
        return self._threshold

    def abscissa(self, server_index: int) -> int:
        """The fixed evaluation point ``x_i`` assigned to a server."""
        self._check_index(server_index)
        return self._xs[server_index]

    # ------------------------------------------------------------------
    # Client-facing surface
    # ------------------------------------------------------------------

    def client_share(self, pre: int) -> RingPolynomial:
        """Shamir keeps no client-side share: the zero polynomial."""
        return self.ring.zero()

    def client_shares(self, pres: Sequence[int]) -> List[RingPolynomial]:
        zero = self.ring.zero()
        return [zero] * len(pres)

    # ------------------------------------------------------------------
    # Sharing
    # ------------------------------------------------------------------

    def _masks(self, pre: int, version: int = 0) -> List[Tuple[int, ...]]:
        """The ``k - 1`` deterministic mask vectors of node ``pre``.

        ``version`` salts the PRG streams: a re-shared row must draw fresh
        masks, or any single server could subtract its old slice from the
        new one and learn the polynomial delta in the clear.
        """
        length = self.ring.length
        return [
            tuple(self.prg.elements(pre, length, lane=lane, version=version))
            for lane in range(1, self._threshold)
        ]

    def server_shares(
        self, polynomial: RingPolynomial, pre: int, version: int = 0
    ) -> List[RingPolynomial]:
        field = self.ring.field
        kernel = self.ring.kernel
        masks = self._masks(pre, version=version)
        shares: List[RingPolynomial] = []
        for x in self._xs:
            slice_coeffs = list(polynomial.coeffs)
            power = field.one
            for mask in masks:
                power = field.mul(power, x)
                slice_coeffs = kernel.vec_add(slice_coeffs, kernel.vec_scale(mask, power))
            shares.append(self.ring.wrap_canonical(slice_coeffs))
        return shares

    def server_share_rows(self, vectors, pres, versions=None) -> List[List[Tuple[int, ...]]]:
        kernel = self.ring.kernel
        if not kernel.array_native:
            return super().server_share_rows(vectors, pres, versions)
        if len(vectors) != len(pres):
            raise SharingError(
                "got %d polynomials but %d pre positions" % (len(vectors), len(pres))
            )
        versions = self.check_versions(pres, versions)
        field = self.ring.field
        length = self.ring.length
        matrix = kernel.stack(vectors)
        # one PRG block per mask lane, shared across all n slices
        mask_blocks = [
            self.prg.elements_block(pres, length, lane=lane, versions=versions)
            for lane in range(1, self._threshold)
        ]
        rows: List[List[Tuple[int, ...]]] = []
        for x in self._xs:
            slice_matrix = matrix
            power = field.one
            for mask_block in mask_blocks:
                power = field.mul(power, x)
                slice_matrix = kernel.vec_add(
                    slice_matrix, kernel.vec_scale(mask_block, power)
                )
            rows.append(kernel.unstack(slice_matrix))
        return rows

    def reconstruct_rows(self, rows, pres) -> List[RingPolynomial]:
        kernel = self.ring.kernel
        if not kernel.array_native:
            return super().reconstruct_rows(rows, pres)
        count = min(len(rows), len(pres))
        rows = list(rows)[:count]
        matrix = self._trusted_matrix(kernel, rows)
        if matrix is None:
            return super().reconstruct_rows(rows, pres)
        # no client share: the combined server row already is the polynomial
        ring = self.ring
        return [ring.wrap_canonical(row) for row in kernel.unstack(matrix)]

    # ------------------------------------------------------------------
    # Combination (Lagrange interpolation at zero)
    # ------------------------------------------------------------------

    def _weights_for(self, indices: Tuple[int, ...]) -> Dict[int, int]:
        """Lagrange-at-zero weights for a sorted subset of server indices."""
        cached = self._weight_cache.get(indices)
        if cached is not None:
            return cached
        field = self.ring.field
        weights: Dict[int, int] = {}
        for i in indices:
            x_i = self._xs[i]
            weight = field.one
            for j in indices:
                if j == i:
                    continue
                x_j = self._xs[j]
                # w_i *= x_j / (x_j - x_i); abscissae are distinct so the
                # denominator is never zero.
                weight = field.mul(weight, field.div(x_j, field.sub(x_j, x_i)))
            weights[i] = weight
        self._weight_cache[indices] = weights
        return weights

    def _basis_at(self, indices: Tuple[int, ...], x: int) -> Dict[int, int]:
        """Lagrange basis values ``L_i(x)`` over the subset's abscissae."""
        field = self.ring.field
        basis: Dict[int, int] = {}
        for i in indices:
            x_i = self._xs[i]
            value = field.one
            for j in indices:
                if j == i:
                    continue
                x_j = self._xs[j]
                value = field.mul(value, field.div(field.sub(x, x_j), field.sub(x_i, x_j)))
            basis[i] = value
        return basis

    def _pick_base(self, vectors: Mapping[int, Sequence[int]]) -> Tuple[int, ...]:
        present = sorted(vectors)
        for index in present:
            self._check_index(index)
        if len(present) < self._threshold:
            raise SharingError(
                "Shamir reconstruction needs %d shares, got %d (servers %s)"
                % (self._threshold, len(present), present)
            )
        return tuple(present[: self._threshold])

    def combine_vectors(self, vectors: Mapping[int, Sequence[int]]) -> List[int]:
        self.check_aligned(vectors)
        base = self._pick_base(vectors)
        weights = self._weights_for(base)
        kernel = self.ring.kernel
        # the cached weight vector applied to the share matrix in one sweep
        # (array-native kernels) or the historical scale-then-fold loop
        return kernel.unwrap(
            kernel.weighted_sum(
                [vectors[index] for index in base], [weights[index] for index in base]
            )
        )

    def verify_vectors(self, vectors: Mapping[int, Sequence[int]]) -> List[int]:
        """Surplus shares that disagree with the interpolation of the base set.

        With more than ``k`` replies the extra shares are redundant: the
        polynomial interpolated from the first ``k`` predicts what every
        other server must hold.  A mismatch pinpoints a corrupted (or
        desynchronised) server.  With exactly ``k`` replies there is no
        redundancy and the list is empty.
        """
        self.check_aligned(vectors)
        base = self._pick_base(vectors)
        kernel = self.ring.kernel
        inconsistent: List[int] = []
        for index in sorted(vectors):
            if index in base:
                continue
            basis = self._basis_at(base, self._xs[index])
            predicted = kernel.weighted_sum(
                [vectors[base_index] for base_index in base],
                [basis[base_index] for base_index in base],
            )
            if list(vectors[index]) != kernel.unwrap(predicted):
                inconsistent.append(index)
        return inconsistent

    def _predict(self, vectors, base: Tuple[int, ...], index: int) -> List[int]:
        """The vector server ``index`` must hold if ``base``'s replies are honest."""
        kernel = self.ring.kernel
        basis = self._basis_at(base, self._xs[index])
        return kernel.unwrap(
            kernel.weighted_sum(
                [vectors[base_index] for base_index in base],
                [basis[base_index] for base_index in base],
            )
        )

    def attribute_corruption(self, vectors: Mapping[int, Sequence[int]]) -> Attribution:
        """Majority vote across all k-subset reconstructions.

        Every k-subset of the replies determines a candidate masking
        polynomial; a reply *agrees* with a subset when it lies on that
        subset's polynomial.  The honest polynomial is the one every honest
        server lies on, so with ``m`` replies and ``c`` corruptions it
        collects ``m - c`` agreements while any polynomial passing through a
        corrupt reply collects at most ``c + k - 1``.  For a single
        corruption at ``m >= k + 2`` (and ``c`` colluders at
        ``m >= 2c + k``) the honest agreeing set is therefore the unique
        maximum — everything outside it is a suspect.  Anything short of a
        unique ``> k``-strong maximum raises
        :class:`AttributionInconclusive` rather than guessing.
        """
        self.check_aligned(vectors)
        present = tuple(sorted(vectors))
        for index in present:
            self._check_index(index)
        k = self._threshold
        if len(present) < k + 2:
            raise AttributionInconclusive(
                "attribution needs at least k + 2 = %d replies, got %d "
                "(servers %s): with fewer, a corrupt base subset cannot be "
                "out-voted" % (k + 2, len(present), list(present)),
                evidence={"replies": len(present), "threshold": k},
            )
        rows = {index: list(vectors[index]) for index in present}
        votes = {index: 0 for index in present}
        tallies: Dict[frozenset, int] = {}
        subsets = 0
        for base in combinations(present, k):
            agreeing = set(base)
            for index in present:
                if index not in agreeing and rows[index] == self._predict(vectors, base, index):
                    agreeing.add(index)
            subsets += 1
            key = frozenset(agreeing)
            tallies[key] = tallies.get(key, 0) + 1
            for index in agreeing:
                votes[index] += 1
        best = max(len(group) for group in tallies)
        winners = [group for group in tallies if len(group) == best]
        if best <= k or len(winners) > 1:
            raise AttributionInconclusive(
                "no honest majority emerges from %d k-subsets: largest "
                "mutually-consistent set has %d of %d replies%s"
                % (
                    subsets,
                    best,
                    len(present),
                    " (tied %d ways)" % len(winners) if len(winners) > 1 else "",
                ),
                evidence={
                    "replies": len(present),
                    "threshold": k,
                    "subsets": subsets,
                    "votes": votes,
                },
            )
        majority = tuple(sorted(winners[0]))
        suspects = tuple(index for index in present if index not in winners[0])
        divergence: Dict[int, int] = {}
        base = majority[:k]
        for suspect in suspects:
            predicted = self._predict(vectors, base, suspect)
            for position, (got, want) in enumerate(zip(rows[suspect], predicted)):
                if got != want:
                    divergence[suspect] = position
                    break
        return Attribution(
            suspects=suspects,
            majority=majority,
            votes=votes,
            subsets=subsets,
            replies=len(present),
            divergence=divergence,
        )

    def reshare_vectors(
        self, vectors: Mapping[int, Sequence[int]], server_index: int
    ) -> List[int]:
        """Interpolate server ``server_index``'s stored vector from k peers.

        The masking polynomial is determined by any ``k`` honest slices, so
        the victim's slice is a fixed linear combination of theirs — the
        Lagrange basis evaluated at the victim's abscissa instead of at
        zero.  Linearity makes this work on whole flattened batches (many
        nodes' rows concatenated) exactly as on a single coefficient
        vector, which is what the heal path feeds it.
        """
        self._check_index(server_index)
        if server_index in vectors:
            raise SharingError(
                "server %d cannot contribute to re-deriving its own share"
                % server_index
            )
        self.check_aligned(vectors)
        base = self._pick_base(vectors)
        return self._predict(vectors, base, server_index)
