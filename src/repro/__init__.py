"""repro — reproduction of *Experiments with Queries over Encrypted Data Using
Secret Sharing* (Brinkman, Schoenmakers, Doumen, Jonker; SDM @ VLDB 2005).

The package implements the paper's encrypted XML database end to end:

* finite-field and polynomial-ring arithmetic (:mod:`repro.gf`, :mod:`repro.poly`),
* secret sharing with PRG-regenerated client shares — two-party additive,
  n-of-n additive with regenerable lanes, and (k, n) Shamir threshold
  sharing for multi-server clusters (:mod:`repro.prg`, :mod:`repro.secretshare`),
* an XML substrate, XMark-style data generator and the trie representation of
  text content (:mod:`repro.xmldoc`, :mod:`repro.xmark`, :mod:`repro.trie`),
* a relational storage engine with B+-tree indexes and a simulated RMI
  boundary, including the scatter-gather cluster transport
  (:mod:`repro.storage`, :mod:`repro.rmi`),
* the encoder, the client/server filter pair, the XPath subset and the two
  query engines (:mod:`repro.encode`, :mod:`repro.filters`, :mod:`repro.xpath`,
  :mod:`repro.engines`),
* the experiment harness regenerating every table and figure of the paper's
  evaluation (:mod:`repro.experiments`).

The one-stop entry point is :class:`repro.EncryptedXMLDatabase`.

.. warning::
   The scheme reproduced here is a 2005 research prototype whose security has
   since been shown to be weak.  This library exists to reproduce the paper's
   system and measurements, not to protect real data.
"""

from repro.core.config import (
    ClusterConfig,
    DatabaseConfig,
    FieldConfig,
    TransportConfig,
    WriteConfig,
)
from repro.core.database import EncryptedXMLDatabase, QueryConfigError
from repro.engines.base import QueryResult
from repro.filters.interface import MatchRule

__version__ = "1.0.0"

__all__ = [
    "EncryptedXMLDatabase",
    "QueryConfigError",
    "QueryResult",
    "MatchRule",
    "DatabaseConfig",
    "FieldConfig",
    "ClusterConfig",
    "TransportConfig",
    "WriteConfig",
    "__version__",
]
