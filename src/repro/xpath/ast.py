"""Abstract syntax of the XPath subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple, Union

#: node test matching every element
WILDCARD = "*"
#: node test selecting the parent
PARENT = ".."


class XPathError(ValueError):
    """Raised for queries outside the supported subset or malformed syntax."""


class Axis(enum.Enum):
    """Step direction: ``/`` (child) or ``//`` (descendant)."""

    CHILD = "/"
    DESCENDANT = "//"


@dataclass(frozen=True)
class ContainsTextPredicate:
    """A ``[contains(text(), "literal")]`` predicate.

    Meaningful only after the trie rewriting (the tag-name encoding cannot
    look inside text); :func:`repro.xpath.rewrite.rewrite_for_trie` turns it
    into a :class:`PathPredicate` over character steps.
    """

    literal: str

    def __str__(self) -> str:
        return 'contains(text(), "%s")' % self.literal


@dataclass(frozen=True)
class PathPredicate:
    """A relative-path existence predicate, e.g. ``[//j/o/a/n]``."""

    path: "Query"

    def __str__(self) -> str:
        return self.path.to_string(relative=True)


Predicate = Union[ContainsTextPredicate, PathPredicate]


@dataclass(frozen=True)
class Step:
    """One location step: an axis, a node test and optional predicates."""

    axis: Axis
    test: str
    predicates: Tuple[Predicate, ...] = ()

    @property
    def is_wildcard(self) -> bool:
        """Whether the node test is ``*``."""
        return self.test == WILDCARD

    @property
    def is_parent(self) -> bool:
        """Whether the node test is ``..``."""
        return self.test == PARENT

    @property
    def is_name_test(self) -> bool:
        """Whether the node test is an ordinary tag name."""
        return not self.is_wildcard and not self.is_parent

    def __str__(self) -> str:
        rendered = self.axis.value + self.test
        for predicate in self.predicates:
            rendered += "[%s]" % predicate
        return rendered


@dataclass(frozen=True)
class Query:
    """A parsed query: an ordered tuple of steps.

    ``absolute`` distinguishes top-level queries (which start at the document
    root) from the relative paths used inside predicates (which start at the
    node carrying the predicate).
    """

    steps: Tuple[Step, ...]
    absolute: bool = True

    def __post_init__(self) -> None:
        if not self.steps:
            raise XPathError("a query needs at least one step")

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def step(self, index: int) -> Step:
        """The step at ``index``."""
        return self.steps[index]

    # ------------------------------------------------------------------
    # Analysis used by the engines
    # ------------------------------------------------------------------

    def name_tests(self, start: int = 0) -> List[str]:
        """Tag names tested from step ``start`` onwards, in query order.

        This is what the AdvancedQuery engine's look-ahead evaluates at every
        node: the *remaining* tag names of the query, regardless of the query
        structure (which the encoding cannot express).  Duplicates are
        removed while preserving order.
        """
        names: List[str] = []
        for step in self.steps[start:]:
            if step.is_name_test and step.test not in names:
                names.append(step.test)
            for predicate in step.predicates:
                if isinstance(predicate, PathPredicate):
                    for name in predicate.path.name_tests():
                        if name not in names:
                            names.append(name)
        return names

    def descendant_step_count(self) -> int:
        """Number of ``//`` steps (figure 7: accuracy drops per ``//``)."""
        return sum(1 for step in self.steps if step.axis is Axis.DESCENDANT)

    def has_predicates(self) -> bool:
        """Whether any step carries predicates."""
        return any(step.predicates for step in self.steps)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def to_string(self, relative: bool = False) -> str:
        """Render back to query text.

        For relative paths the leading ``/`` of a first child-axis step is
        omitted (``a/b`` rather than ``/a/b``) to match predicate syntax.
        """
        rendered = "".join(str(step) for step in self.steps)
        if relative and not self.absolute and rendered.startswith("/") and not rendered.startswith("//"):
            return rendered[1:]
        return rendered

    def __str__(self) -> str:
        return self.to_string(relative=not self.absolute)

    def with_steps(self, steps: Sequence[Step]) -> "Query":
        """A copy of this query with different steps."""
        return Query(steps=tuple(steps), absolute=self.absolute)
