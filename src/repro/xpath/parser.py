"""Tokenizer and recursive-descent parser for the XPath subset.

Supported grammar (sufficient for every query in the paper plus the trie
rewriting)::

    query      := step+
    step       := axis test predicate*
    axis       := "//" | "/"          (a relative query may omit the first axis)
    test       := NAME | "*" | ".."
    predicate  := "[" ( contains | relpath ) "]"
    contains   := "contains" "(" "text" "(" ")" "," literal ")"
    relpath    := relative query (steps, first axis optional)
    literal    := '"' chars '"' | "'" chars "'"
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.xpath.ast import (
    Axis,
    ContainsTextPredicate,
    PathPredicate,
    Query,
    Step,
    XPathError,
)

_NAME_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-.")


def parse_query(text: str, absolute: bool = True) -> Query:
    """Parse query text into a :class:`Query`.

    ``absolute=False`` parses a relative path (as used inside predicates):
    the first step may omit its leading ``/`` and defaults to the child axis.
    """
    parser = _Parser(text, absolute=absolute)
    return parser.parse()


class _Parser:
    """Single-use recursive-descent parser over a query string."""

    def __init__(self, text: str, absolute: bool = True):
        if not isinstance(text, str):
            raise XPathError("query must be a string, got %r" % (text,))
        self.text = text.strip()
        self.position = 0
        self.absolute = absolute
        if not self.text:
            raise XPathError("empty query")

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def parse(self) -> Query:
        steps: List[Step] = []
        first = True
        while self.position < len(self.text):
            steps.append(self._parse_step(first))
            first = False
        if not steps:
            raise XPathError("query %r contains no steps" % self.text)
        return Query(steps=tuple(steps), absolute=self.absolute)

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------

    def _parse_step(self, first: bool) -> Step:
        axis = self._parse_axis(first)
        test = self._parse_test()
        predicates = []
        while self._peek() == "[":
            predicates.append(self._parse_predicate())
        return Step(axis=axis, test=test, predicates=tuple(predicates))

    def _parse_axis(self, first: bool) -> Axis:
        if self.text.startswith("//", self.position):
            self.position += 2
            return Axis.DESCENDANT
        if self.text.startswith("/", self.position):
            self.position += 1
            return Axis.CHILD
        if first and not self.absolute:
            # Relative paths may start directly with a test ("a/b").
            return Axis.CHILD
        raise XPathError(
            "expected '/' or '//' at offset %d of %r" % (self.position, self.text)
        )

    def _parse_test(self) -> str:
        char = self._peek()
        if char == "*":
            self.position += 1
            return "*"
        if self.text.startswith("..", self.position):
            self.position += 2
            return ".."
        name = self._parse_name()
        if not name:
            raise XPathError(
                "expected a tag name, '*' or '..' at offset %d of %r" % (self.position, self.text)
            )
        return name

    def _parse_name(self) -> str:
        start = self.position
        while self.position < len(self.text) and self.text[self.position] in _NAME_CHARS:
            self.position += 1
        return self.text[start : self.position]

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def _parse_predicate(self):
        self._expect("[")
        self._skip_spaces()
        if self.text.startswith("contains", self.position):
            predicate = self._parse_contains()
        else:
            predicate = self._parse_path_predicate()
        self._skip_spaces()
        self._expect("]")
        return predicate

    def _parse_contains(self) -> ContainsTextPredicate:
        self._expect_word("contains")
        self._skip_spaces()
        self._expect("(")
        self._skip_spaces()
        self._expect_word("text")
        self._skip_spaces()
        self._expect("(")
        self._skip_spaces()
        self._expect(")")
        self._skip_spaces()
        self._expect(",")
        self._skip_spaces()
        literal = self._parse_literal()
        self._skip_spaces()
        self._expect(")")
        return ContainsTextPredicate(literal=literal)

    def _parse_path_predicate(self) -> PathPredicate:
        start = self.position
        depth = 0
        while self.position < len(self.text):
            char = self.text[self.position]
            if char == "[":
                depth += 1
            elif char == "]":
                if depth == 0:
                    break
                depth -= 1
            self.position += 1
        path_text = self.text[start : self.position].strip()
        if not path_text:
            raise XPathError("empty path predicate in %r" % self.text)
        return PathPredicate(path=parse_query(path_text, absolute=False))

    def _parse_literal(self) -> str:
        quote = self._peek()
        if quote not in ("'", '"'):
            raise XPathError(
                "expected a quoted literal at offset %d of %r" % (self.position, self.text)
            )
        self.position += 1
        end = self.text.find(quote, self.position)
        if end < 0:
            raise XPathError("unterminated string literal in %r" % self.text)
        literal = self.text[self.position : end]
        self.position = end + 1
        return literal

    # ------------------------------------------------------------------
    # Low-level helpers
    # ------------------------------------------------------------------

    def _peek(self) -> str:
        if self.position < len(self.text):
            return self.text[self.position]
        return ""

    def _expect(self, char: str) -> None:
        if not self.text.startswith(char, self.position):
            raise XPathError(
                "expected %r at offset %d of %r" % (char, self.position, self.text)
            )
        self.position += len(char)

    def _expect_word(self, word: str) -> None:
        if not self.text.startswith(word, self.position):
            raise XPathError(
                "expected %r at offset %d of %r" % (word, self.position, self.text)
            )
        self.position += len(word)

    def _skip_spaces(self) -> None:
        while self.position < len(self.text) and self.text[self.position].isspace():
            self.position += 1
