"""XPath subset used by the query engines.

The prototype parses queries "into steps where each step consists of a
direction (child (/) or descendant (//)) and a tag name.  Two special tag
names exist: ``..`` matches the parent and ``*`` matches every child"
(section 5.3).  The trie extension additionally rewrites
``contains(text(), "…")`` predicates into per-character paths (section 4).

* :mod:`repro.xpath.ast` — the query AST (:class:`Query`, :class:`Step`,
  predicates).
* :mod:`repro.xpath.parser` — tokenizer and recursive-descent parser.
* :mod:`repro.xpath.rewrite` — the trie rewriting of text predicates.
"""

from repro.xpath.ast import (
    Axis,
    ContainsTextPredicate,
    PathPredicate,
    Query,
    Step,
    XPathError,
)
from repro.xpath.parser import parse_query
from repro.xpath.rewrite import rewrite_for_trie

__all__ = [
    "Axis",
    "Step",
    "Query",
    "PathPredicate",
    "ContainsTextPredicate",
    "XPathError",
    "parse_query",
    "rewrite_for_trie",
]
