"""Query rewriting for the trie representation.

Section 4: a query like ``/name[contains(text(), "Joan")]`` is first
translated to ``/name[//j/o/a/n]`` before the tag-to-field mapping is applied
— the predicate literal becomes a descendant path of single-character steps
matching the trie structure the document transform produced.
"""

from __future__ import annotations

from typing import List, Optional

from repro.trie.transform import TrieTransformer
from repro.xpath.ast import (
    Axis,
    ContainsTextPredicate,
    PathPredicate,
    Query,
    Step,
    XPathError,
)


def rewrite_for_trie(query: Query, transformer: Optional[TrieTransformer] = None) -> Query:
    """Replace every ``contains(text(), …)`` predicate with a trie path.

    Steps without such predicates are returned unchanged, so the rewrite is a
    no-op for pure tag-name queries.  The rewritten predicate path starts with
    a descendant step (``//j``) because the matched word may occur anywhere in
    the element's trie, followed by child steps for the remaining characters —
    exactly the ``/name[//J/o/a/n]`` shape of the paper's example.
    """
    transformer = transformer or TrieTransformer()
    new_steps: List[Step] = []
    for step in query.steps:
        if not step.predicates:
            new_steps.append(step)
            continue
        new_predicates = []
        for predicate in step.predicates:
            if isinstance(predicate, ContainsTextPredicate):
                new_predicates.append(_literal_to_path(predicate.literal, transformer))
            elif isinstance(predicate, PathPredicate):
                # Nested predicates (e.g. person[city[contains(text(), …)]])
                # are rewritten recursively.
                new_predicates.append(
                    PathPredicate(path=rewrite_for_trie(predicate.path, transformer))
                )
            else:
                new_predicates.append(predicate)
        new_steps.append(Step(axis=step.axis, test=step.test, predicates=tuple(new_predicates)))
    return query.with_steps(new_steps)


def _literal_to_path(literal: str, transformer: TrieTransformer) -> PathPredicate:
    """Build the ``//c1/c2/…/cn`` path predicate for one literal."""
    characters = transformer.literal_to_steps(literal)
    if not characters:
        raise XPathError("contains() literal %r normalises to nothing searchable" % literal)
    steps = [Step(axis=Axis.DESCENDANT, test=characters[0])]
    steps.extend(Step(axis=Axis.CHILD, test=char) for char in characters[1:])
    return PathPredicate(path=Query(steps=tuple(steps), absolute=False))
