"""Sizing configuration for the synthetic XMark generator."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class XMarkConfig:
    """Entity counts for one generated document.

    The defaults correspond to ``scale == 1.0`` which produces roughly one
    megabyte of XML text; :meth:`scaled` multiplies every count by a factor,
    mirroring how the original benchmark's scaling factor works.  Counts are
    kept in the same rough proportions as XMark (items dominate, then people,
    then auctions, then categories).
    """

    #: number of <category> elements under <categories>
    categories: int = 25
    #: number of <item> elements per continent under <regions>
    items_per_region: int = 55
    #: number of <person> elements under <people>
    people: int = 140
    #: number of <open_auction> elements
    open_auctions: int = 65
    #: number of <closed_auction> elements
    closed_auctions: int = 50
    #: number of <edge> elements under <catgraph>
    catgraph_edges: int = 25
    #: maximum <bidder> elements per open auction
    max_bidders: int = 5
    #: maximum <mail> elements per item mailbox
    max_mails: int = 2
    #: maximum <watch> elements per person watches container
    max_watches: int = 4
    #: maximum <interest> elements per profile
    max_interests: int = 3
    #: maximum nesting depth of description parlists
    max_parlist_depth: int = 2

    @classmethod
    def scaled(cls, scale: float) -> "XMarkConfig":
        """A configuration whose entity counts are multiplied by ``scale``.

        ``scale=1.0`` ≈ 1 MB of serialised XML; the paper's figure 4 sweeps
        1–10 MB, i.e. ``scale`` 1–10.  Counts are floored at 1 so even tiny
        scales produce a structurally complete document (every DTD section
        present), which the query experiments rely on.
        """
        if scale <= 0:
            raise ValueError("scale must be positive, got %r" % (scale,))

        def n(base: int) -> int:
            return max(1, round(base * scale))

        return cls(
            categories=n(cls.categories),
            items_per_region=n(cls.items_per_region),
            people=n(cls.people),
            open_auctions=n(cls.open_auctions),
            closed_auctions=n(cls.closed_auctions),
            catgraph_edges=n(cls.catgraph_edges),
        )

    def total_top_level_entities(self) -> int:
        """Rough entity count, useful for progress reporting in examples."""
        return (
            self.categories
            + 6 * self.items_per_region
            + self.people
            + self.open_auctions
            + self.closed_auctions
        )
