"""Deterministic generator of XMark-style auction documents."""

from __future__ import annotations

from typing import Optional

from repro.prg.generator import SplitMix64
from repro.xmark import words
from repro.xmark.config import XMarkConfig
from repro.xmldoc.nodes import XMLDocument, XMLElement
from repro.xmldoc.serializer import document_byte_size

_CONTINENTS = ("africa", "asia", "australia", "europe", "namerica", "samerica")


class XMarkGenerator:
    """Builds auction documents that conform to the paper's appendix-A DTD.

    The generator is fully deterministic: the same ``(seed, config)`` pair
    always yields the same document, which keeps the experiment harness
    repeatable and lets tests assert exact node counts.
    """

    def __init__(self, config: Optional[XMarkConfig] = None, seed: int = 20050905):
        self.config = config or XMarkConfig()
        self.seed = seed

    # ------------------------------------------------------------------
    # Top-level structure
    # ------------------------------------------------------------------

    def generate(self) -> XMLDocument:
        """Generate one complete ``<site>`` document."""
        rng = SplitMix64(self.seed)
        site = XMLElement("site")
        site.append(self._regions(rng))
        site.append(self._categories(rng))
        site.append(self._catgraph(rng))
        site.append(self._people(rng))
        site.append(self._open_auctions(rng))
        site.append(self._closed_auctions(rng))
        return XMLDocument(site)

    # ------------------------------------------------------------------
    # Sections
    # ------------------------------------------------------------------

    def _regions(self, rng: SplitMix64) -> XMLElement:
        regions = XMLElement("regions")
        for continent in _CONTINENTS:
            node = regions.make_child(continent)
            for index in range(self.config.items_per_region):
                node.append(self._item(rng, continent, index))
        return regions

    def _item(self, rng: SplitMix64, continent: str, index: int) -> XMLElement:
        item = XMLElement("item", attributes={"id": "item_%s_%d" % (continent, index)})
        item.make_child("location", text=rng.choice(words.COUNTRIES))
        item.make_child("quantity", text=str(rng.randint(1, 10)))
        item.make_child("name", text=words.random_sentence(rng, 2, 4))
        item.make_child("payment", text=rng.choice(("Cash", "Creditcard", "Money order", "Personal Check")))
        item.append(self._description(rng, depth=0))
        item.make_child("shipping", text=rng.choice(("Will ship internationally", "Buyer pays fixed shipping charges", "See description for charges")))
        for _ in range(rng.randint(1, 3)):
            item.make_child("incategory", category="category_%d" % rng.randint(0, max(0, self.config.categories - 1)))
        mailbox = item.make_child("mailbox")
        for _ in range(rng.randint(0, self.config.max_mails)):
            mail = mailbox.make_child("mail")
            mail.make_child("from", text=words.random_person_name(rng))
            mail.make_child("to", text=words.random_person_name(rng))
            mail.make_child("date", text=words.random_date(rng))
            text = mail.make_child("text", text=words.random_sentence(rng, 8, 20))
            if rng.next_float() < 0.3:
                text.make_child("keyword", text=words.random_sentence(rng, 1, 2))
        return item

    def _description(self, rng: SplitMix64, depth: int) -> XMLElement:
        description = XMLElement("description")
        if depth < self.config.max_parlist_depth and rng.next_float() < 0.4:
            parlist = description.make_child("parlist")
            for _ in range(rng.randint(1, 3)):
                listitem = parlist.make_child("listitem")
                if depth + 1 < self.config.max_parlist_depth and rng.next_float() < 0.3:
                    listitem.append(self._parlist(rng, depth + 1))
                else:
                    listitem.append(self._text(rng))
        else:
            description.append(self._text(rng))
        return description

    def _parlist(self, rng: SplitMix64, depth: int) -> XMLElement:
        parlist = XMLElement("parlist")
        for _ in range(rng.randint(1, 2)):
            listitem = parlist.make_child("listitem")
            listitem.append(self._text(rng))
        return parlist

    def _text(self, rng: SplitMix64) -> XMLElement:
        text = XMLElement("text", text=words.random_sentence(rng, 10, 30))
        roll = rng.next_float()
        if roll < 0.25:
            text.make_child("keyword", text=words.random_sentence(rng, 1, 3))
        elif roll < 0.4:
            text.make_child("bold", text=words.random_sentence(rng, 1, 3))
        elif roll < 0.5:
            text.make_child("emph", text=words.random_sentence(rng, 1, 3))
        return text

    def _categories(self, rng: SplitMix64) -> XMLElement:
        categories = XMLElement("categories")
        for index in range(self.config.categories):
            category = categories.make_child("category", id="category_%d" % index)
            category.make_child("name", text=words.random_sentence(rng, 1, 3))
            category.append(self._description(rng, depth=0))
        return categories

    def _catgraph(self, rng: SplitMix64) -> XMLElement:
        catgraph = XMLElement("catgraph")
        for _ in range(self.config.catgraph_edges):
            source = rng.randint(0, max(0, self.config.categories - 1))
            target = rng.randint(0, max(0, self.config.categories - 1))
            catgraph.make_child(
                "edge",
                **{"from": "category_%d" % source, "to": "category_%d" % target},
            )
        return catgraph

    def _people(self, rng: SplitMix64) -> XMLElement:
        people = XMLElement("people")
        for index in range(self.config.people):
            person = people.make_child("person", id="person_%d" % index)
            name = words.random_person_name(rng)
            person.make_child("name", text=name)
            person.make_child("emailaddress", text=words.random_email(rng, name))
            if rng.next_float() < 0.6:
                person.make_child("phone", text=words.random_phone(rng))
            if rng.next_float() < 0.7:
                address = person.make_child("address")
                address.make_child("street", text="%d %s St" % (rng.randint(1, 99), rng.choice(words.VOCABULARY).title()))
                address.make_child("city", text=rng.choice(words.CITIES))
                address.make_child("country", text=rng.choice(words.COUNTRIES))
                if rng.next_float() < 0.5:
                    address.make_child("province", text=rng.choice(words.PROVINCES))
                address.make_child("zipcode", text=str(rng.randint(1000, 9999)))
            if rng.next_float() < 0.4:
                person.make_child("homepage", text="http://www.example.org/~%s" % name.split()[0].lower())
            if rng.next_float() < 0.5:
                person.make_child("creditcard", text="%04d %04d %04d %04d" % (rng.randint(0, 9999), rng.randint(0, 9999), rng.randint(0, 9999), rng.randint(0, 9999)))
            if rng.next_float() < 0.6:
                profile = person.make_child("profile", income=words.random_price(rng))
                for _ in range(rng.randint(0, self.config.max_interests)):
                    profile.make_child("interest", category="category_%d" % rng.randint(0, max(0, self.config.categories - 1)))
                if rng.next_float() < 0.6:
                    profile.make_child("education", text=rng.choice(("High School", "College", "Graduate School", "Other")))
                if rng.next_float() < 0.8:
                    profile.make_child("gender", text=rng.choice(("male", "female")))
                profile.make_child("business", text=rng.choice(("Yes", "No")))
                if rng.next_float() < 0.7:
                    profile.make_child("age", text=str(rng.randint(18, 80)))
            if rng.next_float() < 0.5:
                watches = person.make_child("watches")
                for _ in range(rng.randint(0, self.config.max_watches)):
                    watches.make_child("watch", open_auction="open_auction_%d" % rng.randint(0, max(0, self.config.open_auctions - 1)))
        return people

    def _open_auctions(self, rng: SplitMix64) -> XMLElement:
        open_auctions = XMLElement("open_auctions")
        for index in range(self.config.open_auctions):
            auction = open_auctions.make_child("open_auction", id="open_auction_%d" % index)
            auction.make_child("initial", text=words.random_price(rng))
            if rng.next_float() < 0.4:
                auction.make_child("reserve", text=words.random_price(rng))
            for _ in range(rng.randint(0, self.config.max_bidders)):
                bidder = auction.make_child("bidder")
                bidder.make_child("date", text=words.random_date(rng))
                bidder.make_child("time", text=words.random_time(rng))
                bidder.make_child("personref", person="person_%d" % rng.randint(0, max(0, self.config.people - 1)))
                bidder.make_child("increase", text=words.random_price(rng))
            auction.make_child("current", text=words.random_price(rng))
            if rng.next_float() < 0.3:
                auction.make_child("privacy", text="Yes")
            auction.make_child("itemref", item="item_europe_%d" % rng.randint(0, max(0, self.config.items_per_region - 1)))
            auction.make_child("seller", person="person_%d" % rng.randint(0, max(0, self.config.people - 1)))
            auction.append(self._annotation(rng))
            auction.make_child("quantity", text=str(rng.randint(1, 5)))
            auction.make_child("type", text=rng.choice(("Regular", "Featured", "Dutch")))
            interval = auction.make_child("interval")
            interval.make_child("start", text=words.random_date(rng))
            interval.make_child("end", text=words.random_date(rng))
        return open_auctions

    def _closed_auctions(self, rng: SplitMix64) -> XMLElement:
        closed_auctions = XMLElement("closed_auctions")
        for index in range(self.config.closed_auctions):
            auction = closed_auctions.make_child("closed_auction")
            auction.make_child("seller", person="person_%d" % rng.randint(0, max(0, self.config.people - 1)))
            auction.make_child("buyer", person="person_%d" % rng.randint(0, max(0, self.config.people - 1)))
            auction.make_child("itemref", item="item_asia_%d" % rng.randint(0, max(0, self.config.items_per_region - 1)))
            auction.make_child("price", text=words.random_price(rng))
            auction.make_child("date", text=words.random_date(rng))
            auction.make_child("quantity", text=str(rng.randint(1, 5)))
            auction.make_child("type", text=rng.choice(("Regular", "Featured", "Dutch")))
            if rng.next_float() < 0.7:
                auction.append(self._annotation(rng))
        return closed_auctions

    def _annotation(self, rng: SplitMix64) -> XMLElement:
        annotation = XMLElement("annotation")
        annotation.make_child("author", person="person_%d" % rng.randint(0, max(0, self.config.people - 1)))
        if rng.next_float() < 0.8:
            annotation.append(self._description(rng, depth=1))
        annotation.make_child("happiness", text=str(rng.randint(1, 10)))
        return annotation


def generate_document(scale: float = 0.05, seed: int = 20050905) -> XMLDocument:
    """Generate an auction document of approximately ``scale`` megabytes."""
    return XMarkGenerator(XMarkConfig.scaled(scale), seed=seed).generate()


def generate_document_of_size(
    target_bytes: int, seed: int = 20050905, tolerance: float = 0.15, max_iterations: int = 12
) -> XMLDocument:
    """Generate a document whose serialised size approximates ``target_bytes``.

    Performs a small secant-style search on the scale factor; the generator's
    size is close to linear in the scale so a couple of iterations suffice.
    Raises ``ValueError`` for targets too small to hold a structurally
    complete document.
    """
    if target_bytes < 4096:
        raise ValueError("target size %d bytes is too small for a complete document" % target_bytes)
    scale = target_bytes / 1_000_000.0
    document = generate_document(scale=scale, seed=seed)
    for _ in range(max_iterations):
        size = document_byte_size(document)
        error = abs(size - target_bytes) / target_bytes
        if error <= tolerance:
            return document
        scale *= target_bytes / max(1, size)
        document = generate_document(scale=scale, seed=seed)
    return document
