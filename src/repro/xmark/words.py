"""Deterministic vocabulary for synthetic text content.

The original XMark generator fills ``#PCDATA`` content with Shakespeare
words.  The experiments in the paper never look *inside* the text (tag-name
queries only; the trie extension is evaluated separately on controlled
corpora), so any stable vocabulary with a realistic word-length distribution
preserves the relevant behaviour: it determines the plaintext byte volume
that the encoded-size experiment (figure 4) divides by.
"""

from __future__ import annotations

from typing import List

from repro.prg.generator import SplitMix64

#: A fixed vocabulary of lowercase words (mixed lengths, median ≈ 6 chars).
VOCABULARY = (
    "auction", "bidder", "price", "gold", "silver", "market", "trade", "offer",
    "seller", "buyer", "estate", "castle", "forest", "river", "mountain",
    "village", "harbor", "vessel", "cargo", "spice", "silk", "amber", "ivory",
    "copper", "iron", "grain", "wool", "linen", "pearl", "ruby", "emerald",
    "crown", "sceptre", "scroll", "ledger", "coin", "purse", "wagon", "horse",
    "stable", "bridge", "tower", "gate", "wall", "street", "square", "fountain",
    "garden", "orchard", "vineyard", "cellar", "barrel", "bottle", "candle",
    "lantern", "mirror", "carpet", "tapestry", "painting", "statue", "organ",
    "violin", "trumpet", "drum", "anchor", "compass", "chart", "voyage",
    "captain", "sailor", "merchant", "broker", "notary", "clerk", "guild",
    "charter", "contract", "payment", "credit", "interest", "profit", "loss",
    "account", "balance", "invoice", "receipt", "warehouse", "quay", "dock",
    "ferry", "mill", "bakery", "brewery", "tannery", "forge", "smith", "mason",
    "carpenter", "weaver", "tailor", "cobbler", "porter", "courier", "herald",
)

#: Given names and surnames for the people section.
GIVEN_NAMES = (
    "Joan", "Johan", "Maria", "Peter", "Anna", "Richard", "Berry", "Jeroen",
    "Willem", "Els", "Karel", "Sofia", "Hugo", "Nina", "Tomas", "Clara",
    "Victor", "Laura", "Arthur", "Eva", "Simon", "Alice", "Gerard", "Irene",
)
SURNAMES = (
    "Johnson", "Jansen", "Brinkman", "Doumen", "Jonker", "Schoenmakers",
    "Peters", "Visser", "Smit", "Meijer", "Mulder", "Bakker", "Dijkstra",
    "Vermeer", "Kuiper", "Hendriks", "Koning", "Prins", "Groot", "Berg",
)

CITIES = (
    "Enschede", "Eindhoven", "Amsterdam", "Utrecht", "Rotterdam", "Groningen",
    "Leiden", "Delft", "Arnhem", "Maastricht", "Haarlem", "Zwolle",
)
COUNTRIES = ("Netherlands", "Belgium", "Germany", "France", "Spain", "Italy")
PROVINCES = ("Overijssel", "Brabant", "Gelderland", "Utrecht", "Holland", "Limburg")


def random_sentence(rng: SplitMix64, min_words: int, max_words: int) -> str:
    """A space-separated sentence of vocabulary words."""
    count = rng.randint(min_words, max_words)
    return " ".join(rng.choice(VOCABULARY) for _ in range(count))


def random_words(rng: SplitMix64, count: int) -> List[str]:
    """A list of ``count`` vocabulary words."""
    return [rng.choice(VOCABULARY) for _ in range(count)]


def random_person_name(rng: SplitMix64) -> str:
    """A 'Given Surname' style person name."""
    return "%s %s" % (rng.choice(GIVEN_NAMES), rng.choice(SURNAMES))


def random_date(rng: SplitMix64) -> str:
    """A date in the MM/DD/YYYY format the original generator uses."""
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    year = rng.randint(1998, 2001)
    return "%02d/%02d/%04d" % (month, day, year)


def random_time(rng: SplitMix64) -> str:
    """A HH:MM:SS time string."""
    return "%02d:%02d:%02d" % (rng.randint(0, 23), rng.randint(0, 59), rng.randint(0, 59))


def random_email(rng: SplitMix64, name: str) -> str:
    """A mailto-style email address derived from a person name."""
    user = name.lower().replace(" ", ".")
    domain = rng.choice(("example.org", "example.com", "auction.net", "mail.test"))
    return "mailto:%s@%s" % (user, domain)


def random_phone(rng: SplitMix64) -> str:
    """An international-looking phone number."""
    return "+%d (%d) %d" % (rng.randint(1, 99), rng.randint(10, 999), rng.randint(1000000, 9999999))


def random_price(rng: SplitMix64) -> str:
    """A price with two decimals."""
    return "%d.%02d" % (rng.randint(1, 500), rng.randint(0, 99))
