"""Synthetic XMark-style auction documents.

The paper's experiments run against documents produced by the XMark benchmark
generator (Schmidt et al., CWI 2001).  The original ``xmlgen`` is a C program
seeded with Shakespeare text; it is not available offline, so this package
provides a deterministic Python substitute that follows the auction DTD from
the paper's appendix A (see :data:`repro.xmldoc.dtd.XMARK_DTD`).

The generator reproduces what the experiments actually depend on:

* the 77-element tag alphabet and parent/child relationships of the DTD,
* the characteristic fan-out (regions → continents → items, people → person,
  open/closed auctions) that the example queries traverse,
* document sizes tunable from a few kilobytes to paper-scale megabytes via a
  single ``scale`` knob (``scale=1.0`` ≈ 1 MB of XML text),
* full determinism from an integer seed, so experiments are repeatable.
"""

from repro.xmark.config import XMarkConfig
from repro.xmark.generator import XMarkGenerator, generate_document, generate_document_of_size

__all__ = [
    "XMarkConfig",
    "XMarkGenerator",
    "generate_document",
    "generate_document_of_size",
]
