"""The public error surface, re-exported from one place.

Every exception a caller of :class:`repro.EncryptedXMLDatabase` may need
to catch is importable from here, regardless of which subsystem defines
it.  The defining modules stay the source of truth (so internal code
keeps its local imports); this module only aggregates:

========================== =============================================
exception                  raised when
========================== =============================================
``ConfigError``            a typed config object is inconsistent
``QueryConfigError``       a query/constructor option combination is
                           invalid (subclass of ``ConfigError``)
``StorageError``           a stored row violates the node-table schema
``MutationError``          a tree edit is structurally impossible
                           (unknown tag, root delete, attached subtree)
``WriteConflictError``     a delta's preconditions no longer hold
                           (epoch moved, double-stage, journal gap)
``StaleVersionError``      a delta targets rows the server no longer
                           has at the expected position/version
``WriteError``             a two-phase apply failed before any server
                           committed (subclass of ``WriteConflictError``)
``ServerUnavailable``      a share server is unreachable or died
                           mid-call (a ``ConnectionError``)
``WireProtocolError``      a peer violated the framing protocol
``RemoteCallError``        a server-side exception of a type the wire
                           cannot reconstruct
``UnknownRemoteMethodError`` the server does not export the method
``InconsistentShareError`` reconstruction produced shares that fail
                           verification (corruption or version skew)
``AttributionInconclusive`` corruption was detected but no k+2 honest
                           quorum exists to name the corrupted server
``SupervisorError``        a fleet heal could not complete
``KernelUnavailableError`` the requested accelerator kernel is missing
========================== =============================================
"""

from repro.core.config import ConfigError, QueryConfigError
from repro.encode.mutate import MutationError
from repro.filters.cluster import ClusterProtocolError, InconsistentShareError
from repro.gf.base import FieldError
from repro.gf.kernels import KernelUnavailableError
from repro.rmi.socket import (
    OversizedFrameError,
    RemoteCallError,
    ServerUnavailable,
    SocketTransportError,
    UnknownRemoteMethodError,
    WireProtocolError,
)
from repro.rmi.supervisor import SupervisorError
from repro.rmi.write import WriteError
from repro.secretshare.scheme import AttributionInconclusive, SharingError
from repro.storage.errors import StaleVersionError, StorageError, WriteConflictError

__all__ = [
    "AttributionInconclusive",
    "ClusterProtocolError",
    "ConfigError",
    "FieldError",
    "InconsistentShareError",
    "KernelUnavailableError",
    "MutationError",
    "OversizedFrameError",
    "QueryConfigError",
    "RemoteCallError",
    "ServerUnavailable",
    "SharingError",
    "SocketTransportError",
    "StaleVersionError",
    "StorageError",
    "SupervisorError",
    "UnknownRemoteMethodError",
    "WireProtocolError",
    "WriteConflictError",
    "WriteError",
]
