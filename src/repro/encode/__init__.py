"""Encoding pipeline: plaintext XML → secret-shared polynomial rows.

This is the Python equivalent of the prototype's ``MySQLEncode`` (section
5.1).  It consumes three inputs —

1. a **map file** assigning every tag name a non-zero field value,
2. a **seed file** (the effective encryption key),
3. the **XML document** —

and fills the server's node table with one row per element::

    (pre, post, parent, server-share coefficients)

The encoder is streaming: it processes SAX events and keeps only one stack
frame per open element (holding the running product of completed children),
so memory is proportional to the document depth, matching the "thin client"
design of the prototype.
"""

from repro.encode.deploy import ClusterDeployment
from repro.encode.encoder import EncodedDatabase, Encoder, EncodingStats, NODE_TABLE_NAME
from repro.encode.tagmap import TagMap, TagMapError

__all__ = [
    "Encoder",
    "EncodedDatabase",
    "EncodingStats",
    "ClusterDeployment",
    "NODE_TABLE_NAME",
    "TagMap",
    "TagMapError",
]
