"""Incremental re-encode of node mutations: tree edits → per-server deltas.

The bulk :class:`~repro.encode.encoder.Encoder` streams a whole document
into share tables.  Mutating one node the same way would mean re-encoding
(and re-sharing, and re-shipping) every row.  This module keeps a
client-side :class:`DocumentState` — the plaintext tree, the pre/post/parent
numbering and every node's cached polynomial — and turns each edit into the
smallest write set the numbering scheme permits:

* **tag update** — the node's polynomial changes, and with it the running
  child product of every ancestor: the write set is the root-to-node path,
  ``O(depth)`` rows.  No pre/post/parent number moves.
* **subtree insert / delete** — pre-order numbers are dense, so every node
  at or after the edit position shifts: the write set is the ancestor path
  plus the contiguous pre-order tail ``[P .. N]``.  A shifted row must be
  *re-shared* even when its polynomial is untouched, because the PRG mask
  lanes are keyed on the pre number the row is stored under.

Every re-shared row is stamped with the mutation's **epoch** and its masks
are drawn from the version-salted PRG streams (see
:meth:`repro.prg.generator.KeyedPRG.elements`): reusing the version-0 masks
would let a single server subtract its old slice from its new one and read
the polynomial delta in the clear.

The result of one edit is a :class:`WriteDelta` — per-server upsert rows
plus shared structural updates and deletions — which the
:class:`~repro.rmi.write.WriteCoordinator` ships through the two-phase
prepare/commit protocol.  Applying the delta to each server's table yields
tables byte-identical (up to heap order) to re-deploying the edited
document from scratch at the same versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.encode.tagmap import TagMap
from repro.secretshare.scheme import SharingScheme
from repro.xmldoc.nodes import XMLDocument, XMLElement


class MutationError(ValueError):
    """Raised for edits the numbering scheme or document cannot support."""


@dataclass(frozen=True)
class RowUpsert:
    """One re-shared row headed for one server's node table."""

    pre: int
    post: int
    parent: int
    share: Tuple[int, ...]
    version: int

    def as_wire(self) -> List[object]:
        """Compact JSON-friendly form for the delta payload."""
        return [self.pre, self.post, self.parent, list(self.share), self.version]


@dataclass(frozen=True)
class StructuralUpdate:
    """A renumbering-only update: the stored share (and version) survive."""

    pre: int
    post: int
    parent: int

    def as_wire(self) -> List[int]:
        return [self.pre, self.post, self.parent]


@dataclass
class WriteDelta:
    """Everything one committed edit changes, for every server.

    ``upserts[s]`` is server ``s``'s list of re-shared rows (shares differ
    per server; pre/post/parent/version agree).  ``structural`` and
    ``deletes`` are identical across servers.  ``base_epoch`` is the table
    epoch this delta was computed against — the two-phase protocol refuses
    to prepare it on a server whose epoch has moved on — and ``epoch`` is
    the version stamped on every re-shared row once committed.
    """

    base_epoch: int
    epoch: int
    upserts: List[List[RowUpsert]]
    structural: List[StructuralUpdate] = field(default_factory=list)
    deletes: List[int] = field(default_factory=list)
    #: human-readable description of the edit (journal/bench reporting)
    description: str = ""

    @property
    def num_servers(self) -> int:
        return len(self.upserts)

    @property
    def touched_pres(self) -> List[int]:
        """Sorted pre positions this delta re-shares (per server)."""
        return sorted(row.pre for row in self.upserts[0]) if self.upserts else []

    @property
    def write_rows(self) -> int:
        """Rows re-shared per server — the bench's 'touched range' metric."""
        return len(self.upserts[0]) if self.upserts else 0

    def payload(self, server_index: int) -> Dict[str, object]:
        """The wire payload of this delta for one server."""
        return {
            "base_epoch": self.base_epoch,
            "epoch": self.epoch,
            "upserts": [row.as_wire() for row in self.upserts[server_index]],
            "structural": [update.as_wire() for update in self.structural],
            "deletes": list(self.deletes),
        }

    def summary(self) -> Dict[str, object]:
        touched = self.touched_pres
        return {
            "epoch": self.epoch,
            "description": self.description,
            "rows_reshared": self.write_rows,
            "rows_structural": len(self.structural),
            "rows_deleted": len(self.deletes),
            "pre_range": [touched[0], touched[-1]] if touched else None,
        }


class DocumentState:
    """Client-side source of truth for an evolving deployed document.

    Holds the plaintext tree, the dense pre/post/parent numbering, every
    node's cached polynomial (kernel coefficient vector) and the per-row
    version map.  Construction reproduces the bulk encoder's rows exactly
    (epoch 0, unsalted masks); each edit advances the epoch by one and
    returns the :class:`WriteDelta` that brings the server tables along.

    Polynomials are cached per *node object*: an edit invalidates only the
    root-to-edit path, so recomputing the document's polynomials after an
    edit costs ``O(depth)`` ring multiplications — the untouched subtrees
    (the overwhelming majority) are reused by reference.  Renumbering is a
    plain integer walk over the plaintext tree, which is orders of
    magnitude cheaper than the ring arithmetic and PRG material it avoids.
    """

    def __init__(self, document: XMLDocument, tag_map: TagMap, scheme: SharingScheme):
        self._document = document
        self._tag_map = tag_map
        self._scheme = scheme
        self._ring = scheme.ring
        self._kernel = scheme.ring.kernel
        #: node -> cached polynomial (kernel coefficient vector)
        self._poly: Dict[XMLElement, object] = {}
        #: pre -> node, rebuilt on every renumber
        self._by_pre: Dict[int, XMLElement] = {}
        #: pre -> (post, parent, polynomial, version) as the servers hold it
        self._rows: Dict[int, Tuple[int, int, object, int]] = {}
        self._epoch = 0
        self._rebuild(initial=True)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def document(self) -> XMLDocument:
        return self._document

    @property
    def epoch(self) -> int:
        """The epoch of the last produced delta (0 = bulk-encoded state)."""
        return self._epoch

    @property
    def node_count(self) -> int:
        return len(self._rows)

    def node_at(self, pre: int) -> XMLElement:
        """The element currently numbered ``pre``."""
        node = self._by_pre.get(pre)
        if node is None:
            raise MutationError("no node at pre position %d" % pre)
        return node

    def version_of(self, pre: int) -> int:
        """The write version the servers hold for row ``pre``."""
        try:
            return self._rows[pre][3]
        except KeyError:
            raise MutationError("no node at pre position %d" % pre)

    def versions(self) -> Dict[int, int]:
        """The full pre → version map (0 for never-touched rows)."""
        return {pre: row[3] for pre, row in self._rows.items()}

    def expected_rows(self, server_index: int) -> List[Dict[str, object]]:
        """Every row server ``server_index`` must currently hold.

        Regenerates the full table from the plaintext state — the oracle
        the write-path tests compare server tables against.  Rows at
        version 0 omit the ``version`` key, matching the bulk encoder.
        """
        pres = sorted(self._rows)
        polys = [self._rows[pre][2] for pre in pres]
        versions = [self._rows[pre][3] for pre in pres]
        share_rows = self._scheme.server_share_rows(polys, pres, versions)
        rows = []
        for position, pre in enumerate(pres):
            post, parent, _, version = self._rows[pre]
            row = {
                "pre": pre,
                "post": post,
                "parent": parent,
                "share": tuple(share_rows[server_index][position]),
            }
            if version:
                row["version"] = version
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    # Numbering and polynomials
    # ------------------------------------------------------------------

    def _renumber(self) -> Tuple[Dict[XMLElement, Tuple[int, int, int]], List[XMLElement]]:
        """Assign pre/post/parent to every node, mirroring the SAX encoder.

        Returns the numbering map and the nodes in close (post) order —
        children always before parents, which is the order polynomial
        recomputation needs.
        """
        info: Dict[XMLElement, Tuple[int, int, int]] = {}
        order: List[XMLElement] = []
        pre_counter = 0
        post_counter = 0
        stack: List[Tuple[XMLElement, int, Optional[int]]] = [
            (self._document.root, 0, None)
        ]
        while stack:
            node, parent_pre, pre = stack.pop()
            if pre is None:  # open the element
                pre_counter += 1
                stack.append((node, parent_pre, pre_counter))
                for child in reversed(node.children):
                    stack.append((child, pre_counter, None))
            else:  # close the element (all children already closed)
                post_counter += 1
                info[node] = (pre, post_counter, parent_pre)
                order.append(node)
        return info, order

    def _polynomial(self, node: XMLElement) -> object:
        """The node's cached polynomial; children must be computed already."""
        poly = self._poly.get(node)
        if poly is not None:
            return poly
        kernel = self._kernel
        tag_value = self._tag_map.value(node.tag)
        if not node.children:
            poly = kernel.linear_factor(tag_value, self._ring.length)
        else:
            product = self._poly[node.children[0]]
            for child in node.children[1:]:
                product = kernel.cyclic_convolve(product, self._poly[child])
            poly = kernel.cyclic_mul_linear(tag_value, product)
        self._poly[node] = poly
        return poly

    def _invalidate_path(self, node: Optional[XMLElement]) -> None:
        """Drop cached polynomials on the path from ``node`` to the root."""
        while node is not None:
            self._poly.pop(node, None)
            node = node.parent

    def _forget_subtree(self, node: XMLElement) -> None:
        """Drop cached polynomials of a detached subtree (frees the refs)."""
        for descendant in node.iter():
            self._poly.pop(descendant, None)

    def _rebuild(self, initial: bool = False) -> Optional[WriteDelta]:
        """Renumber, recompute polynomials, and (post-edit) diff into a delta."""
        info, order = self._renumber()
        for node in order:  # close order: children before parents
            self._polynomial(node)
        new_rows: Dict[int, Tuple[int, int, object, int]] = {}
        changed: List[Tuple[int, int, int, object]] = []
        structural: List[StructuralUpdate] = []
        for node in order:
            pre, post, parent = info[node]
            poly = self._poly[node]
            old = self._rows.get(pre)
            if old is not None and old[2] is poly:
                if old[0] == post and old[1] == parent:
                    new_rows[pre] = old  # untouched row, version survives
                else:
                    structural.append(StructuralUpdate(pre, post, parent))
                    new_rows[pre] = (post, parent, poly, old[3])
            elif old is not None and self._same_poly(old[2], poly):
                # recomputed to the same value (e.g. a no-op tag update):
                # keep the stored share, adjust numbering if it moved
                if old[0] == post and old[1] == parent:
                    new_rows[pre] = (post, parent, poly, old[3])
                else:
                    structural.append(StructuralUpdate(pre, post, parent))
                    new_rows[pre] = (post, parent, poly, old[3])
            else:
                changed.append((pre, post, parent, poly))
                new_rows[pre] = (post, parent, poly, 0)  # version set below
        deletes = sorted(pre for pre in self._rows if pre not in new_rows)
        self._by_pre = {info[node][0]: node for node in order}
        if initial:
            self._rows = new_rows
            return None
        base_epoch = self._epoch
        self._epoch += 1
        epoch = self._epoch
        changed.sort(key=lambda record: record[0])
        pres = [record[0] for record in changed]
        versions = [epoch] * len(pres)
        share_rows = self._scheme.server_share_rows(
            [record[3] for record in changed], pres, versions
        )
        upserts: List[List[RowUpsert]] = []
        for server_rows in share_rows:
            upserts.append(
                [
                    RowUpsert(pre, post, parent, tuple(share), epoch)
                    for (pre, post, parent, _), share in zip(changed, server_rows)
                ]
            )
        for pre, post, parent, poly in changed:
            new_rows[pre] = (post, parent, poly, epoch)
        self._rows = new_rows
        return WriteDelta(
            base_epoch=base_epoch,
            epoch=epoch,
            upserts=upserts,
            structural=structural,
            deletes=deletes,
        )

    def _same_poly(self, old: object, new: object) -> bool:
        """Value equality of two kernel vectors (identity already failed)."""
        kernel = self._kernel
        return kernel.unwrap(old) == kernel.unwrap(new)

    # ------------------------------------------------------------------
    # Edits
    # ------------------------------------------------------------------

    def update_tag(self, pre: int, new_tag: str) -> WriteDelta:
        """Rename the node at ``pre``; re-shares the root-to-node path."""
        self._tag_map.value(new_tag)  # unknown tags fail before any mutation
        node = self.node_at(pre)
        old_tag = node.tag
        node.tag = new_tag
        self._invalidate_path(node)
        delta = self._rebuild()
        delta.description = "update_tag(pre=%d, %s -> %s)" % (pre, old_tag, new_tag)
        return delta

    def insert_subtree(
        self, parent_pre: int, element: XMLElement, index: Optional[int] = None
    ) -> WriteDelta:
        """Graft ``element`` under the node at ``parent_pre``.

        ``index`` is the child position (``None`` appends).  Re-shares the
        ancestor path plus the contiguous pre-order tail from the insertion
        point — every row whose pre number shifts.
        """
        for descendant in element.iter():
            self._tag_map.value(descendant.tag)
        if element.parent is not None:
            raise MutationError("the inserted subtree is already attached")
        parent = self.node_at(parent_pre)
        if index is None:
            index = len(parent.children)
        if not 0 <= index <= len(parent.children):
            raise MutationError(
                "child index %d out of range for %d children"
                % (index, len(parent.children))
            )
        element.parent = parent
        parent.children.insert(index, element)
        self._invalidate_path(parent)
        delta = self._rebuild()
        delta.description = "insert_subtree(parent=%d, index=%d, nodes=%d)" % (
            parent_pre,
            index,
            element.subtree_size(),
        )
        return delta

    def delete_subtree(self, pre: int) -> WriteDelta:
        """Remove the node at ``pre`` and its whole subtree.

        Re-shares the ancestor path plus the shifted pre-order tail; the
        rows past the new document length are deleted on every server.
        """
        node = self.node_at(pre)
        parent = node.parent
        if parent is None:
            raise MutationError("cannot delete the document root")
        removed = node.subtree_size()
        parent.children.remove(node)
        node.parent = None
        self._forget_subtree(node)
        self._invalidate_path(parent)
        delta = self._rebuild()
        delta.description = "delete_subtree(pre=%d, nodes=%d)" % (pre, removed)
        return delta
