"""The streaming encoder: XML events → secret-shared node rows.

Equivalent of the prototype's ``MySQLEncode``.  The encoder walks the
document with SAX-style events and maintains one frame per open element.
Each frame accumulates the product of the polynomials of its already-closed
children, so when an element closes its polynomial is a single ring
multiplication away:

    f(node) = (x − map(tag)) · Π f(child)

The polynomial is then split additively — the client share is produced by the
keyed PRG from ``(seed, pre)`` and discarded, the server share is stored in
the node table together with the pre/post/parent numbers.

The per-node ring multiplications (one sparse ``x - tag`` product plus one
dense running child-product update) dominate encoding time; they run on the
field's :class:`~repro.gf.kernels.FieldKernel` (Kronecker-substitution
convolution for prime fields, log/exp tables for extension fields) —
``benchmarks/bench_field_kernels.py`` quantifies the speedup over the naive
dispatched arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.encode.tagmap import TagMap
from repro.metrics.timer import Stopwatch
from repro.poly.ring import QuotientRing, RingPolynomial
from repro.prg.generator import KeyedPRG
from repro.secretshare.additive import AdditiveSharing
from repro.storage.database import Database
from repro.storage.schema import Column, ColumnType, TableSchema
from repro.storage.table import Table
from repro.xmldoc.nodes import XMLDocument
from repro.xmldoc.parser import ContentHandler, StreamingParser
from repro.xmldoc.serializer import serialize

#: name of the server-side node table
NODE_TABLE_NAME = "nodes"

#: byte width charged per pre/post/parent integer (MySQL INT)
STRUCTURE_INT_BYTES = 4


def node_table_schema() -> TableSchema:
    """The relational schema of the server's node table.

    ``version`` is the row's write epoch: absent (or 0) for bulk-loaded
    rows — keeping freshly encoded tables byte-identical to the pre-write
    era — and bumped by every committed mutation that touches the row.
    Share masks are salted with it, version checks gate the two-phase
    write protocol, and read-repair keys off it.
    """
    return TableSchema(
        NODE_TABLE_NAME,
        [
            Column("pre", ColumnType.INTEGER),
            Column("post", ColumnType.INTEGER),
            Column("parent", ColumnType.INTEGER),
            Column("share", ColumnType.INT_LIST),
            Column("version", ColumnType.INTEGER, nullable=True),
        ],
    )


@dataclass(frozen=True)
class EncodingStats:
    """Size and time accounting for one encoding run (figure 4's rows)."""

    #: number of element nodes encoded
    node_count: int
    #: serialised size of the input XML in bytes
    input_bytes: int
    #: bytes of polynomial share payload stored on the server
    payload_bytes: int
    #: bytes of pre/post/parent structure columns
    structure_bytes: int
    #: bytes of the B-tree indexes on pre/post/parent
    index_bytes: int
    #: wall-clock encoding time in seconds
    encoding_seconds: float

    @property
    def output_bytes(self) -> int:
        """Total stored bytes excluding indexes (the paper's "output size")."""
        return self.payload_bytes + self.structure_bytes

    @property
    def total_bytes(self) -> int:
        """Stored bytes including indexes."""
        return self.output_bytes + self.index_bytes

    @property
    def structure_fraction(self) -> float:
        """Fraction of the output caused by pre/post/parent (paper: ≈17%)."""
        if self.output_bytes == 0:
            return 0.0
        return self.structure_bytes / self.output_bytes

    @property
    def expansion_ratio(self) -> float:
        """Output size over input size (paper: ≈1.5× for the payload)."""
        if self.input_bytes == 0:
            return 0.0
        return self.output_bytes / self.input_bytes


class EncodedDatabase:
    """The result of encoding: the server database plus client-side context.

    Only ``database`` lives on the server.  The tag map, seed/PRG and ring
    stay with the client — they are exactly the secret material needed to
    query.
    """

    def __init__(
        self,
        database: Database,
        ring: QuotientRing,
        tag_map: TagMap,
        prg: KeyedPRG,
        stats: EncodingStats,
    ):
        self.database = database
        self.ring = ring
        self.tag_map = tag_map
        self.prg = prg
        self.stats = stats

    @property
    def node_table(self) -> Table:
        """The server's node table."""
        return self.database.table(NODE_TABLE_NAME)

    @property
    def sharing(self) -> AdditiveSharing:
        """An :class:`AdditiveSharing` bound to this database's ring and PRG."""
        return AdditiveSharing(self.ring, self.prg)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "EncodedDatabase(nodes=%d, field=F_%d)" % (
            len(self.node_table),
            self.ring.field.order,
        )


class _EncodingHandler(ContentHandler):
    """SAX handler performing the actual streaming encode.

    ``tables`` holds one node table per server and ``scheme`` the sharing
    scheme producing one stored slice per table — the classic single-server
    encode is simply the one-table case with the two-party additive scheme
    (whose single "slice" is the familiar server share).

    The handler is *array-resident*: per-node polynomials stay raw kernel
    coefficient vectors (int64 ndarrays under the numpy backend) rather
    than ring objects, a parent's running child product is lazily ``None``
    until the first child closes (skipping the multiply-by-one), and the
    finished ``(pre, post, parent, polynomial)`` records buffer until a
    flush splits the whole batch through the scheme's
    ``server_share_rows`` and bulk-inserts each server's rows on the
    trusted (schema-shaped-by-construction) path.  The arithmetic order is
    unchanged, so the stored shares are bit-identical to the historical
    per-node path on every kernel backend.
    """

    #: buffered nodes per share-split/bulk-insert flush
    _FLUSH_ROWS = 1024

    def __init__(self, encoder: "Encoder", tables: Sequence[Table], scheme):
        self._encoder = encoder
        self._tables = list(tables)
        self._ring = encoder.ring
        # One kernel resolution per document rather than per node: the
        # backend cannot change mid-encode, and the generation check in
        # Field.kernel is measurable across 10^4 nodes.
        self._kernel = self._ring.kernel
        self._scheme = scheme
        self._tag_map = encoder.tag_map
        # One frame per open element:
        # [pre, tag_value, running_child_product_or_None, parent_pre]
        self._stack: List[List] = []
        self._pre_counter = 0
        self._post_counter = 0
        self.node_count = 0
        # finished nodes waiting for the next flush:
        # (pre, post, parent, polynomial) in close order
        self._pending: List[tuple] = []

    def start_element(self, tag: str, attributes: Dict[str, str]) -> None:
        self._pre_counter += 1
        tag_value = self._tag_map.value(tag)
        parent_pre = self._stack[-1][0] if self._stack else 0
        self._stack.append([self._pre_counter, tag_value, None, parent_pre])

    def end_element(self, tag: str) -> None:
        self._post_counter += 1
        pre, tag_value, child_product, parent_pre = self._stack.pop()
        kernel = self._kernel
        if child_product is None:  # leaf: (x - tag) * 1
            polynomial = kernel.linear_factor(tag_value, self._ring.length)
            linear_root = tag_value
        else:
            polynomial = kernel.cyclic_mul_linear(tag_value, child_product)
            linear_root = None
        pending = self._pending
        pending.append((pre, self._post_counter, parent_pre, polynomial))
        self.node_count += 1
        if self._stack:
            parent_frame = self._stack[-1]
            if parent_frame[2] is None:  # first child: product * 1 == product
                parent_frame[2] = polynomial
            elif linear_root is not None:
                # a closing leaf contributes the sparse factor (x - tag):
                # the same ring product as convolving with its polynomial,
                # but a cyclic shift-and-subtract instead of a dense pass
                parent_frame[2] = kernel.cyclic_mul_linear(linear_root, parent_frame[2])
            else:
                parent_frame[2] = kernel.cyclic_convolve(parent_frame[2], polynomial)
        if len(pending) >= self._FLUSH_ROWS:
            self.flush()

    def flush(self) -> None:
        """Split and store every buffered node; called on batch boundaries
        and once by the encode entry points before index creation."""
        if not self._pending:
            return
        pres = [record[0] for record in self._pending]
        share_rows = self._scheme.server_share_rows(
            [record[3] for record in self._pending], pres
        )
        for table, server_rows in zip(self._tables, share_rows):
            table.insert_many(
                [
                    {
                        "pre": pre,
                        "post": post,
                        "parent": parent,
                        "share": tuple(share),
                    }
                    for (pre, post, parent, _), share in zip(self._pending, server_rows)
                ],
                validate=False,
            )
        self._pending = []

    def characters(self, text: str) -> None:
        # Text content is ignored by the tag-name encoding; the trie
        # transform rewrites it into elements *before* encoding when data
        # search is wanted.
        return None


class Encoder:
    """Encodes XML documents into a server database of secret-shared rows."""

    def __init__(
        self,
        tag_map: TagMap,
        seed: bytes,
        btree_order: int = 64,
        index_columns: Optional[List[str]] = None,
        prg_memo_size: int = 1024,
    ):
        self.tag_map = tag_map
        self.field = tag_map.field
        self.ring = QuotientRing(self.field)
        self.prg = KeyedPRG(seed, self.field, memo_size=prg_memo_size)
        self.sharing = AdditiveSharing(self.ring, self.prg)
        self._btree_order = btree_order
        self._index_columns = index_columns if index_columns is not None else ["pre", "post", "parent"]

    # ------------------------------------------------------------------
    # Encoding entry points
    # ------------------------------------------------------------------

    def encode_document(
        self, document: XMLDocument, database: Optional[Database] = None
    ) -> EncodedDatabase:
        """Encode an in-memory document (convenience around the streaming path)."""
        return self.encode_text(serialize(document), database=database)

    def encode_text(self, xml_text: str, database: Optional[Database] = None) -> EncodedDatabase:
        """Encode XML text, streaming through the SAX parser."""
        database = database or Database()
        table = database.create_table(node_table_schema(), btree_order=self._btree_order)
        handler = _EncodingHandler(self, [table], self.sharing)
        watch = Stopwatch().start()
        StreamingParser(handler).parse_string(xml_text)
        handler.flush()
        for column in self._index_columns:
            table.create_index(column, unique=(column in ("pre", "post")))
        elapsed = watch.stop()
        stats = self._build_stats(table, len(xml_text.encode("utf-8")), handler.node_count, elapsed)
        return EncodedDatabase(database, self.ring, self.tag_map, self.prg, stats)

    def encode_file(self, path: str, database: Optional[Database] = None, encoding: str = "utf-8") -> EncodedDatabase:
        """Encode an XML file from disk."""
        with open(path, "r", encoding=encoding) as handle:
            return self.encode_text(handle.read(), database=database)

    # ------------------------------------------------------------------
    # Cluster deployment entry points
    # ------------------------------------------------------------------

    def deploy_document(self, document: XMLDocument, **kwargs):
        """Encode a document into an n-server cluster deployment.

        See :meth:`deploy_text` for the keyword options.
        """
        return self.deploy_text(serialize(document), **kwargs)

    def deploy_text(
        self,
        xml_text: str,
        servers: int = 1,
        threshold: Optional[int] = None,
        sharing: Union[str, object] = "additive",
        databases: Optional[List[Database]] = None,
    ):
        """Encode XML text into one node table per server.

        ``sharing`` names the scheme (``"additive"`` / ``"shamir"``) or is a
        ready :class:`~repro.secretshare.scheme.SharingScheme` instance;
        ``servers`` / ``threshold`` are its (n, k) parameters.  Each server's
        table carries the same ``pre``/``post``/``parent`` structure and its
        own share slice, so a plain single-shard
        :class:`~repro.filters.server.ServerFilter` serves each of them
        unchanged.  Returns a
        :class:`~repro.encode.deploy.ClusterDeployment`.
        """
        from repro.encode.deploy import deploy_text

        return deploy_text(
            self,
            xml_text,
            servers=servers,
            threshold=threshold,
            sharing=sharing,
            databases=databases,
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _build_stats(self, table: Table, input_bytes: int, node_count: int, elapsed: float) -> EncodingStats:
        element_bytes = max(1, (self.field.element_bits + 7) // 8)
        payload_bytes = table.column_bytes("share", element_bytes=element_bytes)
        structure_bytes = sum(
            table.column_bytes(column, int_width=STRUCTURE_INT_BYTES)
            for column in ("pre", "post", "parent")
        )
        index_bytes = table.index_bytes()
        return EncodingStats(
            node_count=node_count,
            input_bytes=input_bytes,
            payload_bytes=payload_bytes,
            structure_bytes=structure_bytes,
            index_bytes=index_bytes,
            encoding_seconds=elapsed,
        )
