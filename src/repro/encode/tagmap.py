"""Tag maps: the private mapping from tag names to field values.

The map file of the prototype is "a property file where each line is of the
form ``name = value``, where name is one of the tag-names as specified by the
DTD or XML schema and value ∈ F_{p^e}" (section 5.1).  The map is private to
the client: the server only ever sees field values through polynomial shares.

Values must be non-zero (evaluation at zero is undefined on the quotient
ring) and distinct (two tags sharing a value would be indistinguishable to
queries).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.gf.base import Field
from repro.gf.factory import field_for_alphabet, make_field
from repro.prg.generator import SplitMix64


class TagMapError(ValueError):
    """Raised for invalid tag maps (duplicates, zero values, unknown tags)."""


class TagMap:
    """An injective mapping ``tag name → non-zero field value``."""

    def __init__(self, field: Field, mapping: Dict[str, int]):
        self.field = field
        validated: Dict[str, int] = {}
        seen_values: Dict[int, str] = {}
        for name, value in mapping.items():
            if not isinstance(value, int) or isinstance(value, bool):
                raise TagMapError("value for tag %r must be an int, got %r" % (name, value))
            canonical = field.from_int(value)
            if canonical == 0:
                raise TagMapError(
                    "tag %r maps to zero; zero is reserved (ring evaluation at 0 is undefined)" % name
                )
            if canonical in seen_values:
                raise TagMapError(
                    "tags %r and %r map to the same value %d" % (seen_values[canonical], name, canonical)
                )
            seen_values[canonical] = name
            validated[name] = canonical
        self._mapping = validated

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_names(
        cls,
        names: Iterable[str],
        field: Optional[Field] = None,
        shuffle_seed: Optional[int] = None,
    ) -> "TagMap":
        """Build a map for an alphabet of tag names.

        When no field is given, the smallest suitable prime-power field is
        selected automatically (77 XMark tags → ``F_83``, exactly the paper's
        choice).  ``shuffle_seed`` optionally permutes the value assignment so
        the mapping is not the trivial enumeration order — the mapping is part
        of the client's secret material.
        """
        name_list = list(dict.fromkeys(names))
        if not name_list:
            raise TagMapError("cannot build a tag map from an empty name list")
        if field is None:
            field = field_for_alphabet(len(name_list))
        # q - 1 must strictly exceed the alphabet size: if every non-zero
        # field value can occur as a root, a subtree covering the whole
        # alphabet collapses to the zero polynomial in the quotient ring and
        # both matching tests lose their selectivity on it.
        if len(name_list) >= field.order - 1:
            raise TagMapError(
                "field F_%d is too small for %d tag names (need at least %d elements)"
                % (field.order, len(name_list), len(name_list) + 2)
            )
        values = list(range(1, len(name_list) + 1))
        if shuffle_seed is not None:
            values = _shuffle(values, shuffle_seed, field.order)
        return cls(field, dict(zip(name_list, values)))

    @classmethod
    def load(cls, path: str, p: Optional[int] = None, e: int = 1) -> "TagMap":
        """Load a ``name = value`` property file.

        When ``p`` is omitted the field is sized from the largest value in
        the file (next prime power above it).
        """
        mapping: Dict[str, int] = {}
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, raw_line in enumerate(handle, start=1):
                line = raw_line.strip()
                if not line or line.startswith("#"):
                    continue
                if "=" not in line:
                    raise TagMapError("malformed map line %d: %r" % (line_number, raw_line))
                name, _, value_text = line.partition("=")
                name = name.strip()
                try:
                    value = int(value_text.strip())
                except ValueError as error:
                    raise TagMapError(
                        "map line %d has a non-integer value: %r" % (line_number, raw_line)
                    ) from error
                if name in mapping:
                    raise TagMapError("tag %r appears twice in %s" % (name, path))
                mapping[name] = value
        if not mapping:
            raise TagMapError("map file %s is empty" % path)
        if p is None:
            field = field_for_alphabet(max(mapping.values()))
        else:
            field = make_field(p, e)
        return cls(field, mapping)

    def save(self, path: str) -> None:
        """Write the map in the prototype's property-file format."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("# tag map over F_%d\n" % self.field.order)
            for name in sorted(self._mapping):
                handle.write("%s = %d\n" % (name, self._mapping[name]))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def value(self, name: str) -> int:
        """The field value of a tag name (raises for unknown tags)."""
        value = self._mapping.get(name)
        if value is None:
            raise TagMapError("tag %r is not present in the map" % name)
        return value

    def get(self, name: str) -> Optional[int]:
        """The field value of a tag name, or ``None`` when unmapped."""
        return self._mapping.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._mapping

    def __len__(self) -> int:
        return len(self._mapping)

    def names(self) -> List[str]:
        """All mapped tag names."""
        return list(self._mapping)

    def items(self):
        """Iterate ``(name, value)`` pairs."""
        return self._mapping.items()

    def inverse(self) -> Dict[int, str]:
        """Value → name dictionary (used by tests and debugging tools)."""
        return {value: name for name, value in self._mapping.items()}

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "TagMap(%d tags over F_%d)" % (len(self._mapping), self.field.order)


def _shuffle(values: List[int], seed: int, field_order: int) -> List[int]:
    """Deterministic Fisher–Yates shuffle of candidate values."""
    # Draw candidate values from the full non-zero range of the field so the
    # mapping does not reveal the number of tags through its maximum value.
    rng = SplitMix64(seed)
    pool = list(range(1, field_order))
    for i in range(len(pool) - 1, 0, -1):
        j = rng.next_below(i + 1)
        pool[i], pool[j] = pool[j], pool[i]
    return pool[: len(values)]
