"""Cluster deployment: one secret-shared node table per server.

The single-server encode stores *the* server share of every node polynomial
in one table.  A deployment generalises this: the chosen
:class:`~repro.secretshare.scheme.SharingScheme` splits each polynomial into
``n`` slices and the streaming encoder writes slice ``i`` into server ``i``'s
table.  All tables carry identical ``pre``/``post``/``parent`` structure
(structural queries can be answered by any one server); only the ``share``
column differs.  Each table is served by a plain, unmodified
:class:`~repro.filters.server.ServerFilter` — a server neither knows nor
cares that it holds one slice of a larger deployment.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.encode.encoder import (
    EncodingStats,
    _EncodingHandler,
    node_table_schema,
)
from repro.encode.tagmap import TagMap
from repro.metrics.timer import Stopwatch
from repro.poly.ring import QuotientRing
from repro.prg.generator import KeyedPRG
from repro.secretshare import SharingError, SharingScheme, make_scheme
from repro.storage.database import Database
from repro.storage.table import Table
from repro.xmldoc.parser import StreamingParser


class ClusterDeployment:
    """The result of deploying one document across ``n`` share servers.

    Only ``databases`` (one per server) live on the servers.  The tag map,
    seed/PRG, ring and scheme stay with the client — exactly the secret
    material needed to query the cluster.
    """

    def __init__(
        self,
        databases: List[Database],
        ring: QuotientRing,
        tag_map: TagMap,
        prg: KeyedPRG,
        scheme: SharingScheme,
        stats: EncodingStats,
        per_server_stats: List[EncodingStats],
    ):
        if len(databases) != scheme.num_servers:
            raise SharingError(
                "deployment has %d databases but the scheme shards across %d servers"
                % (len(databases), scheme.num_servers)
            )
        self.databases = databases
        self.ring = ring
        self.tag_map = tag_map
        self.prg = prg
        self.scheme = scheme
        #: aggregate size/time accounting across every server
        self.stats = stats
        #: per-server size accounting (payload is replicated n times for
        #: additive/Shamir slices — the storage price of the redundancy)
        self.per_server_stats = per_server_stats

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def num_servers(self) -> int:
        """Number of share servers in the deployment."""
        return self.scheme.num_servers

    @property
    def threshold(self) -> int:
        """Server shares needed per reconstruction."""
        return self.scheme.threshold

    # ------------------------------------------------------------------
    # Access (mirroring EncodedDatabase where it makes sense)
    # ------------------------------------------------------------------

    @property
    def node_tables(self) -> List[Table]:
        """Every server's node table, in server order."""
        from repro.encode.encoder import NODE_TABLE_NAME

        return [database.table(NODE_TABLE_NAME) for database in self.databases]

    @property
    def node_table(self) -> Table:
        """Server 0's node table (structural twin of every other)."""
        return self.node_tables[0]

    @property
    def sharing(self) -> SharingScheme:
        """The scheme bound to this deployment (alias of ``scheme``)."""
        return self.scheme

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "ClusterDeployment(servers=%d, threshold=%d, nodes=%d, field=F_%d, scheme=%s)" % (
            self.num_servers,
            self.threshold,
            len(self.node_table),
            self.ring.field.order,
            self.scheme.name,
        )


def deploy_text(
    encoder,
    xml_text: str,
    servers: int = 1,
    threshold: Optional[int] = None,
    sharing: Union[str, SharingScheme] = "additive",
    databases: Optional[List[Database]] = None,
) -> ClusterDeployment:
    """Stream ``xml_text`` into one node table per server (see Encoder.deploy_text)."""
    if isinstance(sharing, SharingScheme):
        scheme = sharing
        if scheme.ring != encoder.ring or scheme.prg != encoder.prg:
            raise SharingError("the supplied scheme is bound to a different ring or PRG")
    else:
        scheme = make_scheme(sharing, encoder.ring, encoder.prg, servers, threshold)
    if databases is None:
        databases = [Database() for _ in range(scheme.num_servers)]
    elif len(databases) != scheme.num_servers:
        raise SharingError(
            "got %d databases for a %d-server scheme" % (len(databases), scheme.num_servers)
        )

    tables = [
        database.create_table(node_table_schema(), btree_order=encoder._btree_order)
        for database in databases
    ]
    handler = _EncodingHandler(encoder, tables, scheme)
    watch = Stopwatch().start()
    StreamingParser(handler).parse_string(xml_text)
    handler.flush()
    for table in tables:
        for column in encoder._index_columns:
            table.create_index(column, unique=(column in ("pre", "post")))
    elapsed = watch.stop()

    input_bytes = len(xml_text.encode("utf-8"))
    per_server_stats = [
        encoder._build_stats(table, input_bytes, handler.node_count, elapsed)
        for table in tables
    ]
    stats = EncodingStats(
        node_count=handler.node_count,
        input_bytes=input_bytes,
        payload_bytes=sum(s.payload_bytes for s in per_server_stats),
        structure_bytes=sum(s.structure_bytes for s in per_server_stats),
        index_bytes=sum(s.index_bytes for s in per_server_stats),
        encoding_seconds=elapsed,
    )
    return ClusterDeployment(
        databases=databases,
        ring=encoder.ring,
        tag_map=encoder.tag_map,
        prg=encoder.prg,
        scheme=scheme,
        stats=stats,
        per_server_stats=per_server_stats,
    )
