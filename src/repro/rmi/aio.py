"""Asyncio wire: one multiplexed connection per server, pipelined calls.

The threaded :class:`~repro.rmi.socket.SocketTransport` spends one pooled
connection *and* one worker thread per in-flight call, and — because a
measured wire has no useful latency lower bound — the modeled-arrival
quorum admission degenerates to wait-for-all.  This module rebuilds the
same call boundary on asyncio:

* :class:`AsyncSocketTransport` — a **single** connection per server
  carrying any number of in-flight calls as id-tagged frames (see
  :data:`~repro.rmi.socket.MUX_MAGIC`).  Each call parks on a future; one
  reader task settles them as tagged replies arrive, in whatever order the
  server answers.  ``Codec`` payloads are byte-identical with the legacy
  and simulated transports, so per-server call/byte counters match across
  all three.
* :class:`AsyncClusterTransport` — the scatter-gather layer, async-native:
  ``ainvoke_all`` gathers coroutines instead of pool futures, and
  ``ainvoke_quorum`` admits replies **on arrival** — the k-th reply
  returns the round, stragglers drain in the background — with optional
  hedging driven by *observed* per-server RTT percentiles (a
  :class:`~repro.rmi.stats.QuantileSketch` per server) instead of a static
  modeled ratio.  The full sync ``ClusterTransport`` surface is presented
  on top via :class:`LoopThread`, so the existing
  :class:`~repro.filters.cluster.ClusterClient`, both engines and the
  whole test/benchmark harness run unmodified over the asyncio wire.

Error taxonomy and fail-over semantics are unchanged: connect failures,
timeouts and mid-call connection loss surface as
:class:`~repro.rmi.socket.ServerUnavailable`, protocol violations as
:class:`~repro.rmi.socket.WireProtocolError` (both ``ConnectionError``
subclasses, which is what the cluster fail-over path catches), and
server-side exceptions come back typed through
:func:`~repro.rmi.socket.decode_exception`.  A dying connection settles
*every* pending future with the typed error — no caller is ever left
hanging on a dead wire.
"""

from __future__ import annotations

import asyncio
import heapq
import threading
import time
from contextlib import suppress
from typing import Any, Awaitable, Callable, Dict, List, Optional, Sequence, Set, Tuple, TypeVar

from repro.rmi.codec import Codec, CodecError
from repro.rmi.cluster import (
    ClusterReply,
    InjectedFaultError,
    ServerDownError,
    _arrival_key,
)
from repro.rmi.socket import (
    DEFAULT_MAX_FRAME_BYTES,
    DEFAULT_TIMEOUT,
    MUX_MAGIC,
    STATUS_ERROR,
    STATUS_OK,
    AddressLike,
    ServerAddress,
    ServerUnavailable,
    SocketTransportError,
    WireProtocolError,
    decode_exception,
    pack_mux_frame,
    read_mux_frame,
)
from repro.rmi.stats import CallStats, QuantileSketch
from repro.rmi.transport import CallOutcome

T = TypeVar("T")

#: RTT quantile used when hedging is enabled with ``hedge=True``
DEFAULT_HEDGE_QUANTILE = 0.95


class LoopThread:
    """One asyncio event loop on a dedicated daemon thread.

    The sync façade over the asyncio stack: callers on ordinary threads
    submit coroutines with :meth:`run` and block on the result, while the
    loop multiplexes every connection and in-flight call underneath.  One
    instance is shared by all of a cluster's transports — a single loop
    from socket frames to quorum admission.
    """

    def __init__(self, name: str = "repro-aio"):
        self._loop = asyncio.new_event_loop()
        self._closed = False
        started = threading.Event()
        self._thread = threading.Thread(
            target=self._main, args=(started,), name=name, daemon=True
        )
        self._thread.start()
        started.wait()

    def _main(self, started: threading.Event) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(started.set)
        try:
            self._loop.run_forever()
        finally:
            try:
                pending = [t for t in asyncio.all_tasks(self._loop) if not t.done()]
                for task in pending:
                    task.cancel()
                if pending:
                    self._loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                asyncio.set_event_loop(None)
                self._loop.close()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    def is_loop_thread(self) -> bool:
        """Whether the calling thread is the loop thread itself."""
        return threading.current_thread() is self._thread

    def run(self, coroutine: Awaitable[T]) -> T:
        """Run one coroutine on the loop and block for its result.

        Must not be called *from* the loop thread — the wait would deadlock
        the loop against itself; async-native callers (the gateway) use the
        ``a``-prefixed methods directly instead.
        """
        if self.is_loop_thread():
            coroutine.close()  # type: ignore[attr-defined]
            raise RuntimeError(
                "the sync transport surface must not be driven from the event "
                "loop thread; await the async method instead"
            )
        if self._closed:
            coroutine.close()  # type: ignore[attr-defined]
            raise RuntimeError("the loop thread is closed")
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result()

    def close(self) -> None:
        """Stop the loop and join its thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._loop.call_soon_threadsafe(self._loop.stop)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass
        if not self.is_loop_thread():
            self._thread.join(timeout=5.0)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "LoopThread(%s, closed=%s)" % (self._thread.name, self._closed)


class _FairState:
    """Per-session scheduling state of one :class:`WeightedFairScheduler`."""

    __slots__ = ("inflight", "vfinish", "weight")

    def __init__(self, weight: float):
        self.inflight = 0
        self.vfinish = 0.0
        self.weight = weight


class _FairWaiter:
    """One queued admission request (owner + the future it parks on)."""

    __slots__ = ("owner", "future")

    def __init__(self, owner: Any, future: "asyncio.Future"):
        self.owner = owner
        self.future = future


class WeightedFairScheduler:
    """Cost-aware weighted fair queueing for one event loop's dispatches.

    The gateway's admission-control half: without it, one hog session
    streaming large ``fetch_shares_batch`` rounds monopolises the shared
    upstream connections and every other session's small structural call
    queues behind the batches.  Each session accrues *virtual finish
    time* proportional to the cost of its admitted work (batch reads
    cost ~batch-size, structural calls cost 1), and the waiter with the
    smallest finish time is admitted first — so a session that has
    consumed little service jumps ahead of one that has consumed a lot,
    bounding the small calls' latency regardless of the hog's backlog.

    Two concurrency bounds compose with the ordering: ``session_cap``
    limits any one session's in-flight dispatches (a hog saturates its
    own lane, never the loop), and optional ``max_inflight`` caps the
    global total.  A waiter at its session cap is skipped — it never
    blocks *other* sessions' admissions behind it.

    Scheduling state is **loop-confined**: :meth:`acquire` /
    :meth:`release` / :meth:`forget` must run on the owning event loop.
    The counters are lock-guarded so :meth:`snapshot` is safe from any
    thread.
    """

    def __init__(
        self,
        session_cap: int = 8,
        max_inflight: Optional[int] = None,
        default_weight: float = 1.0,
    ):
        if session_cap < 1:
            raise ValueError("session_cap must be at least 1, got %r" % (session_cap,))
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(
                "max_inflight must be at least 1 (or None), got %r" % (max_inflight,)
            )
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        self.session_cap = int(session_cap)
        self.max_inflight = max_inflight
        self.default_weight = float(default_weight)
        self._states: Dict[Any, _FairState] = {}
        #: (virtual finish, seq, waiter) — seq breaks ties deterministically
        self._heap: List[Tuple[float, int, _FairWaiter]] = []
        self._seq = 0
        self._virtual = 0.0
        self._total = 0
        self._counter_lock = threading.Lock()
        self._admitted = 0
        self._queued = 0
        self._peak_waiting = 0

    def _state(self, owner: Any) -> _FairState:
        state = self._states.get(owner)
        if state is None:
            state = _FairState(self.default_weight)
            self._states[owner] = state
        return state

    async def acquire(self, owner: Any, cost: float = 1.0) -> None:
        """Wait for admission of one dispatch of ``owner`` costing ``cost``.

        Every successful acquire MUST be paired with one :meth:`release`
        (use ``try/finally``).  Cancellation while queued withdraws the
        request; cancellation that races an admission gives the slot
        back before re-raising.
        """
        cost = max(1.0, float(cost))
        state = self._state(owner)
        # Classic start-time fair queueing: a session idle since before
        # the current virtual time starts *now*, not at zero — it cannot
        # bank credit while idle and then burst past everyone.
        start = max(self._virtual, state.vfinish)
        state.vfinish = start + cost / state.weight
        waiter = _FairWaiter(owner, asyncio.get_event_loop().create_future())
        self._seq += 1
        heapq.heappush(self._heap, (state.vfinish, self._seq, waiter))
        self._pump()
        if waiter.future.done() and not waiter.future.cancelled():
            await waiter.future
            with self._counter_lock:
                self._admitted += 1
            return
        with self._counter_lock:
            self._queued += 1
            self._peak_waiting = max(self._peak_waiting, len(self._heap))
        try:
            await waiter.future
        except asyncio.CancelledError:
            if waiter.future.done() and not waiter.future.cancelled():
                # Admitted in the same tick the caller was cancelled: the
                # slot was taken, give it back.
                self.release(owner)
            raise
        with self._counter_lock:
            self._admitted += 1

    def release(self, owner: Any) -> None:
        """Return one admitted slot of ``owner`` and admit eligible waiters."""
        state = self._states.get(owner)
        if state is not None and state.inflight > 0:
            state.inflight -= 1
            self._total -= 1
        self._pump()

    def forget(self, owner: Any) -> None:
        """Drop a departed session: frees its slots, cancels its waiters."""
        state = self._states.pop(owner, None)
        if state is not None:
            self._total -= state.inflight
        for _, _, waiter in self._heap:
            if waiter.owner is owner and not waiter.future.done():
                waiter.future.cancel()
        self._pump()

    def _pump(self) -> None:
        """Admit waiters in virtual-finish order while capacity allows.

        Waiters whose session is at its cap are skipped (and re-queued at
        their original position) so they never head-of-line-block other
        sessions; cancelled waiters are discarded.
        """
        skipped: List[Tuple[float, int, _FairWaiter]] = []
        while self._heap:
            if self.max_inflight is not None and self._total >= self.max_inflight:
                break
            vfinish, seq, waiter = self._heap[0]
            if waiter.future.done():  # cancelled while queued
                heapq.heappop(self._heap)
                continue
            state = self._states.get(waiter.owner)
            if state is None:  # forgotten owner: withdraw the request
                heapq.heappop(self._heap)
                waiter.future.cancel()
                continue
            if state.inflight >= self.session_cap:
                skipped.append(heapq.heappop(self._heap))
                continue
            heapq.heappop(self._heap)
            state.inflight += 1
            self._total += 1
            self._virtual = max(self._virtual, vfinish)
            waiter.future.set_result(None)
        for entry in skipped:
            heapq.heappush(self._heap, entry)

    def snapshot(self) -> Dict[str, Any]:
        """Counters plus occupancy, as one fresh plain dict."""
        with self._counter_lock:
            data: Dict[str, Any] = {
                "admitted": self._admitted,
                "queued": self._queued,
                "peak_waiting": self._peak_waiting,
            }
        data.update(
            {
                "active": self._total,
                "waiting": len(self._heap),
                "sessions": len(self._states),
                "session_cap": self.session_cap,
                "max_inflight": self.max_inflight,
            }
        )
        return data

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "WeightedFairScheduler(active=%d, waiting=%d, cap=%d)" % (
            self._total,
            len(self._heap),
            self.session_cap,
        )


class AsyncSocketTransport:
    """One multiplexed connection to one server; any number of in-flight calls.

    After dialing, the client sends the :data:`~repro.rmi.socket.MUX_MAGIC`
    preamble and every call becomes one id-tagged frame; a single reader
    task routes id-tagged replies back to the per-call futures, so a
    64-deep pipelined burst costs one socket and zero extra threads.  The
    server processes one connection's requests in order — the pipelining
    win is eliminating the per-request round-trip gap, not reordering.

    Failure semantics (all recorded in :attr:`stats`, mirroring the
    threaded transport):

    * dial failure after ``connect_retries`` attempts, a call exceeding
      ``timeout`` (the *total* deadline: dial + send + reply), and a
      connection dying mid-call all surface as :class:`ServerUnavailable`;
    * a protocol violation (oversized/truncated frame, undecodable
      payload, unknown status byte) is :class:`WireProtocolError` and
      poisons the connection — framing sync is unrecoverable, so every
      pending call is settled with the error and the next call redials;
    * a *timed-out* call leaves the connection usable: its id is simply
      abandoned, and the late reply (if any) is dropped by the reader.
      The same applies to replies for ids this client never issued.

    Not thread-safe by design: one instance belongs to one event loop.
    The cluster layer's :class:`LoopThread` provides the sync bridge.
    """

    #: latencies are wall-clock measurements (see ``SocketTransport``)
    measured = True
    #: measured transports have no modeled latency terms
    per_call_latency = 0.0
    per_byte_latency = 0.0

    def __init__(
        self,
        address: AddressLike,
        codec: Optional[Codec] = None,
        stats: Optional[CallStats] = None,
        timeout: float = DEFAULT_TIMEOUT,
        connect_retries: int = 4,
        connect_backoff: float = 0.05,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ):
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.address = ServerAddress.coerce(address)
        self.codec = codec or Codec()
        self.stats = stats or CallStats()
        self.timeout = timeout
        self.connect_retries = max(1, connect_retries)
        self.connect_backoff = connect_backoff
        self.max_frame_bytes = max_frame_bytes
        self._reader_task: Optional[asyncio.Task] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._conn_lock: Optional[asyncio.Lock] = None

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    async def _ensure_connection(self) -> asyncio.StreamWriter:
        if self._conn_lock is None:
            self._conn_lock = asyncio.Lock()
        async with self._conn_lock:
            if self._writer is not None:
                return self._writer
            last_error: Optional[BaseException] = None
            for attempt in range(self.connect_retries):
                if attempt:
                    await asyncio.sleep(self.connect_backoff * (2 ** (attempt - 1)))
                try:
                    if self.address.is_unix:
                        opening = asyncio.open_unix_connection(self.address.path)
                    else:
                        opening = asyncio.open_connection(
                            self.address.host, self.address.port
                        )
                    reader, writer = await asyncio.wait_for(opening, self.timeout)
                except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                    last_error = exc
                    continue
                writer.write(MUX_MAGIC)
                self._writer = writer
                self._reader_task = asyncio.ensure_future(self._read_loop(reader))
                return writer
            raise ServerUnavailable(
                "cannot connect to %s after %d attempts: %s"
                % (self.address, self.connect_retries, last_error)
            )

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        """Route id-tagged replies to their futures until the stream ends."""
        try:
            while True:
                item = await read_mux_frame(reader, self.max_frame_bytes)
                if item is None:
                    error: SocketTransportError = ServerUnavailable(
                        "server %s closed the connection mid-call" % (self.address,)
                    )
                    break
                call_id, payload = item
                future = self._pending.pop(call_id, None)
                if future is not None and not future.done():
                    future.set_result(payload)
                # else: a late reply for a timed-out call, or an id this
                # client never issued — drop it; framing stays in sync.
        except WireProtocolError as exc:
            error = exc
        except (ConnectionError, OSError) as exc:
            error = ServerUnavailable(
                "connection to %s lost mid-call: %s" % (self.address, exc)
            )
        except asyncio.CancelledError:
            self._teardown(ServerUnavailable("transport to %s closed" % (self.address,)))
            raise
        self._teardown(error)

    def _teardown(self, error: SocketTransportError) -> None:
        """Drop the connection and settle *every* pending call typed."""
        writer, self._writer = self._writer, None
        self._reader_task = None
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)
        if writer is not None:
            with suppress(RuntimeError, OSError):
                transport = writer.transport
                if transport is not None:
                    transport.abort()

    async def aclose(self) -> None:
        """Close the connection; pending calls settle as unavailable."""
        task = self._reader_task
        self._teardown(ServerUnavailable("transport to %s closed" % (self.address,)))
        if task is not None:
            task.cancel()
            with suppress(asyncio.CancelledError):
                await task

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------

    async def _roundtrip(self, request: bytes) -> bytes:
        writer = await self._ensure_connection()
        call_id = self._next_id
        self._next_id = (self._next_id + 1) % (1 << 32)
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self._pending[call_id] = future
        try:
            frame = pack_mux_frame(call_id, request, self.max_frame_bytes)
            try:
                writer.write(frame)
                await writer.drain()
            except SocketTransportError:
                raise
            except (ConnectionError, OSError) as exc:
                raise ServerUnavailable(
                    "send to %s failed: %s" % (self.address, exc)
                )
            return await future
        finally:
            # On success the reader already removed the id; on timeout or
            # failure this abandons it so a late reply is dropped.
            self._pending.pop(call_id, None)

    async def ainvoke_detailed(
        self,
        target: Any,
        method: str,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> CallOutcome:
        """One pipelined remote call; failures captured, never raised.

        ``target`` is accepted and ignored (the remote object lives behind
        the address), matching the threaded transport.  The call is
        recorded in :attr:`stats` whatever happens; failed calls record
        zero response bytes, exactly like both existing transports.
        """
        kwargs = kwargs or {}
        request = self.codec.encode(
            {"method": method, "args": list(args), "kwargs": kwargs}
        )
        started = time.perf_counter()
        value: Any = None
        error: Optional[BaseException] = None
        response_size = 0
        try:
            payload = await asyncio.wait_for(self._roundtrip(request), self.timeout)
        except asyncio.TimeoutError:
            error = ServerUnavailable(
                "call %r to %s timed out after %.1fs"
                % (method, self.address, self.timeout)
            )
        except SocketTransportError as exc:
            error = exc
        else:
            status, body = payload[:1], payload[1:]
            if status == STATUS_OK:
                try:
                    value = self.codec.decode(body)
                    response_size = len(body)
                except CodecError as exc:
                    error = WireProtocolError("undecodable response payload: %s" % exc)
            elif status == STATUS_ERROR:
                try:
                    described = self.codec.decode(body)
                except CodecError as exc:
                    error = WireProtocolError("undecodable error payload: %s" % exc)
                else:
                    error = decode_exception(described)
            else:
                # The stream is formally in sync, but a peer inventing
                # status bytes has lost our trust — same as the threaded
                # transport never re-pooling such a connection.
                error = WireProtocolError(
                    "unknown response status byte %r" % (status,)
                )
                self._teardown(
                    WireProtocolError(
                        "connection to %s poisoned by an unknown status byte"
                        % (self.address,)
                    )
                )
        latency = time.perf_counter() - started
        self.stats.record(
            method, len(request), response_size, latency, error=error is not None
        )
        return CallOutcome(
            value=value,
            error=error,
            latency=latency,
            request_bytes=len(request),
            response_bytes=response_size,
        )

    async def ainvoke(
        self,
        target: Any,
        method: str,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Like :meth:`ainvoke_detailed` but raising the captured error."""
        outcome = await self.ainvoke_detailed(target, method, args, kwargs)
        if outcome.error is not None:
            raise outcome.error
        return outcome.value

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "AsyncSocketTransport(%s, in_flight=%d)" % (
            self.address,
            len(self._pending),
        )


class AsyncClusterTransport:
    """Asyncio-native scatter-gather over one multiplexed connection per server.

    The async core (:meth:`ainvoke`, :meth:`ainvoke_all`,
    :meth:`ainvoke_quorum`) runs entirely on one event loop: a scatter is
    ``asyncio.gather`` over per-server coroutines, and a first-k quorum
    read admits replies **on arrival** — the round returns at the k-th
    successful reply's real completion, stragglers drain in the background
    and still land in their server's stats.

    Hedging (``hedge`` = an RTT quantile in ``(0, 1)``, or ``True`` for
    0.95) replaces the modeled static-ratio trigger of the simulated
    stack: each server's successful-call RTTs feed a
    :class:`~repro.rmi.stats.QuantileSketch`, and when the quorum round is
    still short of ``k`` replies after the slowest target's estimated
    ``hedge``-quantile RTT, the round co-issues the same call to every
    live non-target spare.  Before any RTT has been observed the deadline
    is unknown and hedging simply stays quiet.

    The complete *sync* ``ClusterTransport`` surface (``invoke_all``,
    ``invoke_quorum``, ``set_down``, ``inject_faults``, stats accessors,
    the measured makespan clock…) is provided by submitting the async core
    to the owned :class:`LoopThread` — which is how the unchanged
    ``ClusterClient``/engine/facade stack runs over this transport.
    """

    #: replies carry measured wall-clock latencies
    measured = True
    #: the asyncio transport is inherently concurrent (there is no
    #: sequential mode: one event loop multiplexes every call)
    concurrency = True

    def __init__(
        self,
        servers: Sequence[AddressLike],
        transports: Optional[Sequence[AsyncSocketTransport]] = None,
        codec: Optional[Codec] = None,
        timeout: float = DEFAULT_TIMEOUT,
        connect_retries: int = 2,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        round_overhead: float = 0.0,
        hedge: Any = False,
        hedge_window: int = 256,
        loop_thread: Optional[LoopThread] = None,
        name: str = "repro-aio",
    ):
        if not servers:
            raise ValueError("a cluster needs at least one server")
        if round_overhead < 0:
            raise ValueError("round_overhead must be non-negative")
        self.servers: List[ServerAddress] = [
            ServerAddress.coerce(server) for server in servers
        ]
        # The loop thread is created lazily on the first *sync* call: an
        # async-native consumer (the gateway) runs the transport on its own
        # event loop and must not spawn a bridge thread it never uses.
        self._owns_loop = loop_thread is None
        self._loop_thread: Optional[LoopThread] = loop_thread
        self._loop_name = name
        if transports is None:
            self.transports: List[AsyncSocketTransport] = [
                AsyncSocketTransport(
                    address,
                    codec=codec,
                    timeout=timeout,
                    connect_retries=connect_retries,
                    max_frame_bytes=max_frame_bytes,
                )
                for address in self.servers
            ]
        else:
            if len(transports) != len(self.servers):
                raise ValueError(
                    "got %d transports for %d servers"
                    % (len(transports), len(self.servers))
                )
            self.transports = list(transports)
        self.round_overhead = round_overhead
        self._hedge_quantile = self._coerce_hedge(hedge)
        #: per-server sketches of successful-call RTTs (hedging deadlines)
        self.rtt_sketches: List[QuantileSketch] = [
            QuantileSketch(hedge_window) for _ in self.servers
        ]
        # One lock covers fault state, the clock and the background set —
        # mutated from the loop thread and read from sync caller threads.
        self._lock = threading.Lock()
        self._down: set = set()
        self._fault_budget: Dict[int, int] = {}
        self._clock = 0.0
        self._round_start = 0.0
        self._background: Set["asyncio.Task"] = set()
        self._closed = False

    @staticmethod
    def _coerce_hedge(hedge: Any) -> Optional[float]:
        if hedge is False or hedge is None or hedge == 0:
            return None
        if hedge is True:
            return DEFAULT_HEDGE_QUANTILE
        quantile = float(hedge)
        if not 0.0 < quantile < 1.0:
            raise ValueError(
                "hedge must be an RTT quantile in (0, 1) (or True for %.2f), got %r"
                % (DEFAULT_HEDGE_QUANTILE, hedge)
            )
        return quantile

    # ------------------------------------------------------------------
    # Topology and fault control (sync; shared state is lock-guarded)
    # ------------------------------------------------------------------

    @property
    def num_servers(self) -> int:
        """Number of servers behind this transport."""
        return len(self.servers)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self.servers):
            raise IndexError(
                "server index %d out of range for %d servers"
                % (index, len(self.servers))
            )

    def set_down(self, index: int, down: bool = True) -> None:
        """Mark a server unreachable (drains stragglers first, like the
        threaded transport, so the flag never races a settling round)."""
        self._check_index(index)
        self.drain()
        with self._lock:
            if down:
                self._down.add(index)
            else:
                self._down.discard(index)

    def is_down(self, index: int) -> bool:
        """Whether a server is currently marked unreachable."""
        self._check_index(index)
        with self._lock:
            return index in self._down

    def live_servers(self) -> List[int]:
        """Indices of servers not marked down."""
        with self._lock:
            down = set(self._down)
        return [index for index in range(len(self.servers)) if index not in down]

    def mark_quarantined(self, index: int) -> None:
        """Route reads around a server for health reasons (supervisor path).

        Mirrors :meth:`ClusterTransport.mark_quarantined`: same routing
        effect as :meth:`set_down` plus a tick of the server's quarantine
        counter, so gateway ``__stats__`` readers see the degradation.
        """
        self.set_down(index, True)
        self.transports[index].stats.count_quarantine()

    def mark_healed(
        self,
        index: int,
        transport: Optional[AsyncSocketTransport] = None,
        server: Optional[AddressLike] = None,
    ) -> None:
        """Bring a healed server back into rotation (supervisor path).

        Mirrors :meth:`ClusterTransport.mark_healed`: optionally swaps in a
        replacement per-server transport (carrying the old counters forward
        and closing the old connection) and/or peer address, clears the
        down flag, and ticks the heal counter.
        """
        self._check_index(index)
        self.drain()
        if server is not None:
            self.servers[index] = ServerAddress.coerce(server)
        if transport is not None:
            old = self.transports[index]
            transport.stats.merge(old.stats)
            self._run(old.aclose())
            self.transports[index] = transport
        self.set_down(index, False)
        self.transports[index].stats.count_heal()

    def inject_faults(self, index: int, count: int = 1) -> None:
        """Make the next ``count`` invocations of one server fail transiently."""
        self._check_index(index)
        if count < 0:
            raise ValueError("fault count must be non-negative")
        self.drain()
        with self._lock:
            self._fault_budget[index] = self._fault_budget.get(index, 0) + count

    def latency_of(self, index: int) -> float:
        """Measured transports have no modeled lower bound: always 0.0."""
        self._check_index(index)
        return self.transports[index].per_call_latency

    # ------------------------------------------------------------------
    # Makespan clock (measured wall-clock per round)
    # ------------------------------------------------------------------

    def _advance_clock(self, elapsed: float, overlap: bool) -> None:
        elapsed += self.round_overhead
        with self._lock:
            if overlap:
                self._clock = max(self._clock, self._round_start + elapsed)
            else:
                self._round_start = self._clock
                self._clock += elapsed

    def makespan(self) -> float:
        """Measured wall-clock of the rounds so far (drains stragglers first)."""
        self.drain()
        with self._lock:
            return self._clock

    def reset_makespan(self) -> None:
        """Zero the wall-clock gauge (between experiment runs)."""
        self.drain()
        with self._lock:
            self._clock = 0.0
            self._round_start = 0.0

    # ------------------------------------------------------------------
    # Async core
    # ------------------------------------------------------------------

    async def _aoutcome(
        self,
        index: int,
        method: str,
        args: Tuple[Any, ...],
        kwargs: Optional[Dict[str, Any]],
    ) -> ClusterReply:
        """One call against one server, with failures captured, not raised."""
        transport = self.transports[index]
        with self._lock:
            down = index in self._down
            faulted = False
            if not down:
                budget = self._fault_budget.get(index, 0)
                if budget > 0:
                    self._fault_budget[index] = budget - 1
                    faulted = True
        if down:
            transport.stats.record(method, 0, 0, 0.0, error=True)
            return ClusterReply(
                index, error=ServerDownError("server %d is down" % index)
            )
        if faulted:
            transport.stats.record(method, 0, 0, 0.0, error=True)
            return ClusterReply(
                index,
                error=InjectedFaultError(
                    "injected fault on server %d (%s)" % (index, method)
                ),
            )
        try:
            outcome = await transport.ainvoke_detailed(None, method, args, kwargs)
        except Exception as exc:
            # Request-encoding failures (a caller-side bug) are captured so
            # a scattered round never aborts half-issued.
            return ClusterReply(index, error=exc)
        if outcome.ok:
            self.rtt_sketches[index].observe(outcome.latency)
        return ClusterReply(
            index, value=outcome.value, error=outcome.error, latency=outcome.latency
        )

    async def ainvoke(
        self,
        index: int,
        method: str,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        overlap: bool = False,
    ) -> Any:
        """One remote call against server ``index`` (errors raise, recorded)."""
        self._check_index(index)
        started = time.perf_counter()
        reply = await self._aoutcome(index, method, args, kwargs)
        self._advance_clock(time.perf_counter() - started, overlap)
        if reply.error is not None:
            raise reply.error
        return reply.value

    async def ainvoke_all(
        self,
        method: str,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        indices: Optional[Sequence[int]] = None,
        overlap: bool = False,
    ) -> List[ClusterReply]:
        """Scatter one call, gather every reply (failures captured)."""
        targets = list(range(len(self.servers)) if indices is None else indices)
        for index in targets:
            self._check_index(index)
        started = time.perf_counter()
        replies = await asyncio.gather(
            *(self._aoutcome(index, method, args, kwargs) for index in targets)
        )
        self._advance_clock(time.perf_counter() - started, overlap)
        return list(replies)

    async def ainvoke_quorum(
        self,
        method: str,
        args: Tuple[Any, ...] = (),
        k: int = 1,
        kwargs: Optional[Dict[str, Any]] = None,
        indices: Optional[Sequence[int]] = None,
        overlap: bool = False,
    ) -> List[ClusterReply]:
        """Scatter to every target, return at the k-th *arrived* success.

        Replies are admitted in real completion order; outstanding calls
        keep draining in the background (their stats land when they
        complete — see :meth:`drain`).  With hedging enabled and at least
        one observed RTT, a round still short of ``k`` successes after the
        targets' estimated ``hedge``-quantile RTT co-issues the call to
        every live non-target spare; whichever replies arrive first are
        admitted, regardless of who was hedged.
        """
        if k < 1:
            raise ValueError("quorum size must be at least 1, got %d" % k)
        targets = list(range(len(self.servers)) if indices is None else indices)
        for index in targets:
            self._check_index(index)
        if not targets:
            return []
        started = time.perf_counter()
        pending: Set["asyncio.Task"] = {
            asyncio.ensure_future(self._aoutcome(index, method, args, kwargs))
            for index in targets
        }
        admitted: List[ClusterReply] = []
        successes = 0
        hedge_deadline = self._hedge_deadline(targets)
        while successes < k and pending:
            wait_timeout: Optional[float] = None
            if hedge_deadline is not None:
                wait_timeout = max(0.0, hedge_deadline - (time.perf_counter() - started))
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED, timeout=wait_timeout
            )
            if not done:
                # The hedge timer fired before the quorum filled: co-issue
                # the call to every live spare, then keep waiting.
                hedge_deadline = None
                for spare in self._spare_targets(targets):
                    pending.add(
                        asyncio.ensure_future(
                            self._aoutcome(spare, method, args, kwargs)
                        )
                    )
                continue
            # Simultaneously-completed tasks carry no further arrival
            # information; order them by measured latency for stability.
            for task in sorted(done, key=lambda item: _arrival_key(item.result())):
                reply = task.result()
                admitted.append(reply)
                if reply.ok:
                    successes += 1
                    if successes >= k:
                        break
        if pending:
            with self._lock:
                self._background.update(pending)
            for task in pending:
                task.add_done_callback(self._background_done)
        self._advance_clock(time.perf_counter() - started, overlap)
        return admitted

    def _hedge_deadline(self, targets: Sequence[int]) -> Optional[float]:
        """Seconds after round start at which to co-issue spares (or None)."""
        if self._hedge_quantile is None:
            return None
        if not self._spare_targets(targets):
            return None  # nobody to hedge to
        estimates = [
            self.rtt_sketches[index].quantile(self._hedge_quantile)
            for index in targets
            if len(self.rtt_sketches[index])
        ]
        if not estimates:
            return None  # no observations yet: deadline unknowable
        return max(estimates)

    def _spare_targets(self, targets: Sequence[int]) -> List[int]:
        chosen = set(targets)
        with self._lock:
            down = set(self._down)
        return [
            index
            for index in range(len(self.servers))
            if index not in chosen and index not in down
        ]

    def _background_done(self, task: "asyncio.Task") -> None:
        with self._lock:
            self._background.discard(task)
        with suppress(asyncio.CancelledError):
            task.exception()  # outcome tasks never raise; silence warnings

    async def adrain(self) -> None:
        """Await every background-draining straggler (async side)."""
        while True:
            with self._lock:
                stragglers = list(self._background)
            if not stragglers:
                return
            await asyncio.gather(*stragglers, return_exceptions=True)

    async def aclose(self) -> None:
        """Drain stragglers and close every connection (async side)."""
        await self.adrain()
        for transport in self.transports:
            await transport.aclose()

    # ------------------------------------------------------------------
    # Sync surface (the ClusterTransport contract, bridged via LoopThread)
    # ------------------------------------------------------------------

    def _run(self, coroutine: Awaitable[T]) -> T:
        if self._loop_thread is None:
            self._loop_thread = LoopThread(self._loop_name)
        return self._loop_thread.run(coroutine)

    def invoke(
        self,
        index: int,
        method: str,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        overlap: bool = False,
    ) -> Any:
        """Sync :meth:`ainvoke` (errors raise, but are recorded)."""
        return self._run(self.ainvoke(index, method, args, kwargs, overlap))

    def invoke_all(
        self,
        method: str,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        indices: Optional[Sequence[int]] = None,
        overlap: bool = False,
    ) -> List[ClusterReply]:
        """Sync :meth:`ainvoke_all`."""
        return self._run(self.ainvoke_all(method, args, kwargs, indices, overlap))

    def invoke_quorum(
        self,
        method: str,
        args: Tuple[Any, ...] = (),
        k: int = 1,
        kwargs: Optional[Dict[str, Any]] = None,
        indices: Optional[Sequence[int]] = None,
        overlap: bool = False,
    ) -> List[ClusterReply]:
        """Sync :meth:`ainvoke_quorum` (admit-on-arrival first-k)."""
        return self._run(self.ainvoke_quorum(method, args, k, kwargs, indices, overlap))

    def drain(self) -> None:
        """Wait for every background-draining straggler to finish."""
        self._run(self.adrain())

    def close(self) -> None:
        """Drain, close every connection, and stop the owned loop (idempotent).

        Only for transports driven through the sync surface.  An
        async-native consumer (whose connections live on *its* event loop)
        must ``await aclose()`` on that loop instead — this method would
        touch those connections from the wrong loop.
        """
        if self._closed:
            return
        self._closed = True
        if self._loop_thread is None:
            # Never driven through the sync surface: any connections belong
            # to the async consumer's loop, and closing them is its job.
            return
        self._run(self.aclose())
        if self._owns_loop:
            self._loop_thread.close()

    # ------------------------------------------------------------------
    # Accounting (identical contract to the threaded ClusterTransport)
    # ------------------------------------------------------------------

    def stats_of(self, index: int) -> CallStats:
        """The per-server call statistics (drains stragglers first)."""
        self._check_index(index)
        self.drain()
        return self.transports[index].stats

    @property
    def per_server_stats(self) -> List[CallStats]:
        """Every server's stats, in server order (drained first)."""
        self.drain()
        return [transport.stats for transport in self.transports]

    def count_query(self, amount: int = 1) -> None:
        """Tick the query counter on every server's stats (drained first)."""
        self.drain()
        for transport in self.transports:
            transport.stats.count_query(amount)

    def aggregate_stats(self) -> CallStats:
        """A merged snapshot of every server's stats (queries = max, makespan
        = the measured round clock — same conventions as the threaded
        cluster transport)."""
        self.drain()
        merged = CallStats()
        for transport in self.transports:
            merged.merge(transport.stats)
        merged.queries = max(
            (transport.stats.queries for transport in self.transports), default=0
        )
        with self._lock:
            merged.makespan = self._clock
        return merged

    def reset_stats(self) -> None:
        """Zero every server's counters and the clock (between runs)."""
        self.drain()
        for transport in self.transports:
            transport.stats.reset()
        with self._lock:
            self._clock = 0.0
            self._round_start = 0.0

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        with self._lock:
            down = sorted(self._down)
        return "AsyncClusterTransport(servers=%d, down=%s)" % (len(self.servers), down)
