"""Socket servers: host one ``ServerFilter`` shard behind a real socket.

Three layers, each building on the previous:

* :class:`SocketServer` — an in-process daemon: bind, then serve every
  connection on **one** asyncio event loop running in a single background
  thread — no thread per socket, no thread per in-flight call — and
  dispatch framed requests against a target object (any object with public
  methods taking/returning codec-serialisable values — in practice a
  :class:`~repro.filters.server.ServerFilter`).  Each connection speaks
  either the legacy one-call-at-a-time framing or the multiplexed
  pipelined framing, auto-detected from the first four bytes (the
  :data:`~repro.rmi.socket.MUX_MAGIC` preamble reads as an impossibly
  large legacy length prefix, so the two cannot be confused).  Serves the
  ``__ping__`` health-check handshake and a graceful ``__shutdown__``.
* :class:`ServerProcess` — one server as a child *process*: spawns
  ``python -m repro.cli server`` (the ``repro-server`` entry point) on a
  saved database file, waits for the READY line announcing the bound port,
  health-checks the handshake, and supports both graceful shutdown and a
  hard :meth:`kill` (the fault-injection primitive: the process dies
  mid-call exactly like a crashed host).
* :class:`SocketCluster` — a whole deployment as subprocesses: writes each
  server's share table from a :class:`~repro.encode.deploy.ClusterDeployment`
  to disk, spawns ``n`` :class:`ServerProcess` es, health-checks them all,
  and hands out the :class:`~repro.rmi.cluster.ClusterTransport` that makes
  the existing :class:`~repro.filters.cluster.ClusterClient` run over real
  processes unmodified.

Dispatch discipline: only *public* methods of the target are reachable —
a request naming an underscore-prefixed or unknown attribute is answered
with a typed :class:`~repro.rmi.socket.UnknownRemoteMethodError`, never
executed.  Malformed or oversized request frames are answered with a
:class:`~repro.rmi.socket.WireProtocolError` description and the
connection is closed (framing sync is lost after a bad frame).  All
shutdown paths are idempotent.
"""

from __future__ import annotations

import asyncio
import os
import select
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.rmi.codec import Codec, CodecError
from repro.rmi.socket import (
    DEFAULT_MAX_FRAME_BYTES,
    DEFAULT_TIMEOUT,
    FRAME_HEADER_BYTES,
    MUX_MAGIC,
    OversizedFrameError,
    PING_METHOD,
    SHUTDOWN_METHOD,
    STATUS_ERROR,
    STATUS_OK,
    ServerAddress,
    ServerUnavailable,
    SocketTransport,
    UnknownRemoteMethodError,
    WireProtocolError,
    encode_exception,
    pack_mux_frame,
    read_mux_frame,
)

#: stdout line a spawned server prints once it accepts connections;
#: the parent parses ``port=``/``pid=`` from it (the handshake's first half)
READY_PREFIX = "REPRO-SERVER READY"

#: protocol revision announced by the ``__ping__`` handshake
PROTOCOL_VERSION = 1


class SocketServer:
    """Hosts one target object behind a TCP or Unix-domain socket.

    All connections are served by one asyncio event loop on a single
    background thread.  Requests on one connection are dispatched
    *sequentially* — the protocol has stateful, order-dependent endpoints
    (``open_queue``/``next_node``), and the pipelining win of the
    multiplexed framing is eliminating the per-request round-trip gap, not
    reordering a session — while separate connections interleave freely at
    every await point.  ``delay`` sleeps (asynchronously) before answering
    each request: deterministic injected per-server latency for benchmarks
    exercising first-k quorum reads on a real wire.

    ``max_session_inflight`` bounds how many of one *connection's* mux
    requests may be dispatched concurrently (``None`` = unlimited, the
    historical behaviour).  Past the bound the connection's read loop
    stops pulling frames until a dispatch completes — per-connection
    backpressure that keeps a pipelining hog from parking an unbounded
    task pile on the loop, without ever affecting other connections.
    Subclasses with their own admission control (the gateway's weighted
    fair queue) normally leave this off and gate in dispatch instead.
    """

    def __init__(
        self,
        target: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        codec: Optional[Codec] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        name: str = "repro-server",
        delay: float = 0.0,
        max_session_inflight: Optional[int] = None,
        method_table: Optional[Iterable[str]] = None,
    ):
        if delay < 0:
            raise ValueError("delay must be non-negative")
        if max_session_inflight is not None and max_session_inflight < 1:
            raise ValueError(
                "max_session_inflight must be at least 1 (or None), got %r"
                % (max_session_inflight,)
            )
        self.max_session_inflight = max_session_inflight
        #: when set, the dispatchable surface is exactly this allowlist
        #: (the fleet passes the declarative spec table from
        #: :mod:`repro.rmi.methods`, so an endpoint must be registered
        #: there to be wire-reachable); ``None`` keeps the historical
        #: duck-typed dispatch for ad-hoc targets.
        self.method_table: Optional[FrozenSet[str]] = (
            frozenset(method_table) if method_table is not None else None
        )
        self.target = target
        self.codec = codec or Codec()
        self.max_frame_bytes = max_frame_bytes
        self.name = name
        self.delay = float(delay)
        self._host = host
        self._port = port
        self._unix_path = unix_path
        self._listener: Optional[socket.socket] = None
        self._address: Optional[ServerAddress] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._shutdown = threading.Event()
        self._lock = threading.Lock()
        #: live connection writers; owned by the event loop thread
        self._writers: Set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> ServerAddress:
        """Where the server listens (only valid after :meth:`start`)."""
        if self._address is None:
            raise RuntimeError("server has not been started")
        return self._address

    def start(self) -> ServerAddress:
        """Bind, listen and start accepting in a background thread."""
        if self._listener is not None:
            return self.address
        if self._shutdown.is_set():
            raise RuntimeError("server was already shut down")
        if self._unix_path is not None:
            if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
                raise RuntimeError("unix sockets are not supported on this platform")
            _unlink_stale_unix_socket(self._unix_path)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                listener.bind(self._unix_path)
                listener.listen(16)
            except OSError:
                listener.close()
                raise
            self._address = ServerAddress(path=self._unix_path)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                listener.bind((self._host, self._port))
                listener.listen(16)
            except OSError:
                listener.close()
                raise
            bound_host, bound_port = listener.getsockname()[:2]
            self._address = ServerAddress(host=bound_host, port=bound_port)
        listener.setblocking(False)
        self._listener = listener
        started = threading.Event()
        failures: List[BaseException] = []
        self._loop_thread = threading.Thread(
            target=self._run_loop,
            args=(listener, started, failures),
            name="%s-loop" % self.name,
            daemon=True,
        )
        self._loop_thread.start()
        started.wait()
        if failures:
            self._listener = None
            self._loop_thread = None
            try:
                listener.close()
            except OSError:  # pragma: no cover
                pass
            raise failures[0]
        return self._address

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`close` or ``__shutdown__``.

        A ``__shutdown__`` that lands between :meth:`start` and this call
        (the daemon prints its READY line in that window) is a normal
        outcome, not an error: the wait returns immediately.
        """
        if self._listener is None and not self._shutdown.is_set():
            self.start()
        self._shutdown.wait()
        self.close()

    def close(self) -> None:
        """Stop accepting, drop every connection, join the loop thread.

        Idempotent: closing a closed (or never-started) server is a no-op,
        so CI teardown paths can call it unconditionally.
        """
        self._shutdown.set()
        self._signal_stop()
        thread, self._loop_thread = self._loop_thread, None
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)
        self._finalize()

    def _signal_stop(self) -> None:
        """Ask the event loop (from any thread) to wind the server down."""
        loop = self._loop
        stop = self._stop_event
        if loop is None or stop is None:
            return
        try:
            loop.call_soon_threadsafe(stop.set)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    def _finalize(self) -> None:
        """Release the listener socket and unix path (idempotent)."""
        with self._lock:
            listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover
                pass
        if self._unix_path is not None:
            # AF_UNIX paths are not reclaimed by the OS (SO_REUSEADDR
            # does not apply); leaving the file would make the next
            # bind on this path fail.
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass

    def __enter__(self) -> "SocketServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------

    def _run_loop(
        self,
        listener: socket.socket,
        started: threading.Event,
        failures: List[BaseException],
    ) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main(listener, started, failures))
        finally:
            try:
                pending = [task for task in asyncio.all_tasks(loop) if not task.done()]
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                asyncio.set_event_loop(None)
                loop.close()
                self._loop = None
                self._stop_event = None
                # The wire-shutdown path never calls close(); releasing the
                # listener here lets callers observe completed teardown.
                self._finalize()

    async def _main(
        self,
        listener: socket.socket,
        started: threading.Event,
        failures: List[BaseException],
    ) -> None:
        self._stop_event = asyncio.Event()
        try:
            if self._unix_path is not None:
                server = await asyncio.start_unix_server(
                    self._on_connection, sock=listener
                )
            else:
                server = await asyncio.start_server(self._on_connection, sock=listener)
        except Exception as exc:  # pragma: no cover - loop refuses the socket
            failures.append(exc)
            started.set()
            return
        started.set()
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            for writer in list(self._writers):
                _abort_writer(writer)
            await server.wait_closed()
            await self._on_loop_shutdown()

    async def _on_loop_shutdown(self) -> None:
        """Last words on the event loop before it winds down.

        Subclasses holding loop-bound resources beyond the connections (the
        gateway's upstream cluster transport) release them here — after the
        listener stopped accepting and every connection was dropped, while
        the loop still runs.
        """

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    def _make_session(self) -> Any:
        """Per-connection state, created as a connection opens.

        The base server is stateless per connection (the target object holds
        all state) and returns ``None``; the gateway binds each connection to
        its own client session here.
        """
        return None

    async def _release_session(self, session: Any) -> None:
        """Release per-connection state as the connection ends (hook)."""

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        session = self._make_session()
        try:
            await self._serve_connection(reader, writer, session)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass  # peer vanished mid-session: a normal end
        except asyncio.CancelledError:
            # Loop teardown cancels connection tasks that were still parked
            # on a read; ending the task *cancelled* would make the streams
            # machinery re-raise from its done-callback and spray tracebacks
            # through the closing loop.  Finish quietly instead.
            pass
        finally:
            self._writers.discard(writer)
            _abort_writer(writer)
            await self._release_session(session)

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        session: Any = None,
    ) -> None:
        """Detect the framing from the first four bytes and serve the session."""
        try:
            first = await reader.readexactly(FRAME_HEADER_BYTES)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return  # connected and went away: a normal non-session
            await self._send_legacy_error(
                writer,
                WireProtocolError(
                    "connection closed with %d of %d frame header bytes outstanding"
                    % (FRAME_HEADER_BYTES - len(exc.partial), FRAME_HEADER_BYTES)
                ),
            )
            return
        if first == MUX_MAGIC:
            await self._serve_mux(reader, writer, session)
        else:
            await self._serve_legacy(reader, writer, first, session)

    async def _serve_legacy(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        header: bytes,
        session: Any = None,
    ) -> None:
        """One call at a time over plain length-prefixed frames."""
        while True:
            size = int.from_bytes(header, "big")
            if size > self.max_frame_bytes:
                # Oversized request: answer typed, then drop the connection —
                # framing sync is unrecoverable.
                await self._send_legacy_error(
                    writer,
                    WireProtocolError(
                        "peer announced a %d-byte frame (limit %d)"
                        % (size, self.max_frame_bytes)
                    ),
                )
                return
            try:
                frame = await reader.readexactly(size)
            except asyncio.IncompleteReadError as exc:
                await self._send_legacy_error(
                    writer,
                    WireProtocolError(
                        "connection closed with %d of %d frame body bytes outstanding"
                        % (size - len(exc.partial), size)
                    ),
                )
                return
            response, stop_after = await self._respond(frame, session)
            if len(response) > self.max_frame_bytes:
                # The encoded result exceeds the frame limit.  Nothing was
                # written, so framing is intact: answer typed, keep serving.
                await self._send_legacy_error(
                    writer,
                    WireProtocolError(
                        "frame of %d bytes exceeds the %d-byte limit"
                        % (len(response), self.max_frame_bytes)
                    ),
                )
            else:
                writer.write(len(response).to_bytes(FRAME_HEADER_BYTES, "big") + response)
                await writer.drain()
            if stop_after:
                self._shutdown.set()
                self._signal_stop()
                return
            try:
                header = await reader.readexactly(FRAME_HEADER_BYTES)
            except asyncio.IncompleteReadError as exc:
                if not exc.partial:
                    return  # clean EOF between frames
                await self._send_legacy_error(
                    writer,
                    WireProtocolError(
                        "connection closed with %d of %d frame header bytes outstanding"
                        % (FRAME_HEADER_BYTES - len(exc.partial), FRAME_HEADER_BYTES)
                    ),
                )
                return

    async def _serve_mux(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        session: Any = None,
    ) -> None:
        """Pipelined id-tagged frames over one connection.

        Every request is dispatched as its own task the moment its frame
        arrives, so slow calls — an injected service delay, a dispatch that
        awaits upstream IO — overlap instead of queueing behind each other.
        Replies carry the request's id and go out in *completion* order; the
        mux client matches them by id, so reordering is part of the
        contract.  Only the reply writes are serialised (one frame at a
        time).  A ``__shutdown__`` stops the read loop once answered;
        dispatches already in flight are drained before the server stops.
        """
        write_lock = asyncio.Lock()
        stopping = asyncio.Event()
        inflight: Set["asyncio.Task[None]"] = set()
        limit = (
            asyncio.Semaphore(self.max_session_inflight)
            if self.max_session_inflight is not None
            else None
        )

        async def _dispatch(call_id: int, frame: bytes) -> None:
            try:
                response, stop_after = await self._respond(frame, session)
            finally:
                if limit is not None:
                    limit.release()
            try:
                if len(response) > self.max_frame_bytes:
                    async with write_lock:
                        await self._send_mux_error(
                            writer,
                            call_id,
                            WireProtocolError(
                                "frame of %d bytes exceeds the %d-byte limit"
                                % (len(response), self.max_frame_bytes)
                            ),
                        )
                else:
                    async with write_lock:
                        writer.write(
                            pack_mux_frame(call_id, response, self.max_frame_bytes)
                        )
                        await writer.drain()
            except (ConnectionError, OSError):
                pass  # peer gone: the read loop is ending too
            finally:
                if stop_after:
                    stopping.set()

        stop_wait = asyncio.ensure_future(stopping.wait())
        try:
            while not stopping.is_set():
                read = asyncio.ensure_future(
                    read_mux_frame(reader, self.max_frame_bytes)
                )
                await asyncio.wait({read, stop_wait}, return_when=asyncio.FIRST_COMPLETED)
                if not read.done():
                    # a __shutdown__ reply went out while we were blocked
                    # reading: stop accepting, drop the half-read frame
                    read.cancel()
                    await asyncio.gather(read, return_exceptions=True)
                    break
                try:
                    item = read.result()
                except OversizedFrameError as exc:
                    # The id is known from the header: answer that call
                    # typed, then drop — the body was never read, so sync
                    # is lost.
                    if exc.call_id is not None:
                        async with write_lock:
                            await self._send_mux_error(writer, exc.call_id, exc)
                    return
                except WireProtocolError:
                    return  # truncated mid-frame: nothing sane left to answer
                if item is None:
                    return  # clean EOF between frames
                call_id, frame = item
                if limit is not None:
                    # Backpressure: past the per-connection bound, stop
                    # pulling frames until a dispatch completes.  The
                    # wait always resolves — every counted dispatch ends.
                    await limit.acquire()
                task = asyncio.ensure_future(_dispatch(call_id, frame))
                inflight.add(task)
                task.add_done_callback(inflight.discard)
        finally:
            stop_wait.cancel()
            # Half-closed peers still read replies: finish every accepted
            # request before the connection (or the server) goes down.
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
            if stopping.is_set():
                self._shutdown.set()
                self._signal_stop()

    async def _respond(self, frame: bytes, session: Any = None) -> Tuple[bytes, bool]:
        """Dispatch one request frame (after the optional injected delay)."""
        if self.delay:
            await asyncio.sleep(self.delay)
        return self._handle(frame)

    async def _send_legacy_error(
        self, writer: asyncio.StreamWriter, error: BaseException
    ) -> None:
        # The error description must go out even when the configured frame
        # limit is tiny (it is what rejected the request).
        payload = STATUS_ERROR + self.codec.encode(encode_exception(error))
        if len(payload) > max(self.max_frame_bytes, 4096):  # pragma: no cover
            return
        try:
            writer.write(len(payload).to_bytes(FRAME_HEADER_BYTES, "big") + payload)
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - peer gone
            pass

    async def _send_mux_error(
        self, writer: asyncio.StreamWriter, call_id: int, error: BaseException
    ) -> None:
        payload = STATUS_ERROR + self.codec.encode(encode_exception(error))
        try:
            writer.write(pack_mux_frame(call_id, payload, max(self.max_frame_bytes, 4096)))
            await writer.drain()
        except (ConnectionError, OSError, WireProtocolError):  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _handle(self, frame: bytes) -> "tuple[bytes, bool]":
        """Decode one request, run it, encode one response frame payload."""
        try:
            request = self.codec.decode(frame)
        except CodecError as exc:
            return self._error_payload(WireProtocolError("malformed request: %s" % exc)), False
        if not isinstance(request, dict) or not isinstance(request.get("method"), str):
            return (
                self._error_payload(
                    WireProtocolError("request must be a {method, args, kwargs} dictionary")
                ),
                False,
            )
        method = request["method"]
        args = request.get("args") or []
        kwargs = request.get("kwargs") or {}
        if method == PING_METHOD:
            return STATUS_OK + self.codec.encode(self._identity()), False
        if method == SHUTDOWN_METHOD:
            return STATUS_OK + self.codec.encode(True), True
        if method.startswith("_") or (
            self.method_table is not None and method not in self.method_table
        ):
            return (
                self._error_payload(
                    UnknownRemoteMethodError("method %r is not exported" % method)
                ),
                False,
            )
        handler = getattr(self.target, method, None)
        if not callable(handler):
            return (
                self._error_payload(
                    UnknownRemoteMethodError(
                        "%s exports no method %r" % (type(self.target).__name__, method)
                    )
                ),
                False,
            )
        try:
            result = handler(*args, **kwargs)
        except Exception as exc:
            return self._error_payload(exc), False
        try:
            return STATUS_OK + self.codec.encode(result), False
        except CodecError as exc:
            return self._error_payload(exc), False

    def _error_payload(self, error: BaseException) -> bytes:
        return STATUS_ERROR + self.codec.encode(encode_exception(error))

    def _identity(self) -> Dict[str, Any]:
        """The ``__ping__`` reply: who is serving, over which protocol."""
        return {
            "server": self.name,
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "target": type(self.target).__name__,
        }

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        where = str(self._address) if self._address is not None else "unbound"
        return "SocketServer(%s, %s)" % (type(self.target).__name__, where)


def _unlink_stale_unix_socket(path: str) -> None:
    """Remove a leftover socket file only if no server is answering on it.

    A crashed server (close() never ran) leaves its path behind; binding
    would fail even though nothing is listening.  A *live* server's path is
    left alone — the bind then fails loudly instead of hijacking it.
    """
    if not os.path.exists(path):
        return
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        probe.settimeout(0.5)
        probe.connect(path)
    except OSError:
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - raced with another unlink
            pass
    else:
        pass  # someone is serving: let bind() report the conflict
    finally:
        probe.close()


def _abort_writer(writer: asyncio.StreamWriter) -> None:
    """Drop one connection immediately (idempotent, exception-quiet)."""
    try:
        transport = writer.transport
        if transport is not None:
            transport.abort()
    except (RuntimeError, OSError):  # pragma: no cover - already closed
        pass


# ----------------------------------------------------------------------
# Subprocess server
# ----------------------------------------------------------------------


def format_ready_line(address: ServerAddress, nodes: int) -> str:
    """The line a spawned server prints once it accepts connections."""
    if address.is_unix:
        return "%s unix=%s pid=%d nodes=%d" % (READY_PREFIX, address.path, os.getpid(), nodes)
    return "%s port=%d pid=%d nodes=%d" % (READY_PREFIX, address.port, os.getpid(), nodes)


def _parse_ready_line(line: str) -> Dict[str, str]:
    fields = {}
    for token in line[len(READY_PREFIX):].split():
        if "=" in token:
            key, value = token.split("=", 1)
            fields[key] = value
    return fields


class ServerProcess:
    """One share server running as a child process of this interpreter.

    The child runs ``python -m repro.cli server`` against a database file
    written with :meth:`repro.storage.database.Database.save`; the parent
    parses the READY line for the bound port, then completes the handshake
    with a ``__ping__`` over the wire.  ``kill()`` is the fault-injection
    primitive — SIGKILL, no goodbye, exactly a crashed host — while
    :meth:`shutdown` asks the server to stop via ``__shutdown__`` before
    escalating.  Both are idempotent.
    """

    def __init__(
        self,
        database_path: str,
        p: int,
        e: int = 1,
        host: str = "127.0.0.1",
        python: Optional[str] = None,
        startup_timeout: float = 30.0,
        name: Optional[str] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        delay: float = 0.0,
        chaos: bool = False,
    ):
        self.database_path = database_path
        self.p = p
        self.e = e
        self.host = host
        self.python = python or sys.executable
        self.startup_timeout = startup_timeout
        self.name = name or os.path.basename(database_path)
        self.max_frame_bytes = max_frame_bytes
        self.delay = delay
        self.chaos = chaos
        self.process: Optional[subprocess.Popen] = None
        self.address: Optional[ServerAddress] = None
        self.pid: Optional[int] = None

    def launch(self) -> None:
        """Spawn the child without waiting for it (see :meth:`await_ready`).

        The child is started with a piped stdin and ``--parent-watch``: it
        reads that pipe and shuts itself down on EOF, so even a SIGKILLed
        or crashed parent (whose pipe ends close with it) cannot leave an
        orphan server holding its port and share table.
        """
        if self.process is not None:
            raise RuntimeError("server process %s already started" % self.name)
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root if not existing else src_root + os.pathsep + existing
        self.process = subprocess.Popen(
            self._command(), stdout=subprocess.PIPE, stdin=subprocess.PIPE, env=env
        )

    def _command(self) -> List[str]:
        """The child's argv (hook: the gateway daemon overrides this)."""
        command = [
            self.python, "-m", "repro.cli", "server",
            "--db", self.database_path,
            "--p", str(self.p), "--e", str(self.e),
            "--host", self.host, "--port", "0",
            "--max-frame-bytes", str(self.max_frame_bytes),
            "--parent-watch",
        ]
        if self.delay:
            command.extend(["--delay", repr(self.delay)])
        if self.chaos:
            command.append("--chaos")
        return command

    def await_ready(self) -> ServerAddress:
        """Wait for the READY line (bounded); kill the child on any failure."""
        if self.process is None:
            raise RuntimeError("server process %s was never launched" % self.name)
        try:
            line = self._await_ready_line()
            fields = _parse_ready_line(line)
            if "unix" in fields:
                self.address = ServerAddress(path=fields["unix"])
            elif "port" in fields:
                self.address = ServerAddress(host=self.host, port=int(fields["port"]))
            else:
                raise ServerUnavailable(
                    "server %s printed a malformed READY line: %r" % (self.name, line)
                )
            self.pid = int(fields.get("pid", self.process.pid))
        except Exception:
            # Never leave a half-started child running (and bound to a
            # port) behind a failed handshake.
            self.kill()
            raise
        return self.address

    def start(self) -> ServerAddress:
        """Spawn the child and wait for its READY line (bounded)."""
        self.launch()
        return self.await_ready()

    def _await_ready_line(self) -> str:
        """Read child stdout until the READY line, the deadline, or death.

        Reads the raw pipe fd directly (``os.read`` after ``select``) —
        mixing ``select`` with a buffered file object would lose lines that
        are already sitting in the Python-level buffer, stalling the wait
        even though the READY line has arrived.
        """
        assert self.process is not None and self.process.stdout is not None
        deadline = time.monotonic() + self.startup_timeout
        fd = self.process.stdout.fileno()
        buffered = b""
        while True:
            while b"\n" in buffered:
                line, buffered = buffered.split(b"\n", 1)
                text = line.decode("utf-8", "replace").strip()
                if text.startswith(READY_PREFIX):
                    return text
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServerUnavailable(
                    "server %s did not become ready within %.1fs"
                    % (self.name, self.startup_timeout)
                )
            ready, _, _ = select.select([fd], [], [], min(remaining, 0.5))
            if not ready:
                if self.process.poll() is not None:
                    raise ServerUnavailable(
                        "server %s exited with code %s before becoming ready"
                        % (self.name, self.process.returncode)
                    )
                continue
            chunk = os.read(fd, 4096)
            if not chunk:
                raise ServerUnavailable(
                    "server %s closed stdout (exit code %s) before becoming ready"
                    % (self.name, self.process.poll())
                )
            buffered += chunk

    # ------------------------------------------------------------------
    # Introspection and control
    # ------------------------------------------------------------------

    def transport(self, **kwargs: Any) -> SocketTransport:
        """A fresh client transport pointed at this server."""
        if self.address is None:
            raise RuntimeError("server process %s is not running" % self.name)
        return SocketTransport(self.address, **kwargs)

    def ping(self, timeout: float = 5.0) -> Dict[str, Any]:
        """The health-check handshake (raises :class:`ServerUnavailable`)."""
        transport = self.transport(timeout=timeout)
        try:
            return transport.ping()
        finally:
            transport.close()

    def is_alive(self) -> bool:
        """Whether the child process is still running."""
        return self.process is not None and self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL the child — the fault-injection primitive (idempotent)."""
        process = self.process
        if process is None:
            return
        if process.poll() is None:
            process.kill()
        process.wait()
        self._release_pipes()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Graceful stop: ``__shutdown__`` over the wire, then escalate.

        Idempotent; safe to call on a server that was already killed.
        """
        process = self.process
        if process is None:
            return
        if process.poll() is None and self.address is not None:
            transport = SocketTransport(self.address, timeout=timeout, connect_retries=1)
            try:
                transport.invoke(None, SHUTDOWN_METHOD)
            except (ConnectionError, RuntimeError):
                pass
            finally:
                transport.close()
            try:
                process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                pass
        if process.poll() is None:
            process.terminate()
            try:
                process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        self._release_pipes()

    def _release_pipes(self) -> None:
        process = self.process
        if process is None:
            return
        for pipe in (process.stdout, process.stdin):
            if pipe is not None:
                try:
                    pipe.close()
                except OSError:  # pragma: no cover - broken pipe on close
                    pass

    def __enter__(self) -> "ServerProcess":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "ServerProcess(%s, %s, alive=%s)" % (
            self.name, self.address, self.is_alive()
        )


# ----------------------------------------------------------------------
# Cluster launcher
# ----------------------------------------------------------------------


class SocketCluster:
    """An n-server share deployment running as real subprocesses.

    Created via :meth:`from_deployment`: each server's node table is saved
    to ``directory`` and served by one :class:`ServerProcess`; every server
    is health-checked before the constructor returns (and every already-
    spawned server is torn down if any of them fails to come up).  One
    :class:`SocketTransport` per server — each with its own
    :class:`~repro.rmi.stats.CallStats` — feeds
    :meth:`cluster_transport`, which the existing cluster client stack
    consumes unchanged.

    :meth:`kill_server` maps the transport layer's down/fault semantics
    onto real processes: the victim dies mid-call with SIGKILL and every
    subsequent call to it surfaces as a recorded
    :class:`~repro.rmi.socket.ServerUnavailable` (a ``ConnectionError``,
    so quorum completion and fail-over engage exactly as for a simulated
    down server).  :meth:`shutdown` is idempotent and reclaims everything:
    client connections, server processes, and the on-disk tables when the
    cluster owns its directory.
    """

    def __init__(
        self,
        processes: Sequence[ServerProcess],
        transports: Sequence[SocketTransport],
        directory: Optional[str] = None,
        owns_directory: bool = False,
    ):
        if len(processes) != len(transports):
            raise ValueError(
                "%d processes but %d transports" % (len(processes), len(transports))
            )
        self.processes = list(processes)
        self.transports = list(transports)
        self.directory = directory
        self._owns_directory = owns_directory
        self._closed = False
        #: table-generation counter per healed slot (names replacement files)
        self._generations: Dict[int, int] = {}

    @classmethod
    def from_deployment(
        cls,
        deployment: Any,
        directory: Optional[str] = None,
        startup_timeout: float = 30.0,
        timeout: float = DEFAULT_TIMEOUT,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        delay: float = 0.0,
        chaos: bool = False,
    ) -> "SocketCluster":
        """Launch one subprocess server per share table of ``deployment``.

        ``delay`` injects a per-request service delay into every child (a
        modeled network/IO round trip) — load benchmarks use it to make
        queries IO-bound on an otherwise zero-latency loopback.  ``chaos``
        launches every child with the ``corrupt_share`` fault injector
        exported (chaos benches only).
        """
        owns_directory = directory is None
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-socket-cluster-")
        field = deployment.ring.field
        processes: List[ServerProcess] = []
        transports: List[SocketTransport] = []
        try:
            # Launch every child first (Popen does not block), then await
            # the READY lines: fleet startup costs the slowest child's boot
            # instead of the sum over all n.
            for index, database in enumerate(deployment.databases):
                path = os.path.join(directory, "server-%d.json" % index)
                database.save(path)
                process = ServerProcess(
                    path,
                    p=field.characteristic,
                    e=field.degree,
                    startup_timeout=startup_timeout,
                    name="server-%d" % index,
                    max_frame_bytes=max_frame_bytes,
                    delay=delay,
                    chaos=chaos,
                )
                processes.append(process)
                process.launch()
            for process in processes:
                process.await_ready()
                process.ping(timeout=timeout)
                # Two dial attempts, not the lone-transport default of four:
                # the cluster has quorum completion and fail-over for dead
                # peers, so burning backoff per call on a crashed server
                # would only stretch every round's tail.
                transports.append(
                    process.transport(
                        timeout=timeout,
                        max_frame_bytes=max_frame_bytes,
                        connect_retries=2,
                    )
                )
        except Exception:
            for process in processes:
                process.kill()
            if owns_directory:
                shutil.rmtree(directory, ignore_errors=True)
            raise
        return cls(processes, transports, directory=directory, owns_directory=owns_directory)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def num_servers(self) -> int:
        """Number of server processes in the cluster."""
        return len(self.processes)

    @property
    def addresses(self) -> List[ServerAddress]:
        """Every server's listen address, in server order."""
        return [transport.address for transport in self.transports]

    def cluster_transport(
        self,
        concurrency: bool = True,
        max_workers: Optional[int] = None,
        round_overhead: float = 0.0,
    ) -> "ClusterTransport":
        """The scatter-gather transport over this cluster's socket peers."""
        from repro.rmi.cluster import ClusterTransport

        return ClusterTransport(
            servers=self.addresses,
            transports=self.transports,
            concurrency=concurrency,
            max_workers=max_workers,
            round_overhead=round_overhead,
        )

    # ------------------------------------------------------------------
    # Fault injection and teardown
    # ------------------------------------------------------------------

    def kill_server(self, index: int) -> None:
        """SIGKILL one server — real, wire-level fault injection."""
        if not 0 <= index < len(self.processes):
            raise IndexError(
                "server index %d out of range for %d servers" % (index, len(self.processes))
            )
        self.processes[index].kill()
        # Pooled connections to the dead peer would only fail one call
        # later; drop them now so the very next call sees the crash.
        self.transports[index].close()

    def spawn_replacement(self, index: int, database: Any) -> SocketTransport:
        """Boot a fresh server for one slot from a re-derived table (heal path).

        Saves ``database`` beside the original slice as
        ``server-<index>-gen<g>.json`` (the original file stays pristine so
        a healed table can be byte-compared against it), spawns a
        replacement :class:`ServerProcess` with the old child's parameters,
        health-checks it over the wire, then retires whatever is left of
        the old child and swaps the new process and a fresh transport into
        this cluster's slot.  Returns the new transport (for
        :meth:`~repro.rmi.cluster.ClusterTransport.mark_healed`).  A failed
        boot leaves the slot untouched.
        """
        if not 0 <= index < len(self.processes):
            raise IndexError(
                "server index %d out of range for %d servers" % (index, len(self.processes))
            )
        old = self.processes[index]
        generation = self._generations.get(index, 0) + 1
        directory = self.directory
        if directory is None:  # pragma: no cover - manually assembled cluster
            directory = tempfile.mkdtemp(prefix="repro-heal-")
            self.directory = directory
            self._owns_directory = True
        path = os.path.join(directory, "server-%d-gen%d.json" % (index, generation))
        database.save(path)
        replacement = ServerProcess(
            path,
            p=old.p,
            e=old.e,
            host=old.host,
            python=old.python,
            startup_timeout=old.startup_timeout,
            name="server-%d-gen%d" % (index, generation),
            max_frame_bytes=old.max_frame_bytes,
            delay=old.delay,
            chaos=old.chaos,
        )
        try:
            replacement.start()
            replacement.ping()
            transport = replacement.transport(
                timeout=self.transports[index].timeout,
                max_frame_bytes=old.max_frame_bytes,
                connect_retries=2,
            )
        except Exception:
            replacement.kill()
            raise
        self._generations[index] = generation
        # Retire the old child (idempotent against an already-dead one) and
        # drop its pooled connections before the slot changes hands.
        old.kill()
        self.transports[index].close()
        self.processes[index] = replacement
        self.transports[index] = transport
        return transport

    def shutdown(self) -> None:
        """Tear everything down (idempotent): connections, processes, files."""
        if self._closed:
            return
        self._closed = True
        for transport in self.transports:
            transport.close()
        for process in self.processes:
            process.shutdown()
        if self._owns_directory and self.directory is not None:
            shutil.rmtree(self.directory, ignore_errors=True)

    close = shutdown

    def __enter__(self) -> "SocketCluster":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        alive = sum(1 for process in self.processes if process.is_alive())
        return "SocketCluster(servers=%d, alive=%d)" % (len(self.processes), alive)
