"""RMI-style remote proxies and a name registry."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.rmi.transport import SimulatedTransport


class RemoteProxy:
    """Client-side stub for a server object.

    Attribute access produces a callable that routes the invocation through
    the transport, so client code reads exactly as if it held the real
    object — the same transparency RMI stubs give — while every call is
    counted and its payload serialised.
    """

    def __init__(self, target: Any, transport: SimulatedTransport):
        # Double-underscore attributes avoid clashes with proxied method names.
        object.__setattr__(self, "_RemoteProxy__target", target)
        object.__setattr__(self, "_RemoteProxy__transport", transport)
        # Method stubs are built once per name: the batched hot path calls
        # the same few endpoints thousands of times per experiment run.
        object.__setattr__(self, "_RemoteProxy__stubs", {})

    def __getattr__(self, name: str) -> Callable[..., Any]:
        if name.startswith("__"):
            raise AttributeError(name)
        stubs = object.__getattribute__(self, "_RemoteProxy__stubs")
        cached = stubs.get(name)
        if cached is not None:
            return cached
        target = object.__getattribute__(self, "_RemoteProxy__target")
        transport = object.__getattribute__(self, "_RemoteProxy__transport")
        if not hasattr(target, name):
            raise AttributeError(
                "remote object %r has no method %r" % (type(target).__name__, name)
            )

        def remote_call(*args: Any, **kwargs: Any) -> Any:
            return transport.invoke(target, name, args, kwargs)

        remote_call.__name__ = name
        stubs[name] = remote_call
        return remote_call

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        target = object.__getattribute__(self, "_RemoteProxy__target")
        return "RemoteProxy(%s)" % type(target).__name__


class Registry:
    """A minimal RMI registry: bind server objects to names, look up stubs."""

    def __init__(self, transport: Optional[SimulatedTransport] = None):
        self.transport = transport or SimulatedTransport()
        self._bindings: Dict[str, Any] = {}

    def bind(self, name: str, target: Any) -> None:
        """Register a server object under ``name`` (error when taken)."""
        if name in self._bindings:
            raise KeyError("name %r is already bound" % name)
        self._bindings[name] = target

    def rebind(self, name: str, target: Any) -> None:
        """Register or replace a binding."""
        self._bindings[name] = target

    def lookup(self, name: str) -> RemoteProxy:
        """Return a stub for the object bound under ``name``."""
        if name not in self._bindings:
            raise KeyError("nothing bound under %r" % name)
        return RemoteProxy(self._bindings[name], self.transport)

    def unbind(self, name: str) -> None:
        """Remove a binding."""
        if name not in self._bindings:
            raise KeyError("nothing bound under %r" % name)
        del self._bindings[name]

    def names(self):
        """All bound names."""
        return list(self._bindings)
