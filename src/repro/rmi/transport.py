"""Simulated transport between the client and server halves of the filter.

Batch protocol and counter semantics
------------------------------------

The transport is method-agnostic: the batched endpoints of
:class:`~repro.filters.server.ServerFilter` (``node_infos``,
``children_of_many``, ``descendants_of_many``, ``evaluate_batch``,
``fetch_shares_batch``) travel through :meth:`SimulatedTransport.invoke`
exactly like the per-node primitives — one invocation, one request payload,
one response payload — so :class:`~repro.rmi.stats.CallStats` directly shows
the batching win: a batched query step contributes one ``calls`` tick and one
(larger) payload where the per-node path contributed one tick per candidate.

Every invocation is recorded, *including failed ones*: when the server method
raises (or its result cannot be encoded), the call is still counted with the
request size, whatever response bytes were produced, and ``error=True`` — so
experiment reports never under-count the traffic of a flaky run.  The query
layer additionally bumps ``CallStats.queries`` once per query, which yields
the derived calls-per-query / bytes-per-query figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.rmi.codec import Codec
from repro.rmi.stats import CallStats


@dataclass(frozen=True)
class CallOutcome:
    """One finished invocation: its value or error, plus the modeled cost.

    The scatter-gather layer needs the per-call modeled latency *alongside*
    the result (to order replies by modeled arrival time and to charge the
    makespan clock), which the exception-based :meth:`SimulatedTransport.invoke`
    surface cannot deliver — hence this richer return shape.
    """

    #: decoded return value (``None`` when the call failed)
    value: Any = None
    #: the exception the server method (or response encoding) raised
    error: Optional[BaseException] = None
    #: modeled latency of this call (per-call + per-byte terms)
    latency: float = 0.0
    #: encoded request payload size
    request_bytes: int = 0
    #: encoded response payload size
    response_bytes: int = 0

    @property
    def ok(self) -> bool:
        """Whether the call succeeded."""
        return self.error is None


class SimulatedTransport:
    """Carries encoded request/response payloads between two endpoints.

    Every invocation is round-tripped through the :class:`Codec` so only
    serialisable data crosses the boundary (just like RMI's marshalling), and
    byte counts reflect real payload sizes.  A latency model
    ``latency = per_call + per_byte * payload_bytes`` is accumulated in the
    stats rather than slept, so experiments can report a simulated network
    cost without making the test suite slow.
    """

    #: latencies are modeled, not measured — the scatter-gather layer keys
    #: its admission mode off this flag (modeled arrival order with the
    #: lower-bound overtake proof, instead of admit-on-arrival)
    measured = False

    def __init__(
        self,
        per_call_latency: float = 0.0,
        per_byte_latency: float = 0.0,
        codec: Optional[Codec] = None,
        stats: Optional[CallStats] = None,
    ):
        if per_call_latency < 0 or per_byte_latency < 0:
            raise ValueError("latencies must be non-negative")
        self.per_call_latency = per_call_latency
        self.per_byte_latency = per_byte_latency
        self.codec = codec or Codec()
        self.stats = stats or CallStats()

    def invoke(
        self,
        target: Any,
        method: str,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Perform one remote call against ``target``.

        The positional/keyword arguments are encoded, "shipped", decoded and
        applied to ``target.method``; the return value travels back the same
        way.  Exceptions raised by the server method propagate to the caller
        (RMI wraps them; the distinction does not matter for the experiments)
        — but the call is recorded in the stats either way, with
        ``error=True`` when it failed.
        """
        outcome = self.invoke_detailed(target, method, args, kwargs)
        if outcome.error is not None:
            raise outcome.error
        return outcome.value

    def invoke_detailed(
        self,
        target: Any,
        method: str,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> CallOutcome:
        """Like :meth:`invoke`, but captures the error and the modeled cost.

        Server-side exceptions (and response-encoding failures) land in the
        returned :class:`CallOutcome` instead of propagating; the call is
        recorded in the stats either way.  Request-encoding failures — a bug
        on the *caller's* side — still raise directly, exactly as before.
        """
        kwargs = kwargs or {}
        handler: Callable[..., Any] = getattr(target, method)
        request_payload = self.codec.encode({"method": method, "args": list(args), "kwargs": kwargs})
        decoded_request = self.codec.decode(request_payload)
        response_payload = b""
        value: Any = None
        error: Optional[BaseException] = None
        try:
            result = handler(*decoded_request["args"], **decoded_request["kwargs"])
            response_payload = self.codec.encode(result)
            value = self.codec.decode(response_payload)
        except Exception as exc:
            error = exc
        latency = self.per_call_latency + self.per_byte_latency * (
            len(request_payload) + len(response_payload)
        )
        self.stats.record(
            method,
            len(request_payload),
            len(response_payload),
            latency,
            error=error is not None,
        )
        return CallOutcome(
            value=value,
            error=error,
            latency=latency,
            request_bytes=len(request_payload),
            response_bytes=len(response_payload),
        )
