"""Simulated transport between the client and server halves of the filter."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.rmi.codec import Codec
from repro.rmi.stats import CallStats


class SimulatedTransport:
    """Carries encoded request/response payloads between two endpoints.

    Every invocation is round-tripped through the :class:`Codec` so only
    serialisable data crosses the boundary (just like RMI's marshalling), and
    byte counts reflect real payload sizes.  A latency model
    ``latency = per_call + per_byte * payload_bytes`` is accumulated in the
    stats rather than slept, so experiments can report a simulated network
    cost without making the test suite slow.
    """

    def __init__(
        self,
        per_call_latency: float = 0.0,
        per_byte_latency: float = 0.0,
        codec: Optional[Codec] = None,
        stats: Optional[CallStats] = None,
    ):
        if per_call_latency < 0 or per_byte_latency < 0:
            raise ValueError("latencies must be non-negative")
        self.per_call_latency = per_call_latency
        self.per_byte_latency = per_byte_latency
        self.codec = codec or Codec()
        self.stats = stats or CallStats()

    def invoke(
        self,
        target: Any,
        method: str,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Perform one remote call against ``target``.

        The positional/keyword arguments are encoded, "shipped", decoded and
        applied to ``target.method``; the return value travels back the same
        way.  Exceptions raised by the server method propagate to the caller
        (RMI wraps them; the distinction does not matter for the experiments).
        """
        kwargs = kwargs or {}
        handler: Callable[..., Any] = getattr(target, method)
        request_payload = self.codec.encode({"method": method, "args": list(args), "kwargs": kwargs})
        decoded_request = self.codec.decode(request_payload)
        result = handler(*decoded_request["args"], **decoded_request["kwargs"])
        response_payload = self.codec.encode(result)
        decoded_result = self.codec.decode(response_payload)
        latency = self.per_call_latency + self.per_byte_latency * (
            len(request_payload) + len(response_payload)
        )
        self.stats.record(method, len(request_payload), len(response_payload), latency)
        return decoded_result
