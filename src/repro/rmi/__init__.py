"""Client/server remote-invocation substrate (the prototype's Java RMI stand-in).

The prototype splits the filter across a thin client and a big server that
talk over Java RMI (section 5.2).  Rebuilding a JVM RMI stack is neither
possible offline nor necessary: what the experiments depend on is the *call
boundary* — every filter operation is one remote round trip whose arguments
and results must be serialisable, and whose count/byte volume determine the
communication cost of a query.

This package provides that boundary in-process:

* :class:`~repro.rmi.codec.Codec` — a small, self-contained binary
  serialisation format for the value types the filters exchange,
* :class:`~repro.rmi.transport.SimulatedTransport` — a channel that counts
  calls and bytes and can model per-call latency,
* :class:`~repro.rmi.cluster.ClusterTransport` — the concurrent
  scatter-gather layer over n such channels: thread-pool ``invoke_all``,
  first-k ``invoke_quorum`` reads and a makespan clock that models the
  wall-clock of each round as its critical path,
* :class:`~repro.rmi.proxy.RemoteProxy` / :class:`~repro.rmi.proxy.Registry`
  — RMI-style stubs: the client holds a proxy, every method call is encoded,
  shipped through the transport, executed on the server object and the result
  shipped back,
* :class:`~repro.rmi.stats.CallStats` — the per-session accounting the
  benchmark harness reads out.

And the same boundary over a *real* wire (``transport="socket"`` on the
facade): :class:`~repro.rmi.socket.SocketTransport` speaks a length-prefixed
framed protocol over TCP or Unix sockets — same codec, same
``invoke``/``invoke_detailed`` surface, measured latency and bytes — against
a :class:`~repro.rmi.server.SocketServer` daemon;
:class:`~repro.rmi.server.ServerProcess` and
:class:`~repro.rmi.server.SocketCluster` run one server (or a whole
deployment) as child processes with health-check handshake, graceful
shutdown and kill-based fault injection.
"""

from repro.rmi.cluster import (
    ClusterReply,
    ClusterTransport,
    InjectedFaultError,
    ServerDownError,
)
from repro.rmi.codec import Codec, CodecError
from repro.rmi.proxy import Registry, RemoteProxy
from repro.rmi.server import ServerProcess, SocketCluster, SocketServer
from repro.rmi.socket import (
    RemoteCallError,
    ServerAddress,
    ServerUnavailable,
    SocketTransport,
    SocketTransportError,
    UnknownRemoteMethodError,
    WireProtocolError,
)
from repro.rmi.stats import CallStats
from repro.rmi.transport import CallOutcome, SimulatedTransport

__all__ = [
    "Codec",
    "CodecError",
    "SimulatedTransport",
    "CallOutcome",
    "ClusterTransport",
    "ClusterReply",
    "ServerDownError",
    "InjectedFaultError",
    "RemoteProxy",
    "Registry",
    "CallStats",
    "ServerAddress",
    "SocketTransport",
    "SocketTransportError",
    "ServerUnavailable",
    "WireProtocolError",
    "RemoteCallError",
    "UnknownRemoteMethodError",
    "SocketServer",
    "ServerProcess",
    "SocketCluster",
]
