"""Client/server remote-invocation substrate (the prototype's Java RMI stand-in).

The prototype splits the filter across a thin client and a big server that
talk over Java RMI (section 5.2).  Rebuilding a JVM RMI stack is neither
possible offline nor necessary: what the experiments depend on is the *call
boundary* — every filter operation is one remote round trip whose arguments
and results must be serialisable, and whose count/byte volume determine the
communication cost of a query.

This package provides that boundary in-process:

* :class:`~repro.rmi.codec.Codec` — a small, self-contained binary
  serialisation format for the value types the filters exchange,
* :class:`~repro.rmi.transport.SimulatedTransport` — a channel that counts
  calls and bytes and can model per-call latency,
* :class:`~repro.rmi.cluster.ClusterTransport` — the concurrent
  scatter-gather layer over n such channels: thread-pool ``invoke_all``,
  first-k ``invoke_quorum`` reads and a makespan clock that models the
  wall-clock of each round as its critical path,
* :class:`~repro.rmi.proxy.RemoteProxy` / :class:`~repro.rmi.proxy.Registry`
  — RMI-style stubs: the client holds a proxy, every method call is encoded,
  shipped through the transport, executed on the server object and the result
  shipped back,
* :class:`~repro.rmi.stats.CallStats` — the per-session accounting the
  benchmark harness reads out.

And the same boundary over a *real* wire (``transport="socket"`` on the
facade): :class:`~repro.rmi.socket.SocketTransport` speaks a length-prefixed
framed protocol over TCP or Unix sockets — same codec, same
``invoke``/``invoke_detailed`` surface, measured latency and bytes — against
a :class:`~repro.rmi.server.SocketServer` daemon;
:class:`~repro.rmi.server.ServerProcess` and
:class:`~repro.rmi.server.SocketCluster` run one server (or a whole
deployment) as child processes with health-check handshake, graceful
shutdown and kill-based fault injection.

On top of the socket wire sits the asyncio stack (``transport="asyncio"``
on the facade): :class:`~repro.rmi.aio.AsyncSocketTransport` multiplexes
any number of pipelined, id-tagged calls over **one** connection per
server, :class:`~repro.rmi.aio.AsyncClusterTransport` scatter-gathers them
on a single event loop — admitting first-k quorum replies on real arrival
and hedging stragglers by observed RTT percentiles — and
:class:`~repro.rmi.gateway.Gateway` serves many concurrent client sessions
over one such shared fleet (the ``repro-gateway`` daemon;
:class:`~repro.rmi.gateway.GatewayProcess` spawns it,
:class:`~repro.rmi.gateway.GatewayEndpoint` is the client-side proxy).
"""

from repro.rmi.aio import (
    AsyncClusterTransport,
    AsyncSocketTransport,
    LoopThread,
    WeightedFairScheduler,
)
from repro.rmi.cache import GatewayCache

from repro.rmi.cluster import (
    ClusterReply,
    ClusterTransport,
    InjectedFaultError,
    ServerDownError,
)
from repro.rmi.codec import Codec, CodecError
from repro.rmi.proxy import Registry, RemoteProxy
from repro.rmi.server import ServerProcess, SocketCluster, SocketServer
from repro.rmi.socket import (
    OversizedFrameError,
    RemoteCallError,
    ServerAddress,
    ServerUnavailable,
    SocketTransport,
    SocketTransportError,
    UnknownRemoteMethodError,
    WireProtocolError,
)
from repro.rmi.stats import CacheStats, CallStats
from repro.rmi.transport import CallOutcome, SimulatedTransport

#: gateway names resolved lazily (PEP 562): repro.rmi.gateway sits on top
#: of repro.filters.cluster, which itself imports this package — an eager
#: import here would be circular.
_GATEWAY_EXPORTS = ("AsyncClusterClient", "Gateway", "GatewayEndpoint", "GatewayProcess")


def __getattr__(name: str):
    if name in _GATEWAY_EXPORTS:
        from repro.rmi import gateway

        return getattr(gateway, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))

__all__ = [
    "Codec",
    "CodecError",
    "SimulatedTransport",
    "CallOutcome",
    "ClusterTransport",
    "ClusterReply",
    "ServerDownError",
    "InjectedFaultError",
    "RemoteProxy",
    "Registry",
    "CallStats",
    "ServerAddress",
    "SocketTransport",
    "SocketTransportError",
    "ServerUnavailable",
    "WireProtocolError",
    "OversizedFrameError",
    "RemoteCallError",
    "UnknownRemoteMethodError",
    "SocketServer",
    "ServerProcess",
    "SocketCluster",
    "CacheStats",
    "GatewayCache",
    "WeightedFairScheduler",
    "LoopThread",
    "AsyncSocketTransport",
    "AsyncClusterTransport",
    "AsyncClusterClient",
    "Gateway",
    "GatewayEndpoint",
    "GatewayProcess",
]
