"""The write coordinator: two-phase delta application across the fleet.

Reads tolerate partial fleets — any threshold-sized subset reconstructs.
Writes do not: a delta applied to *some* servers leaves the fleet
answering reconstructions from mixed epochs, which the verifying client
sees as corruption.  The :class:`WriteCoordinator` therefore ships every
:class:`~repro.encode.mutate.WriteDelta` through the share servers' two
phase protocol (:meth:`~repro.filters.server.ServerFilter.prepare_delta`
/ :meth:`~repro.filters.server.ServerFilter.commit_delta`):

* **prepare** stages the delta on every server and validates its
  preconditions (the table epoch the delta was computed against, the
  presence of every structural target).  Any refusal aborts the staged
  delta everywhere and raises typed — no server state changed.
* **commit** applies the staged rows atomically under each server's
  lock.  A server that fails *here* (crash, partition) is left one or
  more epochs behind — exactly the skew the :class:`WriteJournal` and
  read-repair close: every committed delta's per-server payloads are
  journaled, so a lagging server is caught up by replaying its missed
  payloads in epoch order (:meth:`WriteCoordinator.repair_server`).

After a commit the coordinator notifies its **epoch listeners** (the
gateway result cache's ``bump_epoch``, remote or in-process) and evicts
the client-side PRG memo streams of the touched rows — the version-keyed
memo could never serve stale bytes, but dead streams must not outlive
the rows they masked.

:meth:`WriteCoordinator.fence` is the heal-side gate: the
:class:`~repro.rmi.supervisor.FleetSupervisor` holds it while rebuilding
a replacement server so no delta commits into a half-copied table; the
write path blocks (briefly) instead of failing.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.encode.mutate import WriteDelta
from repro.storage.errors import WriteConflictError

__all__ = ["JournalEntry", "WriteJournal", "WriteError", "WriteCoordinator"]


class WriteError(WriteConflictError):
    """A two-phase apply failed before any server committed."""


@dataclass(frozen=True)
class JournalEntry:
    """One committed delta, as every server received it."""

    epoch: int
    base_epoch: int
    touched_pres: Tuple[int, ...]
    #: ``payloads[s]`` is the exact ``apply_delta`` payload of server ``s``
    payloads: Tuple[Dict[str, Any], ...]
    description: str = ""


class WriteJournal:
    """Ordered log of committed deltas, the source for replay repair.

    ``capacity`` bounds retained entries (oldest dropped first); a server
    whose lag exceeds the retained window cannot be replay-repaired and
    must be healed by a full re-share
    (:meth:`~repro.rmi.supervisor.FleetSupervisor`).
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("journal capacity must be positive, got %r" % (capacity,))
        self._capacity = capacity
        self._entries: List[JournalEntry] = []
        self._lock = threading.Lock()

    def record(self, delta: WriteDelta) -> JournalEntry:
        """Append one prepared delta (epochs must arrive in order)."""
        entry = JournalEntry(
            epoch=delta.epoch,
            base_epoch=delta.base_epoch,
            touched_pres=tuple(delta.touched_pres),
            payloads=tuple(delta.payload(index) for index in range(delta.num_servers)),
            description=delta.description,
        )
        with self._lock:
            if self._entries and entry.epoch <= self._entries[-1].epoch:
                raise WriteConflictError(
                    "journal epoch %d does not advance past %d"
                    % (entry.epoch, self._entries[-1].epoch)
                )
            self._entries.append(entry)
            if self._capacity is not None and len(self._entries) > self._capacity:
                del self._entries[: len(self._entries) - self._capacity]
        return entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def latest_epoch(self) -> int:
        """Epoch of the newest journaled delta (0 when empty)."""
        with self._lock:
            return self._entries[-1].epoch if self._entries else 0

    def entries_after(self, epoch: int) -> List[JournalEntry]:
        """Every retained entry a server at ``epoch`` still misses, in order."""
        with self._lock:
            return [entry for entry in self._entries if entry.epoch > epoch]

    def covers(self, epoch: int) -> bool:
        """Whether replay from ``epoch`` is gapless in the retained window."""
        missing = self.entries_after(epoch)
        if not missing:
            return True
        return missing[0].base_epoch <= epoch

    def touched_since(self, epoch: int) -> List[int]:
        """Sorted pre positions touched by every entry after ``epoch``."""
        touched = set()
        for entry in self.entries_after(epoch):
            touched.update(entry.touched_pres)
        return sorted(touched)


class WriteCoordinator:
    """Drives deltas through prepare/commit and keeps every cache honest.

    ``transport`` is the :class:`~repro.rmi.cluster.ClusterTransport` of
    the fleet (simulated filters or socket servers alike).  ``prg`` is
    the client-side :class:`~repro.prg.generator.KeyedPRG` whose memo is
    evicted for re-shared rows; ``epoch_listeners`` are zero-argument
    callables poked after every commit (gateway cache busting — pass
    ``GatewayEndpoint.bump_epoch`` for a remote gateway or
    ``GatewayCache.bump_epoch`` in process).
    """

    def __init__(
        self,
        transport: Any,
        journal: Optional[WriteJournal] = None,
        prg: Optional[Any] = None,
        epoch_listeners: Sequence[Callable[[], Any]] = (),
    ):
        self.transport = transport
        self.journal = journal if journal is not None else WriteJournal()
        self.prg = prg
        self.epoch_listeners = list(epoch_listeners)
        self._lock = threading.RLock()
        #: commit outcomes of the last apply (index -> error), for tests
        self.last_commit_failures: Dict[int, BaseException] = {}

    # ------------------------------------------------------------------
    # The heal fence
    # ------------------------------------------------------------------

    @contextmanager
    def fence(self):
        """Exclusive gate: while held, no delta can prepare or commit.

        The supervisor holds this across a heal so replacement tables are
        rebuilt against a frozen epoch; concurrent writers block on
        :meth:`apply` until the fence lifts instead of racing the copy.
        """
        with self._lock:
            yield self

    # ------------------------------------------------------------------
    # Two-phase apply
    # ------------------------------------------------------------------

    @property
    def num_servers(self) -> int:
        return len(self.transport.servers)

    def apply(self, delta: WriteDelta) -> Dict[str, Any]:
        """Ship one delta through prepare/commit on every server.

        Raises :class:`WriteError` (no server changed) when any prepare
        refuses.  Commit failures do *not* raise: the delta is already
        journaled and staged everywhere, so a server that missed its
        commit is simply behind — read-repair or :meth:`repair_server`
        replays it.  Returns a report with the committed/failed split.
        """
        if delta.num_servers != self.num_servers:
            raise WriteError(
                "delta carries %d server slices for a %d-server fleet"
                % (delta.num_servers, self.num_servers)
            )
        with self._lock:
            prepared: List[int] = []
            for index in range(self.num_servers):
                try:
                    self._prepare_on(index, delta)
                except Exception as error:
                    for staged in prepared:
                        try:
                            self.transport.invoke(staged, "abort_delta", (delta.epoch,))
                        except Exception:  # pragma: no cover - abort best effort
                            pass
                    raise WriteError(
                        "prepare of epoch %d refused by server %d: %s"
                        % (delta.epoch, index, error)
                    ) from error
                prepared.append(index)
            # Every server holds the staged delta: the write is now
            # durable in the journal even if individual commits fail.
            self.journal.record(delta)
            committed: List[int] = []
            failures: Dict[int, BaseException] = {}
            for index in range(self.num_servers):
                try:
                    self.transport.invoke(index, "commit_delta", (delta.epoch,))
                except Exception as error:
                    failures[index] = error
                else:
                    committed.append(index)
            self.last_commit_failures = failures
            if committed:
                self._after_commit(delta)
        return {
            "epoch": delta.epoch,
            "committed": committed,
            "failed": sorted(failures),
            "rows": delta.write_rows,
        }

    def _prepare_on(self, index: int, delta: WriteDelta) -> None:
        """Stage the delta on one server, replay-repairing a lagging one.

        A server that missed an earlier commit refuses the prepare with an
        epoch conflict; when the journal still covers its lag the backlog
        is replayed and the prepare retried once, so a single flaky commit
        does not poison every subsequent write.
        """
        payload = delta.payload(index)
        try:
            self.transport.invoke(index, "prepare_delta", (payload,))
        except WriteConflictError:
            self.repair_server(index)
            self.transport.invoke(index, "prepare_delta", (payload,))

    def _after_commit(self, delta: WriteDelta) -> None:
        """Client-side invalidation: PRG memo streams and epoch listeners."""
        if self.prg is not None:
            touched = set(delta.touched_pres)
            touched.update(update.pre for update in delta.structural)
            touched.update(delta.deletes)
            self.prg.evict(touched)
        for listener in self.epoch_listeners:
            try:
                listener()
            except Exception:  # pragma: no cover - listener best effort
                pass

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------

    def server_epochs(self) -> Dict[int, int]:
        """Each live server's table epoch (unreachable servers omitted)."""
        epochs: Dict[int, int] = {}
        for reply in self.transport.invoke_all("table_epoch"):
            if reply.ok:
                epochs[reply.server] = reply.value
        return epochs

    def stale_servers(self) -> Dict[int, int]:
        """index -> lagging epoch, for every server behind the journal."""
        latest = self.journal.latest_epoch
        return {
            index: epoch
            for index, epoch in self.server_epochs().items()
            if epoch < latest
        }

    def repair_server(self, index: int) -> int:
        """Replay every journaled delta server ``index`` missed, in order.

        Returns how many deltas were replayed.  Raises
        :class:`WriteConflictError` when the journal no longer covers the
        server's lag (a full heal is needed instead).
        """
        with self._lock:
            epoch = self.transport.invoke(index, "table_epoch", ())
            missing = self.journal.entries_after(epoch)
            if not missing:
                return 0
            if missing[0].base_epoch > epoch:
                raise WriteConflictError(
                    "journal starts at base epoch %d but server %d is at %d: "
                    "replay cannot bridge the gap" % (missing[0].base_epoch, index, epoch)
                )
            replayed = 0
            for entry in missing:
                self.transport.invoke(index, "apply_delta", (entry.payloads[index],))
                replayed += 1
        return replayed

    def repair_stale(self) -> Dict[int, int]:
        """Replay-repair every lagging live server; index -> deltas replayed."""
        report: Dict[int, int] = {}
        for index in sorted(self.stale_servers()):
            report[index] = self.repair_server(index)
        return report
