"""Binary serialisation for remote calls.

A deliberately small, dependency-free, length-prefixed format covering the
value types the filters exchange: ``None``, booleans, integers, floats,
strings, bytes, lists/tuples and string-keyed dictionaries.  Arbitrary
objects are rejected — exactly the discipline a real remote boundary imposes,
which keeps the filter interfaces honest (no accidental passing of live
Python objects between "client" and "server").
"""

from __future__ import annotations

from typing import Any, List, Tuple

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_DICT = b"M"


class CodecError(ValueError):
    """Raised when a value cannot be serialised or a payload is malformed."""


class Codec:
    """Encoder/decoder for the remote-call payload format."""

    def encode(self, value: Any) -> bytes:
        """Serialise ``value`` to bytes."""
        parts: List[bytes] = []
        self._encode_into(value, parts)
        return b"".join(parts)

    def decode(self, payload: bytes) -> Any:
        """Deserialise bytes produced by :meth:`encode`."""
        value, offset = self._decode_from(payload, 0)
        if offset != len(payload):
            raise CodecError("trailing bytes after payload (%d of %d consumed)" % (offset, len(payload)))
        return value

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def _encode_into(self, value: Any, parts: List[bytes]) -> None:
        if value is None:
            parts.append(_TAG_NONE)
        elif value is True:
            parts.append(_TAG_TRUE)
        elif value is False:
            parts.append(_TAG_FALSE)
        elif isinstance(value, int):
            encoded = str(value).encode("ascii")
            parts.append(_TAG_INT + _length(encoded) + encoded)
        elif isinstance(value, float):
            encoded = repr(value).encode("ascii")
            parts.append(_TAG_FLOAT + _length(encoded) + encoded)
        elif isinstance(value, str):
            encoded = value.encode("utf-8")
            parts.append(_TAG_STR + _length(encoded) + encoded)
        elif isinstance(value, (bytes, bytearray)):
            encoded = bytes(value)
            parts.append(_TAG_BYTES + _length(encoded) + encoded)
        elif isinstance(value, (list, tuple)):
            parts.append(_TAG_LIST + _length_int(len(value)))
            for item in value:
                self._encode_into(item, parts)
        elif isinstance(value, dict):
            parts.append(_TAG_DICT + _length_int(len(value)))
            for key, item in value.items():
                if not isinstance(key, str):
                    raise CodecError("dictionary keys must be strings, got %r" % (key,))
                self._encode_into(key, parts)
                self._encode_into(item, parts)
        else:
            raise CodecError(
                "value of type %s cannot cross the remote boundary: %r"
                % (type(value).__name__, value)
            )

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def _decode_from(self, payload: bytes, offset: int) -> Tuple[Any, int]:
        if offset >= len(payload):
            raise CodecError("truncated payload")
        tag = payload[offset : offset + 1]
        offset += 1
        if tag == _TAG_NONE:
            return None, offset
        if tag == _TAG_TRUE:
            return True, offset
        if tag == _TAG_FALSE:
            return False, offset
        if tag in (_TAG_INT, _TAG_FLOAT, _TAG_STR, _TAG_BYTES):
            size, offset = _read_length(payload, offset)
            raw = payload[offset : offset + size]
            if len(raw) != size:
                raise CodecError("truncated payload body")
            offset += size
            if tag == _TAG_INT:
                return int(raw.decode("ascii")), offset
            if tag == _TAG_FLOAT:
                return float(raw.decode("ascii")), offset
            if tag == _TAG_STR:
                return raw.decode("utf-8"), offset
            return raw, offset
        if tag == _TAG_LIST:
            count, offset = _read_length(payload, offset)
            items = []
            for _ in range(count):
                item, offset = self._decode_from(payload, offset)
                items.append(item)
            return items, offset
        if tag == _TAG_DICT:
            count, offset = _read_length(payload, offset)
            result = {}
            for _ in range(count):
                key, offset = self._decode_from(payload, offset)
                value, offset = self._decode_from(payload, offset)
                result[key] = value
            return result, offset
        raise CodecError("unknown type tag %r at offset %d" % (tag, offset - 1))


def _length(encoded: bytes) -> bytes:
    return _length_int(len(encoded))


def _length_int(value: int) -> bytes:
    return value.to_bytes(4, "big")


def _read_length(payload: bytes, offset: int) -> Tuple[int, int]:
    raw = payload[offset : offset + 4]
    if len(raw) != 4:
        raise CodecError("truncated length field")
    return int.from_bytes(raw, "big"), offset + 4
