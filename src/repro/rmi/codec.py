"""Binary serialisation for remote calls.

A deliberately small, dependency-free, length-prefixed format covering the
value types the filters exchange: ``None``, booleans, integers, floats,
strings, bytes, lists/tuples and string-keyed dictionaries.  Arbitrary
objects are rejected — exactly the discipline a real remote boundary imposes,
which keeps the filter interfaces honest (no accidental passing of live
Python objects between "client" and "server").

Homogeneous integer lists — the dominant payload of the batched endpoints
(candidate ``pre`` lists, share coefficient vectors) — are written in a
compact vector form so a batch of *n* values is encoded once with one byte of
framing per element rather than five; other payloads use the generic tagged
encoding.

Lists of such vectors — the share-bundle responses of the batched and
clustered endpoints (``fetch_shares_batch`` returns one coefficient vector
per node, per server) — take a *matrix* form: each row is packed at a fixed
byte width derived from its largest value, so a share vector over a small
field costs about one byte per coefficient instead of three-plus through the
generic list path.  Cluster payload accounting therefore reflects what a
sane wire format would ship, not framing overhead.
"""

from __future__ import annotations

from typing import Any, List, Tuple

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_DICT = b"M"
#: compact vector-of-ints: the dominant batch payload shape (candidate lists,
#: share coefficient vectors) costs 1 length byte + digits per element instead
#: of a 1-byte tag + 4-byte length per element
_TAG_INTVEC = b"V"
#: compact matrix: a list of non-negative int vectors (share bundles), each
#: row packed at a fixed per-row byte width
_TAG_INTMAT = b"W"

#: widest per-element digit string the compact vector form can carry
_INTVEC_MAX_DIGITS = 255

#: widest fixed element width (bytes) a matrix row may use; wider rows make
#: the whole value fall back to the generic list encoding
_INTMAT_MAX_WIDTH = 8


class CodecError(ValueError):
    """Raised when a value cannot be serialised or a payload is malformed."""


class Codec:
    """Encoder/decoder for the remote-call payload format."""

    def encode(self, value: Any) -> bytes:
        """Serialise ``value`` to bytes."""
        parts: List[bytes] = []
        self._encode_into(value, parts)
        return b"".join(parts)

    def decode(self, payload: bytes) -> Any:
        """Deserialise bytes produced by :meth:`encode`."""
        value, offset = self._decode_from(payload, 0)
        if offset != len(payload):
            raise CodecError("trailing bytes after payload (%d of %d consumed)" % (offset, len(payload)))
        return value

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def _encode_into(self, value: Any, parts: List[bytes]) -> None:
        if value is None:
            parts.append(_TAG_NONE)
        elif value is True:
            parts.append(_TAG_TRUE)
        elif value is False:
            parts.append(_TAG_FALSE)
        elif isinstance(value, int):
            encoded = str(value).encode("ascii")
            parts.append(_TAG_INT + _length(encoded) + encoded)
        elif isinstance(value, float):
            encoded = repr(value).encode("ascii")
            parts.append(_TAG_FLOAT + _length(encoded) + encoded)
        elif isinstance(value, str):
            encoded = value.encode("utf-8")
            parts.append(_TAG_STR + _length(encoded) + encoded)
        elif isinstance(value, (bytes, bytearray)):
            encoded = bytes(value)
            parts.append(_TAG_BYTES + _length(encoded) + encoded)
        elif isinstance(value, (list, tuple)):
            compact = _encode_intvec(value)
            if compact is None:
                compact = _encode_intmat(value)
            if compact is not None:
                parts.append(compact)
                return
            parts.append(_TAG_LIST + _length_int(len(value)))
            for item in value:
                self._encode_into(item, parts)
        elif isinstance(value, dict):
            parts.append(_TAG_DICT + _length_int(len(value)))
            for key, item in value.items():
                if not isinstance(key, str):
                    raise CodecError("dictionary keys must be strings, got %r" % (key,))
                self._encode_into(key, parts)
                self._encode_into(item, parts)
        else:
            raise CodecError(
                "value of type %s cannot cross the remote boundary: %r"
                % (type(value).__name__, value)
            )

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def _decode_from(self, payload: bytes, offset: int) -> Tuple[Any, int]:
        if offset >= len(payload):
            raise CodecError("truncated payload")
        tag = payload[offset : offset + 1]
        offset += 1
        if tag == _TAG_NONE:
            return None, offset
        if tag == _TAG_TRUE:
            return True, offset
        if tag == _TAG_FALSE:
            return False, offset
        if tag in (_TAG_INT, _TAG_FLOAT, _TAG_STR, _TAG_BYTES):
            size, offset = _read_length(payload, offset)
            raw = payload[offset : offset + size]
            if len(raw) != size:
                raise CodecError("truncated payload body")
            offset += size
            if tag == _TAG_INT:
                return int(raw.decode("ascii")), offset
            if tag == _TAG_FLOAT:
                return float(raw.decode("ascii")), offset
            if tag == _TAG_STR:
                return raw.decode("utf-8"), offset
            return raw, offset
        if tag == _TAG_INTMAT:
            rows, offset = _read_length(payload, offset)
            matrix = []
            for _ in range(rows):
                count, offset = _read_length(payload, offset)
                if offset >= len(payload):
                    raise CodecError("truncated payload")
                width = payload[offset]
                offset += 1
                if width == 0:
                    if count:
                        raise CodecError("zero-width matrix row with %d elements" % count)
                    matrix.append([])
                    continue
                size = count * width
                raw = payload[offset : offset + size]
                if len(raw) != size:
                    raise CodecError("truncated payload body")
                offset += size
                matrix.append(
                    [
                        int.from_bytes(raw[start : start + width], "big")
                        for start in range(0, size, width)
                    ]
                )
            return matrix, offset
        if tag == _TAG_INTVEC:
            count, offset = _read_length(payload, offset)
            items = []
            for _ in range(count):
                if offset >= len(payload):
                    raise CodecError("truncated payload")
                size = payload[offset]
                offset += 1
                raw = payload[offset : offset + size]
                if len(raw) != size:
                    raise CodecError("truncated payload body")
                items.append(int(raw.decode("ascii")))
                offset += size
            return items, offset
        if tag == _TAG_LIST:
            count, offset = _read_length(payload, offset)
            items = []
            for _ in range(count):
                item, offset = self._decode_from(payload, offset)
                items.append(item)
            return items, offset
        if tag == _TAG_DICT:
            count, offset = _read_length(payload, offset)
            result = {}
            for _ in range(count):
                key, offset = self._decode_from(payload, offset)
                value, offset = self._decode_from(payload, offset)
                result[key] = value
            return result, offset
        raise CodecError("unknown type tag %r at offset %d" % (tag, offset - 1))


def _encode_intvec(values) -> "bytes | None":
    """Compact encoding of a non-empty homogeneous int list, or ``None``.

    Bools (an ``int`` subclass) and astronomically long integers fall back to
    the generic list form so decoding always reproduces the input exactly.
    """
    if not values:
        return None
    chunks = []
    for value in values:
        if type(value) is not int:
            return None
        digits = str(value).encode("ascii")
        if len(digits) > _INTVEC_MAX_DIGITS:
            return None
        chunks.append(bytes((len(digits),)) + digits)
    return _TAG_INTVEC + _length_int(len(values)) + b"".join(chunks)


def _encode_intmat(values) -> "bytes | None":
    """Compact encoding of a non-empty list of non-negative int vectors.

    Each row is packed at the fixed byte width of its largest element (so a
    share vector over a small field costs ~1 byte per coefficient).  Bools,
    negative values, elements wider than ``_INTMAT_MAX_WIDTH`` bytes and
    non-vector rows make the value fall back to the generic list form.
    """
    if not values:
        return None
    rows = []
    for row in values:
        if not isinstance(row, (list, tuple)):
            return None
        largest = 0
        for element in row:
            if type(element) is not int or element < 0:
                return None
            if element > largest:
                largest = element
        width = max(1, (largest.bit_length() + 7) // 8) if row else 0
        if width > _INTMAT_MAX_WIDTH:
            return None
        packed = b"".join(element.to_bytes(width, "big") for element in row)
        rows.append(_length_int(len(row)) + bytes((width,)) + packed)
    return _TAG_INTMAT + _length_int(len(values)) + b"".join(rows)


def _length(encoded: bytes) -> bytes:
    return _length_int(len(encoded))


def _length_int(value: int) -> bytes:
    return value.to_bytes(4, "big")


def _read_length(payload: bytes, offset: int) -> Tuple[int, int]:
    raw = payload[offset : offset + 4]
    if len(raw) != 4:
        raise CodecError("truncated length field")
    return int.from_bytes(raw, "big"), offset + 4
