"""Real socket transport: the RMI boundary over TCP or Unix-domain sockets.

Everything above this module — :class:`~repro.rmi.cluster.ClusterTransport`,
the :class:`~repro.filters.cluster.ClusterClient`, both query engines and
the leakage observer — talks to a server through the
:class:`~repro.rmi.transport.SimulatedTransport` surface (``invoke`` /
``invoke_detailed`` returning a :class:`~repro.rmi.transport.CallOutcome`).
:class:`SocketTransport` implements exactly that surface over a real wire,
so a deployment genuinely spans processes and hosts while the rest of the
stack runs unmodified.

Wire format
-----------

One call is one *frame* in each direction.  A frame is a 4-byte big-endian
length prefix followed by that many payload bytes; payloads are produced by
the existing :class:`~repro.rmi.codec.Codec`, which already enforces that
only serialisable values cross the boundary.

* request payload — ``codec.encode({"method", "args", "kwargs"})``, byte
  for byte the request the simulated transport encodes, so per-server
  ``bytes_sent`` counters are identical between the two transports,
* response payload — one status byte (``+`` success, ``-`` failure)
  followed by ``codec.encode(result)`` on success (again byte-identical
  with the simulated response payload) or
  ``codec.encode({"type", "message"})`` describing the server-side
  exception on failure.  Failed calls record zero response bytes, exactly
  like :meth:`SimulatedTransport.invoke_detailed`.

Frames larger than ``max_frame_bytes`` are rejected *before* the body is
read — an oversized (or garbage) length prefix must not make the peer
allocate gigabytes or stall mid-stream.

Error taxonomy
--------------

All transport-level failures are :class:`ConnectionError` subclasses, which
is precisely the class the cluster fail-over path catches:

* :class:`ServerUnavailable` — could not connect (even after the reconnect
  backoff), the per-call timeout expired, or the server died mid-call,
* :class:`WireProtocolError` — the peer spoke garbage: malformed frame,
  truncated payload, oversized message, undecodable response.

Server-side exceptions travel back *typed*: well-known builtins
(``LookupError``, ``ValueError``, …) and :class:`~repro.rmi.codec.CodecError`
are reconstructed as themselves — a cluster replica raising ``LookupError``
for an unknown ``pre`` behaves identically over the wire and in-process —
while unknown types degrade to :class:`RemoteCallError`.  A call naming a
method the server does not export raises :class:`UnknownRemoteMethodError`.
Every failed call is recorded in :class:`~repro.rmi.stats.CallStats` with
``error=True``; no failure mode hangs the caller (reads are bounded by the
per-call timeout).
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.rmi.codec import Codec, CodecError
from repro.rmi.stats import CallStats
from repro.rmi.transport import CallOutcome
from repro.storage.errors import StaleVersionError, WriteConflictError

#: size of the big-endian length prefix in front of every frame
FRAME_HEADER_BYTES = 4

#: preamble a multiplexing client sends right after connecting.  It doubles
#: as protocol detection on the server: read as a legacy length prefix it
#: announces a ~4.28 GB frame, far beyond any sane ``max_frame_bytes``, so
#: the two framings cannot be confused on the first four bytes.
MUX_MAGIC = b"\xffMUX"

#: multiplexed frame header: request id (4 bytes BE) + payload length
#: (4 bytes BE).  The payload bytes themselves are identical to the legacy
#: framing — and therefore to the simulated transport — so per-server byte
#: counters match across all three transports.
MUX_HEADER_BYTES = 8

#: default ceiling on a single frame's payload (requests *and* responses)
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

#: default per-call timeout (connect, send and the full response read)
DEFAULT_TIMEOUT = 30.0

#: response status bytes
STATUS_OK = b"+"
STATUS_ERROR = b"-"

#: health-check handshake method served by every socket server
PING_METHOD = "__ping__"

#: graceful-shutdown method served by every socket server
SHUTDOWN_METHOD = "__shutdown__"

#: gateway introspection method: sessions, cache, fairness and per-server
#: wire counters as one snapshot (served by the gateway, not plain servers)
STATS_METHOD = "__stats__"

#: gateway cache-invalidation method: bump the deployment epoch, dropping
#: every cached result at once (the write path's wholesale handle)
BUMP_EPOCH_METHOD = "__bump_epoch__"


class SocketTransportError(ConnectionError):
    """Base class of socket-transport failures (a :class:`ConnectionError`,
    so the cluster fail-over path treats them like any unreachable server)."""


class ServerUnavailable(SocketTransportError):
    """The server could not be reached, timed out, or died mid-call."""


class WireProtocolError(SocketTransportError):
    """The peer violated the framing protocol (malformed, truncated or
    oversized frame, undecodable payload, unknown status byte)."""


class OversizedFrameError(WireProtocolError):
    """The peer announced a frame larger than ``max_frame_bytes``.

    On the multiplexed wire the offending frame's request id is known from
    the header, so the server can still answer *that* call typed before
    dropping the connection (the body was never read, but the stream
    position after it is unknowable once trust in the peer is gone).
    """

    def __init__(self, message: str, call_id: Optional[int] = None):
        super().__init__(message)
        self.call_id = call_id


class RemoteCallError(RuntimeError):
    """A server-side exception of a type the wire cannot reconstruct."""


class UnknownRemoteMethodError(RemoteCallError):
    """The server does not export the requested method."""


#: exception types reconstructed as themselves when they cross the wire.
#: The filter protocol's semantic errors must survive the hop typed —
#: the cluster client re-raises a ``LookupError`` (unknown ``pre``) instead
#: of failing over, exactly as it does in-process.
_WIRE_EXCEPTION_TYPES: Dict[str, type] = {
    cls.__name__: cls
    for cls in (
        ArithmeticError,
        IndexError,
        KeyError,
        LookupError,
        NotImplementedError,
        OverflowError,
        RuntimeError,
        TypeError,
        ValueError,
        ZeroDivisionError,
        CodecError,
        RemoteCallError,
        UnknownRemoteMethodError,
        WireProtocolError,
        # The write protocol's semantic failures: a coordinator must see a
        # typed conflict (retry against the new epoch) or stale-version
        # signal (trigger read-repair), not an opaque RemoteCallError.
        # Structured context (stale_pres, …) stays server-side; remote
        # repair re-derives it from ``row_versions``.
        WriteConflictError,
        StaleVersionError,
    )
}


def encode_exception(error: BaseException) -> Dict[str, str]:
    """The serialisable description of a server-side exception."""
    return {"type": type(error).__name__, "message": str(error)}


def decode_exception(payload: Any) -> BaseException:
    """Rebuild a typed exception from :func:`encode_exception` output."""
    if not isinstance(payload, dict) or not isinstance(payload.get("type"), str):
        return WireProtocolError("malformed error payload: %r" % (payload,))
    name = payload["type"]
    message = payload.get("message", "")
    cls = _WIRE_EXCEPTION_TYPES.get(name)
    if cls is not None:
        return cls(message)
    return RemoteCallError("%s: %s" % (name, message))


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def send_frame(sock: socket.socket, payload: bytes, max_frame_bytes: int) -> None:
    """Write one length-prefixed frame."""
    if len(payload) > max_frame_bytes:
        raise WireProtocolError(
            "frame of %d bytes exceeds the %d-byte limit" % (len(payload), max_frame_bytes)
        )
    sock.sendall(len(payload).to_bytes(FRAME_HEADER_BYTES, "big") + payload)


def _apply_deadline(sock: socket.socket, deadline: Optional[float]) -> None:
    """Arm the socket with the time remaining until ``deadline`` (if any)."""
    if deadline is None:
        return
    budget = deadline - time.monotonic()
    if budget <= 0:
        raise socket.timeout("frame read deadline exceeded")
    sock.settimeout(budget)


def _recv_exactly(
    sock: socket.socket, count: int, context: str, deadline: Optional[float] = None
) -> bytes:
    """Read exactly ``count`` bytes; EOF mid-read is a truncated frame.

    ``deadline`` (a ``time.monotonic`` instant) bounds the *whole* read:
    without it, each ``recv`` would get a fresh per-socket timeout and a
    byte-trickling peer could hold the caller far past the promised bound.
    """
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        _apply_deadline(sock, deadline)
        chunk = sock.recv(remaining)
        if not chunk:
            raise WireProtocolError(
                "connection closed with %d of %d %s bytes outstanding"
                % (remaining, count, context)
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket,
    max_frame_bytes: int,
    eof_ok: bool = False,
    deadline: Optional[float] = None,
) -> Optional[bytes]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    A peer closing *between* frames is a normal end of session (the server's
    connection loop relies on it); closing mid-frame, or announcing a body
    larger than ``max_frame_bytes``, is a :class:`WireProtocolError` —
    before any oversized body is read, let alone buffered.  ``deadline``
    bounds the whole frame read (the client passes one per call; the
    server blocks, relying on connection shutdown to unblock it).
    """
    _apply_deadline(sock, deadline)
    first = sock.recv(1)
    if not first:
        if eof_ok:
            return None
        raise ServerUnavailable("connection closed before a response frame arrived")
    header = first + _recv_exactly(sock, FRAME_HEADER_BYTES - 1, "frame header", deadline)
    size = int.from_bytes(header, "big")
    if size > max_frame_bytes:
        raise WireProtocolError(
            "peer announced a %d-byte frame (limit %d)" % (size, max_frame_bytes)
        )
    return _recv_exactly(sock, size, "frame body", deadline)


# ----------------------------------------------------------------------
# Multiplexed framing (asyncio wire)
# ----------------------------------------------------------------------


def pack_mux_frame(call_id: int, payload: bytes, max_frame_bytes: int) -> bytes:
    """One multiplexed frame: ``id(4 BE) + length(4 BE) + payload``."""
    if len(payload) > max_frame_bytes:
        raise WireProtocolError(
            "frame of %d bytes exceeds the %d-byte limit" % (len(payload), max_frame_bytes)
        )
    if not 0 <= call_id < 1 << 32:
        raise WireProtocolError("request id %d does not fit the 4-byte header" % call_id)
    return (
        call_id.to_bytes(4, "big")
        + len(payload).to_bytes(FRAME_HEADER_BYTES, "big")
        + payload
    )


async def read_mux_frame(
    reader: asyncio.StreamReader, max_frame_bytes: int
) -> Optional[Tuple[int, bytes]]:
    """Read one multiplexed frame; ``None`` on clean EOF at a boundary.

    A peer closing between frames ends the session normally; closing
    mid-frame is a :class:`WireProtocolError`.  An announced body beyond
    ``max_frame_bytes`` raises :class:`OversizedFrameError` *before* any of
    it is read, carrying the request id so a server can answer that call
    typed before giving up on the stream.
    """
    try:
        header = await reader.readexactly(MUX_HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireProtocolError(
            "connection closed with %d of %d frame header bytes outstanding"
            % (MUX_HEADER_BYTES - len(exc.partial), MUX_HEADER_BYTES)
        )
    call_id = int.from_bytes(header[:4], "big")
    size = int.from_bytes(header[4:], "big")
    if size > max_frame_bytes:
        raise OversizedFrameError(
            "peer announced a %d-byte frame (limit %d)" % (size, max_frame_bytes),
            call_id=call_id,
        )
    try:
        payload = await reader.readexactly(size)
    except asyncio.IncompleteReadError as exc:
        raise WireProtocolError(
            "connection closed with %d of %d frame body bytes outstanding"
            % (size - len(exc.partial), size)
        )
    return call_id, payload


# ----------------------------------------------------------------------
# Addressing
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ServerAddress:
    """Where a socket server listens: TCP ``host:port`` or a Unix path."""

    host: Optional[str] = None
    port: Optional[int] = None
    path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.path is None and (self.host is None or self.port is None):
            raise ValueError("address needs host+port or a unix socket path")

    @property
    def is_unix(self) -> bool:
        """Whether this is a Unix-domain socket address."""
        return self.path is not None

    def create_connection(self, timeout: float) -> socket.socket:
        """Dial the address (one attempt; retries live in the transport)."""
        if self.is_unix:
            if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
                raise ServerUnavailable("unix sockets are not supported on this platform")
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.settimeout(timeout)
                sock.connect(self.path)
            except OSError:
                sock.close()
                raise
            return sock
        sock = socket.create_connection((self.host, self.port), timeout=timeout)
        sock.settimeout(timeout)
        return sock

    @classmethod
    def coerce(cls, value: "AddressLike") -> "ServerAddress":
        """Accept an address, a ``(host, port)`` pair or a unix path."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(path=value)
        if isinstance(value, (tuple, list)) and len(value) == 2:
            return cls(host=value[0], port=int(value[1]))
        raise TypeError("cannot interpret %r as a server address" % (value,))

    def __str__(self) -> str:
        if self.is_unix:
            return "unix:%s" % self.path
        return "%s:%d" % (self.host, self.port)


AddressLike = Any  # ServerAddress | (host, port) | unix path


# ----------------------------------------------------------------------
# Client transport
# ----------------------------------------------------------------------


class SocketTransport:
    """The :class:`SimulatedTransport` surface over one real socket peer.

    ``invoke``/``invoke_detailed`` keep their signatures — the ``target``
    argument is accepted and ignored, since the remote object lives behind
    the address — so :class:`~repro.rmi.cluster.ClusterTransport` drives
    socket servers and in-process servers through identical code.  Latency
    and byte counts recorded in :attr:`stats` are *measured* (wall-clock
    round trip, encoded payload sizes), not modeled; ``per_call_latency``
    is fixed at 0.0 — the only honest lower bound for a measured arrival.
    The :attr:`measured` flag tells the cluster's quorum gather to admit
    replies in real completion order instead of trying to prove modeled
    arrival order from that degenerate bound: results stay deterministic
    (any k threshold replies reconstruct identically) and first-k reads
    genuinely return at the k-th arrival.

    Connections are pooled and reused across calls; dialing retries
    ``connect_retries`` times with exponential backoff, and a pooled
    connection whose *send* fails is replaced by one fresh dial before the
    call errors.  A reused connection failing at the *response read* is
    deliberately not retried: the request may already be executing, and
    the protocol has stateful endpoints (``open_queue``/``next_node``)
    where a silent replay would double-execute — so that case surfaces as
    :class:`ServerUnavailable` for the cluster layer's quorum/fail-over
    logic to absorb.  Every read is bounded by ``timeout``, so a dead or
    wedged server surfaces as :class:`ServerUnavailable` instead of a
    hang.
    """

    #: latencies are wall-clock measurements — the scatter-gather layer
    #: admits quorum replies in real completion order for such transports
    measured = True

    def __init__(
        self,
        address: AddressLike,
        codec: Optional[Codec] = None,
        stats: Optional[CallStats] = None,
        timeout: float = DEFAULT_TIMEOUT,
        connect_retries: int = 4,
        connect_backoff: float = 0.05,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        pool_size: int = 4,
    ):
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if connect_retries < 1:
            raise ValueError("connect_retries must be at least 1")
        if max_frame_bytes < 1:
            raise ValueError("max_frame_bytes must be positive")
        self.address = ServerAddress.coerce(address)
        self.codec = codec or Codec()
        self.stats = stats or CallStats()
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.connect_backoff = connect_backoff
        self.max_frame_bytes = max_frame_bytes
        #: lower bound of any call's latency, read by the quorum gather's
        #: admission ordering; a measured transport can promise nothing, so
        #: zero — which makes first-k reads await all in-flight replies
        #: (see the class docstring)
        self.per_call_latency = 0.0
        self.per_byte_latency = 0.0
        self._pool_size = pool_size
        self._idle: List[socket.socket] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Connection pool
    # ------------------------------------------------------------------

    def _dial(self) -> socket.socket:
        """One fresh connection, retrying with exponential backoff."""
        delay = self.connect_backoff
        last_error: Optional[OSError] = None
        for attempt in range(self.connect_retries):
            try:
                return self.address.create_connection(self.timeout)
            except OSError as exc:
                last_error = exc
                if attempt + 1 < self.connect_retries:
                    time.sleep(delay)
                    delay *= 2
        raise ServerUnavailable(
            "cannot connect to %s after %d attempts: %s"
            % (self.address, self.connect_retries, last_error)
        )

    def _checkout(self) -> Tuple[socket.socket, bool]:
        """A connection plus whether it came from the idle pool (reused)."""
        with self._lock:
            if self._idle:
                return self._idle.pop(), True
        return self._dial(), False

    def _checkin(self, sock: socket.socket) -> None:
        # Deadline-gated reads shrink the socket's timeout as a call runs;
        # restore the full per-call budget before the connection is reused.
        try:
            sock.settimeout(self.timeout)
        except OSError:  # pragma: no cover - socket died at checkin
            _close_quietly(sock)
            return
        with self._lock:
            if len(self._idle) < self._pool_size:
                self._idle.append(sock)
                return
        _close_quietly(sock)

    def close(self) -> None:
        """Close every pooled connection (idempotent; the transport stays
        usable — the next call simply dials afresh)."""
        with self._lock:
            idle, self._idle = self._idle, []
        for sock in idle:
            _close_quietly(sock)

    def __enter__(self) -> "SocketTransport":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------

    def _roundtrip(self, request: bytes) -> "Tuple[bytes, socket.socket]":
        """Ship one request frame, return the raw response payload and the
        connection it arrived on (the caller decides whether to pool it).

        A send failure on a *reused* connection is retried once on a fresh
        dial (the pooled peer may simply have closed an idle connection);
        any failure after the request reached a fresh connection — and any
        failure while reading the response — raises without retrying, since
        the server may already be executing the call.
        """
        if len(request) > self.max_frame_bytes:
            # Checked before dialing: an oversized request is a protocol
            # violation regardless of whether the peer is reachable.
            raise WireProtocolError(
                "frame of %d bytes exceeds the %d-byte limit"
                % (len(request), self.max_frame_bytes)
            )
        sock, reused = self._checkout()
        try:
            send_frame(sock, request, self.max_frame_bytes)
        except OSError as exc:
            _close_quietly(sock)
            if not reused:
                raise ServerUnavailable(
                    "send to %s failed: %s" % (self.address, exc)
                ) from exc
            sock = self._dial()
            try:
                send_frame(sock, request, self.max_frame_bytes)
            except OSError as retry_exc:
                _close_quietly(sock)
                raise ServerUnavailable(
                    "send to %s failed after reconnect: %s" % (self.address, retry_exc)
                ) from retry_exc
        try:
            payload = recv_frame(
                sock,
                self.max_frame_bytes,
                deadline=time.monotonic() + self.timeout,
            )
        except SocketTransportError:
            # Our own typed failures (truncated/oversized frame, clean EOF)
            # are ConnectionError — and therefore OSError — subclasses:
            # re-raise before the generic handlers can re-wrap them.
            _close_quietly(sock)
            raise
        except socket.timeout as exc:
            _close_quietly(sock)
            raise ServerUnavailable(
                "no response from %s within %.1fs" % (self.address, self.timeout)
            ) from exc
        except OSError as exc:
            _close_quietly(sock)
            raise ServerUnavailable(
                "connection to %s lost mid-call: %s" % (self.address, exc)
            ) from exc
        assert payload is not None  # eof_ok=False: clean EOF raised above
        return payload, sock

    def invoke_detailed(
        self,
        target: Any,
        method: str,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> CallOutcome:
        """One remote call with its error and *measured* cost captured.

        ``target`` is ignored (the peer is fixed by the address); request
        encoding failures — a caller-side bug — raise directly, exactly
        like the simulated transport.  Everything else, including
        connection loss and protocol violations, lands in the returned
        :class:`CallOutcome` and is recorded in :attr:`stats` with
        ``error=True``.
        """
        kwargs = kwargs or {}
        request = self.codec.encode({"method": method, "args": list(args), "kwargs": kwargs})
        value: Any = None
        error: Optional[BaseException] = None
        response_bytes = 0
        request_bytes = len(request)
        start = time.perf_counter()
        sock: Optional[socket.socket] = None
        try:
            payload, sock = self._roundtrip(request)
        except SocketTransportError as exc:
            error = exc
        else:
            status, body = payload[:1], payload[1:]
            if status == STATUS_OK:
                try:
                    value = self.codec.decode(body)
                    response_bytes = len(body)
                except CodecError as exc:
                    error = WireProtocolError("undecodable response payload: %s" % exc)
            elif status == STATUS_ERROR:
                try:
                    error = decode_exception(self.codec.decode(body))
                except CodecError as exc:
                    error = WireProtocolError("undecodable error payload: %s" % exc)
            else:
                error = WireProtocolError("unknown response status byte %r" % status)
        if sock is not None:
            if isinstance(error, WireProtocolError):
                # A framing violation — reported by either side — leaves the
                # connection's sync suspect (the server drops its end after
                # an oversized request); never pool it.
                _close_quietly(sock)
            else:
                self._checkin(sock)
        latency = time.perf_counter() - start
        self.stats.record(
            method, request_bytes, response_bytes, latency, error=error is not None
        )
        return CallOutcome(
            value=value,
            error=error,
            latency=latency,
            request_bytes=request_bytes,
            response_bytes=response_bytes,
        )

    def invoke(
        self,
        target: Any,
        method: str,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Perform one remote call; failures raise (but are still recorded)."""
        outcome = self.invoke_detailed(target, method, args, kwargs)
        if outcome.error is not None:
            raise outcome.error
        return outcome.value

    def ping(self) -> Dict[str, Any]:
        """The health-check handshake: the server's identity dictionary."""
        return self.invoke(None, PING_METHOD)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "SocketTransport(%s)" % self.address


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:  # pragma: no cover - close never fails on CPython
        pass
