"""Scatter-gather transport over a cluster of share servers.

One :class:`~repro.rmi.transport.SimulatedTransport` per server — each with
its own :class:`~repro.rmi.stats.CallStats`, codec round-trip and latency
model — plus the cluster-level operations the
:class:`~repro.filters.cluster.ClusterClient` needs:

* :meth:`ClusterTransport.invoke` — one call against one named server,
* :meth:`ClusterTransport.invoke_all` — scatter the same call to every (or a
  chosen subset of) server(s) and gather per-server
  :class:`ClusterReply` values *without* aborting on individual failures —
  the caller decides whether the surviving subset suffices,
* fault injection: :meth:`set_down` (a server that stays unreachable) and
  :meth:`inject_faults` (the next *k* calls fail), both recorded as errors
  in the affected server's stats so flaky-run traffic is never under-counted,
* deterministic per-server latency jitter (a seeded multiplier on the
  configured latencies, modelling heterogeneous hardware),
* :meth:`aggregate_stats` — the merged cluster-wide
  :class:`~repro.rmi.stats.CallStats` via :meth:`CallStats.merge`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.prg.generator import SplitMix64
from repro.rmi.codec import Codec
from repro.rmi.stats import CallStats
from repro.rmi.transport import SimulatedTransport


class ServerDownError(ConnectionError):
    """Raised when invoking a server marked down (unreachable)."""


class InjectedFaultError(ConnectionError):
    """Raised by the transport for an injected transient failure."""


@dataclass(frozen=True)
class ClusterReply:
    """One server's answer to a scattered call."""

    #: index of the answering server
    server: int
    #: decoded return value (``None`` when the call failed)
    value: Any = None
    #: the exception the call raised, ``None`` on success
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        """Whether the call succeeded."""
        return self.error is None


class ClusterTransport:
    """Carries calls between one client and ``n`` share servers."""

    def __init__(
        self,
        servers: Sequence[Any],
        per_call_latency: float = 0.0,
        per_byte_latency: float = 0.0,
        codec: Optional[Codec] = None,
        latency_jitter: float = 0.0,
        jitter_seed: int = 20050905,
    ):
        """``servers`` are the target objects (typically ``ServerFilter`` s).

        ``latency_jitter`` spreads the configured latencies per server by a
        deterministic factor in ``[1, 1 + latency_jitter)`` drawn from
        ``jitter_seed`` — server 2 of a jittered cluster is always exactly
        as slow, so experiments stay reproducible.
        """
        if not servers:
            raise ValueError("a cluster needs at least one server")
        if latency_jitter < 0:
            raise ValueError("latency_jitter must be non-negative")
        self.servers = list(servers)
        rng = SplitMix64(jitter_seed)
        self.transports: List[SimulatedTransport] = []
        for _ in self.servers:
            factor = 1.0 + latency_jitter * rng.next_float()
            self.transports.append(
                SimulatedTransport(
                    per_call_latency=per_call_latency * factor,
                    per_byte_latency=per_byte_latency * factor,
                    codec=codec,
                )
            )
        self._down: set = set()
        self._fault_budget: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Topology and fault control
    # ------------------------------------------------------------------

    @property
    def num_servers(self) -> int:
        """Number of servers behind this transport."""
        return len(self.servers)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self.servers):
            raise IndexError("server index %d out of range for %d servers" % (index, len(self.servers)))

    def set_down(self, index: int, down: bool = True) -> None:
        """Mark a server unreachable (or bring it back with ``down=False``)."""
        self._check_index(index)
        if down:
            self._down.add(index)
        else:
            self._down.discard(index)

    def is_down(self, index: int) -> bool:
        """Whether a server is currently marked unreachable."""
        self._check_index(index)
        return index in self._down

    def live_servers(self) -> List[int]:
        """Indices of servers not marked down."""
        return [index for index in range(len(self.servers)) if index not in self._down]

    def inject_faults(self, index: int, count: int = 1) -> None:
        """Make the next ``count`` invocations of one server fail transiently."""
        self._check_index(index)
        if count < 0:
            raise ValueError("fault count must be non-negative")
        self._fault_budget[index] = self._fault_budget.get(index, 0) + count

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------

    def invoke(
        self,
        index: int,
        method: str,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """One remote call against server ``index``.

        Unreachable servers and injected faults raise — but are still
        recorded in that server's stats (zero payload bytes, the per-call
        latency as the timeout cost, ``error=True``).
        """
        self._check_index(index)
        transport = self.transports[index]
        if index in self._down:
            transport.stats.record(method, 0, 0, transport.per_call_latency, error=True)
            raise ServerDownError("server %d is down" % index)
        budget = self._fault_budget.get(index, 0)
        if budget > 0:
            self._fault_budget[index] = budget - 1
            transport.stats.record(method, 0, 0, transport.per_call_latency, error=True)
            raise InjectedFaultError("injected fault on server %d (%s)" % (index, method))
        return transport.invoke(self.servers[index], method, args, kwargs)

    def invoke_all(
        self,
        method: str,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        indices: Optional[Sequence[int]] = None,
    ) -> List[ClusterReply]:
        """Scatter one call to many servers, gather per-server replies.

        Individual failures are captured in the reply's ``error`` instead of
        propagating, so a partial gather is an ordinary outcome — threshold
        schemes only need enough of the replies to be good.
        """
        targets = range(len(self.servers)) if indices is None else indices
        replies: List[ClusterReply] = []
        for index in targets:
            try:
                replies.append(ClusterReply(index, value=self.invoke(index, method, args, kwargs)))
            except Exception as exc:  # gathered, not propagated
                replies.append(ClusterReply(index, error=exc))
        return replies

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def stats_of(self, index: int) -> CallStats:
        """The per-server call statistics."""
        self._check_index(index)
        return self.transports[index].stats

    @property
    def per_server_stats(self) -> List[CallStats]:
        """Every server's stats, in server order."""
        return [transport.stats for transport in self.transports]

    def count_query(self, amount: int = 1) -> None:
        """Tick the query counter on every server's stats.

        Each server's ``calls_per_query`` then reads "calls this server did
        per executed query", whether or not the query touched it.
        """
        for transport in self.transports:
            transport.stats.count_query(amount)

    def aggregate_stats(self) -> CallStats:
        """A merged snapshot of every server's stats.

        ``queries`` is the maximum over servers rather than the sum: the
        per-server traces cover the *same* queries, so summing (what
        :meth:`CallStats.merge` does for disjoint traces) would deflate the
        cluster-wide per-query figures by a factor of n.
        """
        merged = CallStats()
        for transport in self.transports:
            merged.merge(transport.stats)
        merged.queries = max(
            (transport.stats.queries for transport in self.transports), default=0
        )
        return merged

    def reset_stats(self) -> None:
        """Zero every server's counters (between experiment runs)."""
        for transport in self.transports:
            transport.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "ClusterTransport(servers=%d, down=%s)" % (len(self.servers), sorted(self._down))
