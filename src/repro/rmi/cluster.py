"""Concurrent scatter-gather transport over a cluster of share servers.

One :class:`~repro.rmi.transport.SimulatedTransport` per server — each with
its own :class:`~repro.rmi.stats.CallStats`, codec round-trip and latency
model — plus the cluster-level operations the
:class:`~repro.filters.cluster.ClusterClient` needs:

* :meth:`ClusterTransport.invoke` — one call against one named server,
* :meth:`ClusterTransport.invoke_all` — scatter the same call to every (or a
  chosen subset of) server(s) over a shared thread pool and gather per-server
  :class:`ClusterReply` values *without* aborting on individual failures —
  the caller decides whether the surviving subset suffices,
* :meth:`ClusterTransport.invoke_quorum` — the latency-optimal read path:
  scatter to all targets but return as soon as ``k`` *successful* replies
  have arrived; the remaining in-flight calls drain in the background and
  are still recorded in their server's stats,
* fault injection: :meth:`set_down` (a server that stays unreachable) and
  :meth:`inject_faults` (the next *k* calls fail), both recorded as errors
  in the affected server's stats so flaky-run traffic is never under-counted,
* deterministic per-server latency jitter (a seeded multiplier on the
  configured latencies, modelling heterogeneous hardware),
* :meth:`aggregate_stats` — the merged cluster-wide
  :class:`~repro.rmi.stats.CallStats` via :meth:`CallStats.merge`.

Determinism under concurrency
-----------------------------

For *simulated* transports latencies are modeled (accumulated in the
stats), never slept — so "which reply arrives first" must not depend on
thread scheduling.  Replies are therefore admitted in **modeled arrival
order**: sorted by ``(latency, server index)``, where a still-outstanding
call is only overtaken once its latency lower bound (the server's
configured per-call latency) provably exceeds the candidate's arrival
time.  The admitted reply sequence — and with it every downstream
reconstruction, verification and counter — is a pure function of the
configuration, while the calls themselves genuinely execute concurrently
on the pool.

*Measured* transports (``transport.measured`` is true — the socket and
asyncio wires) have no useful lower bound: their ``per_call_latency`` is
0.0, under which the overtake proof degenerates to wait-for-all.  A
quorum read over measured transports therefore admits replies **on
arrival** — real completion order — which is where the first-k latency
win actually comes from on a wire.  Results stay deterministic anyway:
any k threshold replies reconstruct the same secret, and per-server
call/byte counters are independent of admission order.

The makespan clock
------------------

``simulated_latency`` accumulates per-server busy time; the *makespan*
clock models the client's wall-clock instead.  Every round advances it by

* the **sum** of the contacted servers' call latencies when the transport
  runs sequentially (``concurrency=False``) — the cost model the scatter
  loop used to imply,
* the **maximum** (for a full gather) or the **k-th modeled arrival** (for
  a first-k quorum read) when scattering concurrently,

plus a fixed ``round_overhead``.  A round flagged ``overlap=True`` starts at
the previous round's start time instead of the current clock — the prefetch
pipeline uses this to model structural work hidden behind in-flight share
fetches.  Since the inputs are modeled, the concurrency win is deterministic
and measurable without real sleeps.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.prg.generator import SplitMix64
from repro.rmi.codec import Codec
from repro.rmi.stats import CallStats
from repro.rmi.transport import SimulatedTransport


class ServerDownError(ConnectionError):
    """Raised when invoking a server marked down (unreachable)."""


class InjectedFaultError(ConnectionError):
    """Raised by the transport for an injected transient failure."""


@dataclass(frozen=True)
class ClusterReply:
    """One server's answer to a scattered call."""

    #: index of the answering server
    server: int
    #: decoded return value (``None`` when the call failed)
    value: Any = None
    #: the exception the call raised, ``None`` on success
    error: Optional[BaseException] = None
    #: modeled latency of this call on its server
    latency: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the call succeeded."""
        return self.error is None


def _arrival_key(reply: ClusterReply) -> Tuple[float, int]:
    """Modeled arrival order: by latency, server index breaking ties."""
    return (reply.latency, reply.server)


class ClusterTransport:
    """Carries calls between one client and ``n`` share servers."""

    def __init__(
        self,
        servers: Sequence[Any],
        per_call_latency: float = 0.0,
        per_byte_latency: float = 0.0,
        codec: Optional[Codec] = None,
        latency_jitter: float = 0.0,
        jitter_seed: int = 20050905,
        concurrency: bool = True,
        max_workers: Optional[int] = None,
        round_overhead: float = 0.0,
        per_server_latency: Optional[Sequence[float]] = None,
        transports: Optional[Sequence[Any]] = None,
    ):
        """``servers`` are the target objects (typically ``ServerFilter`` s).

        ``latency_jitter`` spreads the configured latencies per server by a
        deterministic factor in ``[1, 1 + latency_jitter)`` drawn from
        ``jitter_seed`` — server 2 of a jittered cluster is always exactly
        as slow, so experiments stay reproducible.  ``per_server_latency``
        pins each server's per-call latency explicitly instead (jitter does
        not apply on top); tests use it to drive quorum completion orders.

        ``concurrency=False`` restores the sequential scatter loop — same
        calls, same replies, but the makespan clock charges each round with
        the sum of the per-server latencies instead of the critical path.
        ``round_overhead`` is added to the clock once per round, modelling
        the fixed cost of issuing a scatter.

        ``transports`` supplies one pre-built per-server transport instead
        of the internally constructed :class:`SimulatedTransport` s — this
        is how a deployment runs over *real* connections: one
        :class:`~repro.rmi.socket.SocketTransport` per server (``servers``
        then holds the peer addresses, which socket transports ignore as
        call targets).  Any object with the ``invoke_detailed`` /
        ``stats`` / ``per_call_latency`` surface works.  The latency-model
        parameters configure the internal transports only, so combining
        them with ``transports`` is rejected: a measured transport's
        latency cannot be modelled on top.
        """
        if not servers:
            raise ValueError("a cluster needs at least one server")
        if latency_jitter < 0:
            raise ValueError("latency_jitter must be non-negative")
        if round_overhead < 0:
            raise ValueError("round_overhead must be non-negative")
        self.servers = list(servers)
        if per_server_latency is not None and len(per_server_latency) != len(self.servers):
            raise ValueError(
                "per_server_latency has %d entries for %d servers"
                % (len(per_server_latency), len(self.servers))
            )
        if transports is not None:
            if len(transports) != len(self.servers):
                raise ValueError(
                    "got %d transports for %d servers" % (len(transports), len(self.servers))
                )
            if per_call_latency or per_byte_latency or latency_jitter or (
                per_server_latency is not None
            ):
                raise ValueError(
                    "latency-model parameters do not apply to supplied transports"
                )
            self.transports: List[Any] = list(transports)
        else:
            rng = SplitMix64(jitter_seed)
            self.transports = []
            for index in range(len(self.servers)):
                factor = 1.0 + latency_jitter * rng.next_float()
                if per_server_latency is not None:
                    call_latency = per_server_latency[index]
                    byte_latency = per_byte_latency
                else:
                    call_latency = per_call_latency * factor
                    byte_latency = per_byte_latency * factor
                self.transports.append(
                    SimulatedTransport(
                        per_call_latency=call_latency,
                        per_byte_latency=byte_latency,
                        codec=codec,
                    )
                )
        self.concurrency = bool(concurrency)
        # Measured transports (socket/asyncio) admit quorum replies in real
        # completion order; simulated ones keep the deterministic modeled
        # arrival order (see the module docstring).
        self._measured = any(
            getattr(transport, "measured", False) for transport in self.transports
        )
        self.round_overhead = round_overhead
        self._max_workers = max_workers
        self._executor: Optional[ThreadPoolExecutor] = None
        # One lock covers the fault state (down-set + budgets: the
        # read-then-decrement of a budget must be atomic under concurrent
        # invokes), the makespan clock and the background-drain bookkeeping.
        self._lock = threading.Lock()
        self._down: set = set()
        self._fault_budget: Dict[int, int] = {}
        self._clock = 0.0
        self._round_start = 0.0
        self._background: List[Future] = []

    # ------------------------------------------------------------------
    # Topology and fault control
    # ------------------------------------------------------------------

    @property
    def num_servers(self) -> int:
        """Number of servers behind this transport."""
        return len(self.servers)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self.servers):
            raise IndexError("server index %d out of range for %d servers" % (index, len(self.servers)))

    def set_down(self, index: int, down: bool = True) -> None:
        """Mark a server unreachable (or bring it back with ``down=False``).

        In-flight background stragglers are drained first, so the flag only
        affects calls issued *after* this point — never a race with a
        first-k round that is still settling.
        """
        self._check_index(index)
        self.drain()
        with self._lock:
            if down:
                self._down.add(index)
            else:
                self._down.discard(index)

    def is_down(self, index: int) -> bool:
        """Whether a server is currently marked unreachable."""
        self._check_index(index)
        with self._lock:
            return index in self._down

    def live_servers(self) -> List[int]:
        """Indices of servers not marked down."""
        with self._lock:
            down = set(self._down)
        return [index for index in range(len(self.servers)) if index not in down]

    def mark_quarantined(self, index: int) -> None:
        """Route reads around a server for health reasons (supervisor path).

        Same routing effect as :meth:`set_down`, but the event is accounted:
        the server's :class:`~repro.rmi.stats.CallStats` quarantine counter
        ticks, so ``aggregate_stats()`` and the gateway ``__stats__`` wire
        method expose how often the fleet degraded.
        """
        self.set_down(index, True)
        self.transports[index].stats.count_quarantine()

    def mark_healed(
        self,
        index: int,
        transport: Optional[Any] = None,
        server: Optional[Any] = None,
    ) -> None:
        """Bring a healed server back into rotation (supervisor path).

        Optionally swaps in a replacement per-server ``transport`` (socket
        fleets: the new subprocess's connection) and/or ``server`` target
        (simulated fleets: the rebuilt :class:`ServerFilter`).  A swapped-in
        transport inherits the old one's accumulated counters so the
        per-server trace stays continuous across the generation change; the
        old transport is closed.  Finally the down flag clears and the heal
        counter ticks.
        """
        self._check_index(index)
        self.drain()
        if server is not None:
            self.servers[index] = server
        if transport is not None:
            old = self.transports[index]
            transport.stats.merge(old.stats)
            old_close = getattr(old, "close", None)
            if old_close is not None:
                old_close()
            self.transports[index] = transport
        self.set_down(index, False)
        self.transports[index].stats.count_heal()

    def inject_faults(self, index: int, count: int = 1) -> None:
        """Make the next ``count`` invocations of one server fail transiently.

        Drains in-flight calls first: a straggler from an earlier first-k
        round must not race the next round for the new budget (the consumed
        fault would then depend on thread scheduling).
        """
        self._check_index(index)
        if count < 0:
            raise ValueError("fault count must be non-negative")
        self.drain()
        with self._lock:
            self._fault_budget[index] = self._fault_budget.get(index, 0) + count

    def latency_of(self, index: int) -> float:
        """The configured (jittered) per-call latency of one server.

        This is also the *lower bound* of any call's modeled latency on that
        server, which is what the quorum gather uses to admit replies in
        modeled arrival order without waiting for provably slower servers.
        """
        self._check_index(index)
        return self.transports[index].per_call_latency

    # ------------------------------------------------------------------
    # Makespan clock
    # ------------------------------------------------------------------

    def _advance_clock(self, elapsed: float, overlap: bool) -> None:
        """Charge one round to the modeled wall-clock.

        A normal round starts when the previous one ended; an ``overlap``
        round starts *alongside* the previous round (the prefetch pipeline),
        so it only advances the clock past the previous round's end when it
        is the longer of the two.
        """
        elapsed += self.round_overhead
        with self._lock:
            if overlap:
                self._clock = max(self._clock, self._round_start + elapsed)
            else:
                self._round_start = self._clock
                self._clock += elapsed

    def makespan(self) -> float:
        """The modeled wall-clock spent so far (drains in-flight calls first).

        Unlike the per-server ``simulated_latency`` sums, this gauge charges
        every scatter round with its *critical path*: the slowest contacted
        server for a full gather, the k-th modeled arrival for a first-k
        quorum read, the plain latency sum when the transport is sequential.
        """
        self.drain()
        with self._lock:
            return self._clock

    def reset_makespan(self) -> None:
        """Zero the wall-clock gauge (between experiment runs)."""
        self.drain()
        with self._lock:
            self._clock = 0.0
            self._round_start = 0.0

    def drain(self) -> None:
        """Wait for every background-draining call to finish.

        First-k quorum reads leave their stragglers running; their stats
        land when each call completes.  Every accounting reader
        (:meth:`stats_of`, :attr:`per_server_stats`, :meth:`aggregate_stats`,
        :meth:`count_query`, :meth:`makespan`) drains first so counters are
        settled and deterministic.
        """
        with self._lock:
            pending = list(self._background)
            self._background.clear()
        for future in pending:
            future.exception()  # waits; outcome futures never raise

    def close(self) -> None:
        """Drain in-flight calls, release the scatter pool and per-server
        connection resources.

        Idempotent: every step tolerates already-released state, so CI
        teardown and the facade's ``__exit__`` can call it unconditionally.
        The transport stays usable — the pool is recreated lazily on the
        next concurrent scatter, and a closed
        :class:`~repro.rmi.socket.SocketTransport` simply dials afresh — so
        this is also safe between runs of a long-lived deployment to return
        idle worker threads and sockets.
        """
        self.drain()
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        for transport in self.transports:
            transport_close = getattr(transport, "close", None)
            if transport_close is not None:
                transport_close()

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------

    def _pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                workers = self._max_workers or min(len(self.servers), 16)
                self._executor = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="cluster-scatter"
                )
            return self._executor

    def _outcome(
        self,
        index: int,
        method: str,
        args: Tuple[Any, ...],
        kwargs: Optional[Dict[str, Any]],
    ) -> ClusterReply:
        """One call against one server, with failures captured, not raised."""
        transport = self.transports[index]
        with self._lock:
            down = index in self._down
            if not down:
                budget = self._fault_budget.get(index, 0)
                faulted = budget > 0
                if faulted:
                    self._fault_budget[index] = budget - 1
            else:
                faulted = False
        if down:
            transport.stats.record(method, 0, 0, transport.per_call_latency, error=True)
            return ClusterReply(
                index,
                error=ServerDownError("server %d is down" % index),
                latency=transport.per_call_latency,
            )
        if faulted:
            transport.stats.record(method, 0, 0, transport.per_call_latency, error=True)
            return ClusterReply(
                index,
                error=InjectedFaultError("injected fault on server %d (%s)" % (index, method)),
                latency=transport.per_call_latency,
            )
        try:
            outcome = transport.invoke_detailed(self.servers[index], method, args, kwargs)
        except Exception as exc:
            # Request-encoding failures (a caller-side bug) are captured like
            # any other per-server failure so a scattered round never aborts
            # half-issued; they carry no latency and are not in the stats,
            # matching the single-transport behaviour.
            return ClusterReply(index, error=exc)
        return ClusterReply(
            index, value=outcome.value, error=outcome.error, latency=outcome.latency
        )

    def invoke(
        self,
        index: int,
        method: str,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        overlap: bool = False,
    ) -> Any:
        """One remote call against server ``index``.

        Unreachable servers and injected faults raise — but are still
        recorded in that server's stats (zero payload bytes, the per-call
        latency as the timeout cost, ``error=True``).
        """
        self._check_index(index)
        reply = self._outcome(index, method, args, kwargs)
        self._advance_clock(reply.latency, overlap)
        if reply.error is not None:
            raise reply.error
        return reply.value

    def invoke_all(
        self,
        method: str,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        indices: Optional[Sequence[int]] = None,
        overlap: bool = False,
    ) -> List[ClusterReply]:
        """Scatter one call to many servers, gather per-server replies.

        Individual failures are captured in the reply's ``error`` instead of
        propagating, so a partial gather is an ordinary outcome — threshold
        schemes only need enough of the replies to be good.  Replies come
        back in target order either way; with ``concurrency`` the calls run
        on the pool and the round costs the slowest server instead of the
        sum.
        """
        targets = list(range(len(self.servers)) if indices is None else indices)
        for index in targets:
            self._check_index(index)
        if self.concurrency and len(targets) > 1:
            pool = self._pool()
            futures = [
                pool.submit(self._outcome, index, method, args, kwargs) for index in targets
            ]
            replies = [future.result() for future in futures]
            elapsed = max((reply.latency for reply in replies), default=0.0)
        else:
            replies = [self._outcome(index, method, args, kwargs) for index in targets]
            elapsed = self._sequential_elapsed(replies)
        self._advance_clock(elapsed, overlap)
        return replies

    def _sequential_elapsed(self, replies: Sequence[ClusterReply]) -> float:
        """Round cost of a sequential scatter: one server after the other."""
        return sum(reply.latency for reply in replies)

    def invoke_quorum(
        self,
        method: str,
        args: Tuple[Any, ...] = (),
        k: int = 1,
        kwargs: Optional[Dict[str, Any]] = None,
        indices: Optional[Sequence[int]] = None,
        overlap: bool = False,
    ) -> List[ClusterReply]:
        """Scatter to every target but return after ``k`` successful replies.

        The returned list holds the replies *admitted* before the quorum was
        reached, in arrival order (modeled for simulated transports, real
        completion order for measured ones) — the first ``k`` successes plus
        any failures that arrived among them.  Outstanding calls keep
        draining in the background (their stats land when they complete; see
        :meth:`drain`), which is exactly the latency-optimal behaviour of a
        real first-k read: the client stops waiting, the wire traffic
        happens anyway.

        When fewer than ``k`` targets succeed, every reply is admitted and
        the caller sees the shortfall.  The makespan clock is charged with
        the k-th modeled arrival (or the last arrival on a shortfall); the
        sequential transport still issues every call and charges the sum,
        preserving identical replies and counters between the two modes.
        """
        if k < 1:
            raise ValueError("quorum size must be at least 1, got %d" % k)
        targets = list(range(len(self.servers)) if indices is None else indices)
        for index in targets:
            self._check_index(index)
        if not targets:
            return []
        if self.concurrency and len(targets) > 1:
            admitted = self._gather_quorum_concurrent(method, args, kwargs, targets, k)
            elapsed = admitted[-1].latency if admitted else 0.0
        else:
            replies = [self._outcome(index, method, args, kwargs) for index in targets]
            admitted = self._admit(sorted(replies, key=_arrival_key), k)
            elapsed = self._sequential_elapsed(replies)
        self._advance_clock(elapsed, overlap)
        return admitted

    @staticmethod
    def _admit(arrivals: Sequence[ClusterReply], k: int) -> List[ClusterReply]:
        """The prefix of ``arrivals`` up to (and including) the k-th success."""
        admitted: List[ClusterReply] = []
        successes = 0
        for reply in arrivals:
            admitted.append(reply)
            if reply.ok:
                successes += 1
                if successes >= k:
                    break
        return admitted

    def _gather_quorum_concurrent(
        self,
        method: str,
        args: Tuple[Any, ...],
        kwargs: Optional[Dict[str, Any]],
        targets: List[int],
        k: int,
    ) -> List[ClusterReply]:
        """Admit replies up to the k-th success, leaving stragglers to drain.

        Measured transports admit in real completion order (the reply that
        actually arrived first is admitted first); simulated transports
        admit in modeled arrival order, where a completed reply may only be
        admitted once no still-outstanding call could arrive before it: an
        outstanding server's latency is at least its configured per-call
        latency (payload terms only add), so once that lower bound exceeds
        the candidate's arrival key the order is settled.  When the quorum
        completes early, the rest of the futures are left to drain in the
        background.
        """
        pool = self._pool()
        outstanding: Dict[Future, int] = {}
        for index in targets:
            outstanding[pool.submit(self._outcome, index, method, args, kwargs)] = index
        admitted: List[ClusterReply] = []
        successes = 0
        if self._measured:
            # Admit-on-arrival: no lower-bound proof exists for a measured
            # wire, and none is needed — completion order *is* arrival order.
            while successes < k and outstanding:
                done, _ = wait(list(outstanding), return_when=FIRST_COMPLETED)
                # A batch of simultaneously-completed futures has no further
                # arrival information; order it by the measured latency for
                # stability.
                for future in sorted(done, key=lambda item: _arrival_key(item.result())):
                    outstanding.pop(future)
                    admitted.append(future.result())
                    if future.result().ok:
                        successes += 1
                        if successes >= k:
                            break
            if outstanding:
                with self._lock:
                    self._background.extend(outstanding)
            return admitted
        completed: Deque[ClusterReply] = deque()  # buffer, sorted by modeled arrival
        while successes < k and (outstanding or completed):
            # Admit every buffered reply that can no longer be overtaken by
            # an in-flight call (whose arrival is at least its server's
            # per-call latency).
            while completed and successes < k:
                head_key = _arrival_key(completed[0])
                if outstanding and min(
                    (self.latency_of(i), i) for i in outstanding.values()
                ) <= head_key:
                    break  # an in-flight call may still arrive first
                head = completed.popleft()
                admitted.append(head)
                if head.ok:
                    successes += 1
            if successes >= k:
                break
            if not outstanding:
                continue  # only the buffer is left; next pass drains it
            done, _ = wait(list(outstanding), return_when=FIRST_COMPLETED)
            for future in done:
                outstanding.pop(future)
                reply = future.result()
                key = _arrival_key(reply)
                position = 0
                while position < len(completed) and _arrival_key(completed[position]) <= key:
                    position += 1
                completed.insert(position, reply)
        if outstanding:
            with self._lock:
                self._background.extend(outstanding)
        return admitted

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def stats_of(self, index: int) -> CallStats:
        """The per-server call statistics (drains in-flight calls first)."""
        self._check_index(index)
        self.drain()
        return self.transports[index].stats

    @property
    def per_server_stats(self) -> List[CallStats]:
        """Every server's stats, in server order (drained first, so the
        counters are settled even right after a first-k quorum read)."""
        self.drain()
        return [transport.stats for transport in self.transports]

    def count_query(self, amount: int = 1) -> None:
        """Tick the query counter on every server's stats.

        Each server's ``calls_per_query`` then reads "calls this server did
        per executed query", whether or not the query touched it.  Draining
        first settles any straggler calls of the finished query, so the
        per-query figures stay deterministic under concurrency.
        """
        self.drain()
        for transport in self.transports:
            transport.stats.count_query(amount)

    def aggregate_stats(self) -> CallStats:
        """A merged snapshot of every server's stats.

        ``queries`` is the maximum over servers rather than the sum: the
        per-server traces cover the *same* queries, so summing (what
        :meth:`CallStats.merge` does for disjoint traces) would deflate the
        cluster-wide per-query figures by a factor of n.  ``makespan`` is
        the cluster clock, not the per-server sum, for the same reason.
        """
        self.drain()
        merged = CallStats()
        for transport in self.transports:
            merged.merge(transport.stats)
        merged.queries = max(
            (transport.stats.queries for transport in self.transports), default=0
        )
        with self._lock:
            merged.makespan = self._clock
        return merged

    def reset_stats(self) -> None:
        """Zero every server's counters and the clock (between runs)."""
        self.drain()
        for transport in self.transports:
            transport.stats.reset()
        with self._lock:
            self._clock = 0.0
            self._round_start = 0.0

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        with self._lock:
            down = sorted(self._down)
        return "ClusterTransport(servers=%d, down=%s)" % (len(self.servers), down)
