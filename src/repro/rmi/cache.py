"""Gateway-side result cache: identical reads answered once per epoch.

The query model is read-dominated — clients repeatedly evaluate XPath
steps over a bulk-loaded encrypted document — so concurrent gateway
sessions running the same query mix redo *identical* upstream scatters,
Lagrange combination and share verification.  :class:`GatewayCache` stops
that: results of the read-only method surface are keyed by
``(method, canonical-args, deployment epoch)`` and shared across every
session behind the gateway.

Design points (mirroring the decoded-share LRU of
:class:`~repro.filters.server.ServerFilter`):

* **bounded bytes, LRU** — entries live in an :class:`OrderedDict`
  ordered by recency; storing past ``max_bytes`` evicts from the cold
  end.  Sizes are cheap recursive estimates of the codec-serialisable
  payloads, not exact interpreter accounting.
* **lock discipline** — one :class:`threading.RLock` guards the entry
  table and byte gauge, so the sync surface (:meth:`lookup` /
  :meth:`store`, used by a cache-aware
  :class:`~repro.filters.cluster.ClusterClient`) is safe from worker
  threads while the gateway's event loop drives the async surface.
* **single-flight** — :meth:`aget_or_compute` keeps a loop-confined map
  of in-flight computations: N sessions awaiting the same missing key
  trigger **one** upstream scatter and all share its result (counted as
  ``coalesced``).  Failures are never cached.
* **epoch invalidation** — every key carries the deployment epoch;
  :meth:`bump_epoch` increments it and drops every entry wholesale.
  This is the invalidation handle the future write path calls when it
  mutates rows (see ROADMAP): until row-granular versions exist, any
  write simply starts a new epoch.  A computation that was in flight
  across a bump completes for its waiters but is *not* stored.
* **immutability contract** — cached values are handed to every session
  by reference.  That is sound here because the cacheable surface
  returns plain codec values (ints, vectors, share bundles) that the
  client stack treats as read-only; anything mutating a result must
  copy it first.

Counters (hits, misses, coalesces, evictions, epoch drops) are a
:class:`~repro.rmi.stats.CacheStats` and surface through the gateway's
``__stats__`` method.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from repro.rmi.methods import (
    CACHE_KEY_ALIASES,
    CACHEABLE_METHODS,
    SHARE_READ_METHODS,
    STRUCTURAL_READ_METHODS,
)
from repro.rmi.stats import CacheStats

# The method sets and alias folding live in the declarative spec table
# (:mod:`repro.rmi.methods`); the names above are re-exported from their
# historical home so existing imports keep working.  Queue-cursor methods
# (``open_queue``, ``next_node``, …) are deliberately not cacheable
# there: a cursor is per-session mutable state and must NEVER be served
# from a shared cache.

#: default byte bound used by the demo and the benches (the CLI default
#: is 0 = caching off, preserving the PR 6 gateway behaviour)
DEFAULT_CACHE_BYTES = 32 * 1024 * 1024


def canonical_args(args: Any) -> Optional[Tuple[Any, ...]]:
    """A hashable canonical form of a call's positional arguments.

    Lists and tuples collapse to tuples (the wire codec does not
    distinguish them), dicts to sorted item tuples.  Returns ``None``
    when any leaf is unhashable — such a call is simply not cacheable.
    """
    try:
        return _canonical(tuple(args))
    except TypeError:
        return None


def _canonical(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _canonical(item)) for key, item in value.items()))
    hash(value)  # unhashable leaves raise TypeError for canonical_args
    return value


def estimate_bytes(value: Any) -> int:
    """A cheap recursive size estimate of a codec-serialisable value.

    Deliberately approximate (flat per-scalar cost, container overhead
    plus children) — the bound exists to keep the cache from growing
    without limit, not to model the interpreter's allocator.
    """
    if value is None or isinstance(value, (bool, int, float)):
        return 28
    if isinstance(value, (str, bytes)):
        return 49 + len(value)
    if isinstance(value, (list, tuple)):
        return 56 + sum(estimate_bytes(item) for item in value)
    if isinstance(value, dict):
        return 64 + sum(
            estimate_bytes(key) + estimate_bytes(item) for key, item in value.items()
        )
    return 128  # anything exotic: a conservative flat guess


class GatewayCache:
    """Bounded, epoch-keyed, single-flight result cache for read methods.

    The sync surface (:meth:`lookup` / :meth:`store`) serves cache-aware
    sync clients; the async surface (:meth:`aget_or_compute`) adds
    single-flight coalescing for the gateway's event loop.  One instance
    may serve both at once — the entry table is lock-guarded — but the
    in-flight map is loop-confined: ``aget_or_compute`` must only ever
    run on one event loop.
    """

    def __init__(self, max_bytes: int, stats: Optional[CacheStats] = None):
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive, got %r" % (max_bytes,))
        self.max_bytes = int(max_bytes)
        self.stats = stats or CacheStats()
        self._lock = threading.RLock()
        #: key -> (value, estimated bytes); insertion end = most recent
        self._entries: "OrderedDict[Tuple[Any, ...], Tuple[Any, int]]" = OrderedDict()
        self._bytes = 0
        self._epoch = 0
        #: loop-confined: in-flight computations keyed like the entries
        self._inflight: Dict[Tuple[Any, ...], "asyncio.Task"] = {}

    # ------------------------------------------------------------------
    # Keys and epochs
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The current deployment epoch (bumped to invalidate wholesale)."""
        with self._lock:
            return self._epoch

    def key_for(self, method: str, args: Any) -> Optional[Tuple[Any, ...]]:
        """The cache key of one call, or ``None`` when not cacheable."""
        canon = canonical_args(args)
        if canon is None:
            return None
        method = CACHE_KEY_ALIASES.get(method, method)
        with self._lock:
            return (method, canon, self._epoch)

    def bump_epoch(self) -> int:
        """Start a new epoch: every cached entry is dropped at once.

        The write path's wholesale invalidation handle — callable from
        any thread.  Returns the new epoch.  Computations in flight
        across the bump still answer their waiters but are not stored
        (their key carries the old epoch).
        """
        with self._lock:
            self._epoch += 1
            dropped = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            epoch = self._epoch
        if dropped:
            self.stats.record_invalidated(dropped)
        return epoch

    # ------------------------------------------------------------------
    # Sync surface (cache-aware sync clients)
    # ------------------------------------------------------------------

    def _probe(self, key: Tuple[Any, ...]) -> Tuple[bool, Any]:
        """(found, value) without counter side effects; refreshes recency."""
        with self._lock:
            if key[2] != self._epoch:
                return False, None
            entry = self._entries.get(key)
            if entry is None:
                return False, None
            self._entries.move_to_end(key)
            return True, entry[0]

    def lookup(self, method: str, args: Any) -> Tuple[bool, Any]:
        """Look one call up: ``(True, value)`` on a hit, ``(False, None)``
        otherwise (also for uncacheable arguments)."""
        key = self.key_for(method, args)
        if key is None:
            self.stats.record_miss()
            return False, None
        found, value = self._probe(key)
        if found:
            self.stats.record_hit()
        else:
            self.stats.record_miss()
        return found, value

    def store(self, method: str, args: Any, value: Any) -> bool:
        """Admit one computed result (returns whether it was stored)."""
        key = self.key_for(method, args)
        if key is None:
            return False
        return self._store_key(key, value)

    def _store_key(self, key: Tuple[Any, ...], value: Any) -> bool:
        size = estimate_bytes(key[1]) + estimate_bytes(value) + 96
        if size > self.max_bytes:
            self.stats.record_oversized()
            return False
        evicted = 0
        with self._lock:
            if key[2] != self._epoch:
                return False  # the epoch moved on while this was computing
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, size)
            self._bytes += size
            while self._bytes > self.max_bytes and self._entries:
                _, (_, freed) = self._entries.popitem(last=False)
                self._bytes -= freed
                evicted += 1
        self.stats.record_store()
        if evicted:
            self.stats.record_eviction(evicted)
        return True

    # ------------------------------------------------------------------
    # Async surface (the gateway's single-flight path)
    # ------------------------------------------------------------------

    async def aget_or_compute(
        self,
        method: str,
        args: Any,
        compute: Callable[[], Awaitable[Any]],
    ) -> Any:
        """One read through the cache, coalescing identical misses.

        On a miss, the first caller becomes the *leader*: its
        ``compute()`` coroutine runs as an independent task whose result
        is stored and shared.  Every concurrent caller of the same key
        awaits that one task (``coalesced``) instead of scattering
        upstream again.  The task is shielded from waiter cancellation —
        a client disconnecting mid-wait must not kill the computation
        the other N-1 sessions are waiting on.  Errors propagate to all
        waiters and are never cached.
        """
        key = self.key_for(method, args)
        if key is None:
            self.stats.record_miss()
            return await compute()
        found, value = self._probe(key)
        if found:
            self.stats.record_hit()
            return value
        task = self._inflight.get(key)
        if task is not None:
            self.stats.record_coalesced()
            return await asyncio.shield(task)
        self.stats.record_miss()
        task = asyncio.ensure_future(compute())
        self._inflight[key] = task
        task.add_done_callback(lambda done, key=key: self._settle(key, done))
        return await asyncio.shield(task)

    def _settle(self, key: Tuple[Any, ...], task: "asyncio.Task") -> None:
        self._inflight.pop(key, None)
        if task.cancelled():
            return
        # Consuming the exception here keeps abandoned leaders (every
        # waiter gone mid-flight) from warning at teardown; live waiters
        # still receive it from their own await.
        if task.exception() is not None:
            return  # failures are never cached
        self._store_key(key, task.result())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Counters plus occupancy, as one fresh plain dict."""
        with self._lock:
            data: Dict[str, Any] = {
                "max_bytes": self.max_bytes,
                "bytes": self._bytes,
                "entries": len(self._entries),
                "epoch": self._epoch,
            }
        data.update(self.stats.snapshot())
        return data

    def clear(self) -> None:
        """Drop every entry without starting a new epoch (tests, demos)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        with self._lock:
            return "GatewayCache(entries=%d, bytes=%d/%d, epoch=%d)" % (
                len(self._entries),
                self._bytes,
                self.max_bytes,
                self._epoch,
            )
