"""Fleet supervision: corruption attribution → quarantine → self-healing.

The cluster stack below this module already *detects* trouble — redundant
share reads raise :class:`~repro.filters.cluster.InconsistentShareError`
(now carrying majority-vote ``suspects``), dead peers surface as recorded
``ConnectionError`` s — but nothing *acts* on it: a corrupt server keeps
poisoning every read it lands in, and a crashed one stays dead until the
operator re-encodes the document.  The :class:`FleetSupervisor` closes that
loop over any :class:`~repro.rmi.cluster.ClusterTransport` (simulated or
socket-backed):

1. **Observe** — feed it the attribution verdicts of inconsistency errors
   (:meth:`~FleetSupervisor.observe_inconsistency`) and run periodic
   :meth:`~FleetSupervisor.ping_sweep` s; per-server health records count
   corruption votes, unavailability streaks and ping failures against
   configurable thresholds.
2. **Quarantine** — a server past any threshold is routed around via
   :meth:`~repro.rmi.cluster.ClusterTransport.mark_quarantined` — but only
   while the remaining fleet still satisfies the scheme's quorum, so the
   supervisor never quarantines itself out of availability.
3. **Heal** — the quarantined server's table is re-derived *without
   re-encoding the document*: additive lanes regenerate from the
   ``KeyedPRG`` seed (:meth:`SharingScheme.regenerate_share`), Shamir
   slices re-share from any k healthy servers' rows through the existing
   Lagrange machinery (:meth:`ShamirSharing.reshare_vectors`).  The fresh
   table is swapped in — for socket fleets a replacement ``repro-server``
   subprocess is spawned, health-checked and connected
   (:meth:`SocketCluster.spawn_replacement`); for simulated fleets a new
   :class:`~repro.filters.server.ServerFilter` replaces the call target —
   and the fleet returns to full n-strength.

Healed tables are **byte-identical** to the original deployment slice: the
re-derived rows are inserted in ascending post order (the encoder emits a
row whenever a node completes) into a table with the same schema and
indexes, so ``Database.save`` produces the same JSON bytes — the chaos
bench's strongest end-to-end check.

Every quarantine and heal ticks the per-server
:class:`~repro.rmi.stats.CallStats` counters, which flow through
``aggregate_stats()`` and the gateway's ``__stats__`` wire method.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, TypeVar

from repro.encode.encoder import NODE_TABLE_NAME, node_table_schema
from repro.filters.cluster import InconsistentShareError
from repro.secretshare.scheme import SharingError, SharingScheme
from repro.storage.database import Database

T = TypeVar("T")


class SupervisorError(RuntimeError):
    """A quarantine or heal operation could not complete."""


@dataclass
class ServerHealth:
    """Mutable per-server health record kept by the supervisor."""

    #: times this server was a majority-vote corruption suspect
    corruption_votes: int = 0
    #: consecutive failed invocations / pings since the last success
    unavailable_streak: int = 0
    #: consecutive failed health-check pings
    ping_failures: int = 0
    #: currently routed around?
    quarantined: bool = False
    #: why the last quarantine happened ("corruption" / "unreachable")
    reason: Optional[str] = None
    #: lifetime quarantine / heal counts (mirrors the CallStats counters)
    quarantines: int = 0
    heals: int = 0

    def snapshot(self) -> Dict[str, object]:
        return {
            "corruption_votes": self.corruption_votes,
            "unavailable_streak": self.unavailable_streak,
            "ping_failures": self.ping_failures,
            "quarantined": self.quarantined,
            "reason": self.reason,
            "quarantines": self.quarantines,
            "heals": self.heals,
        }


@dataclass
class HealReport:
    """What one heal did (returned by :meth:`FleetSupervisor.heal`)."""

    server: int
    rows: int
    mode: str  # "reshare" (Shamir), "regenerate" (additive lane), …
    path: Optional[str] = None  # replacement table file (socket fleets)
    extra: Dict[str, object] = field(default_factory=dict)


class FleetSupervisor:
    """Quarantines unhealthy share servers and heals them back to strength.

    ``transport`` is the fleet's :class:`~repro.rmi.cluster.ClusterTransport`
    (or the asyncio variant's sync surface); ``scheme`` the deployment's
    sharing scheme.  ``cluster`` optionally names the backing
    :class:`~repro.rmi.server.SocketCluster` — with it, heals spawn real
    replacement subprocesses; without it (simulated fleets), heals swap a
    rebuilt :class:`~repro.filters.server.ServerFilter` into the transport's
    call targets.

    Thresholds: ``corruption_votes`` majority-vote verdicts, or
    ``unavailable_streak`` consecutive failures, or ``ping_failures``
    consecutive failed health checks — whichever trips first quarantines
    the server (quorum permitting).
    """

    def __init__(
        self,
        transport: Any,
        scheme: SharingScheme,
        cluster: Optional[Any] = None,
        corruption_votes: int = 1,
        unavailable_streak: int = 3,
        ping_failures: int = 2,
        heal_chunk: int = 512,
        coordinator: Optional[Any] = None,
    ):
        if transport.num_servers != scheme.num_servers:
            raise SharingError(
                "transport has %d servers but the scheme shards across %d"
                % (transport.num_servers, scheme.num_servers)
            )
        for name, value in (
            ("corruption_votes", corruption_votes),
            ("unavailable_streak", unavailable_streak),
            ("ping_failures", ping_failures),
            ("heal_chunk", heal_chunk),
        ):
            if value < 1:
                raise ValueError("%s must be at least 1, got %d" % (name, value))
        self.transport = transport
        self.scheme = scheme
        self.ring = scheme.ring
        self.cluster = cluster
        self.corruption_votes = corruption_votes
        self.unavailable_streak = unavailable_streak
        self.ping_failures = ping_failures
        self.heal_chunk = heal_chunk
        #: optional :class:`~repro.rmi.write.WriteCoordinator` of the same
        #: fleet: heals then hold its fence (no delta commits into a
        #: half-copied table) and replay-repair lagging peers first, so
        #: every source row is read at one consistent epoch
        self.coordinator = coordinator
        self.health: List[ServerHealth] = [
            ServerHealth() for _ in range(transport.num_servers)
        ]
        #: chronological quarantine / heal / refusal events (plain dicts)
        self.log: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # Observation surface
    # ------------------------------------------------------------------

    def observe_inconsistency(self, error: Exception) -> List[int]:
        """Count an inconsistency's attributed suspects; quarantine over threshold.

        Accepts any error carrying a ``suspects`` attribute (an
        :class:`~repro.filters.cluster.InconsistentShareError`).  An
        inconclusive attribution (no suspects) counts nothing — guessing
        would risk quarantining a healthy server.  Returns the indices
        newly quarantined by this observation.
        """
        quarantined: List[int] = []
        for index in getattr(error, "suspects", ()) or ():
            record = self.health[index]
            record.corruption_votes += 1
            if (
                not record.quarantined
                and record.corruption_votes >= self.corruption_votes
                and self.quarantine(index, reason="corruption")
            ):
                quarantined.append(index)
        return quarantined

    def observe_failure(self, index: int, error: Optional[BaseException] = None) -> bool:
        """Count one failed invocation; quarantine past the streak threshold.

        Returns whether this observation quarantined the server.
        """
        record = self.health[index]
        record.unavailable_streak += 1
        if not record.quarantined and record.unavailable_streak >= self.unavailable_streak:
            return self.quarantine(index, reason="unreachable")
        return False

    def observe_success(self, index: int) -> None:
        """Reset the failure streaks (corruption votes are stickier)."""
        record = self.health[index]
        record.unavailable_streak = 0
        record.ping_failures = 0

    def ping_sweep(self) -> Dict[int, bool]:
        """Health-check every non-quarantined server; quarantine repeat offenders.

        Socket-backed per-server transports answer a real ``__ping__``
        handshake; simulated targets answer the cheapest structural read.
        Returns ``{index: healthy}`` for the swept servers.
        """
        results: Dict[int, bool] = {}
        for index in range(self.transport.num_servers):
            record = self.health[index]
            if record.quarantined:
                continue
            try:
                per_server = self.transport.transports[index]
                ping = getattr(per_server, "ping", None)
                if ping is not None:
                    ping()
                else:
                    self.transport.invoke(index, "node_count", ())
            except (ConnectionError, OSError, RuntimeError):
                record.ping_failures += 1
                record.unavailable_streak += 1
                results[index] = False
                if record.ping_failures >= self.ping_failures:
                    self.quarantine(index, reason="unreachable")
            else:
                results[index] = True
                self.observe_success(index)
        return results

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------

    def quarantine(self, index: int, reason: str = "manual") -> bool:
        """Route reads around one server — if the rest still makes quorum.

        Refuses (returns ``False``, logs the refusal) when losing this
        server would leave the live fleet unable to satisfy the scheme —
        a degraded-but-available fleet beats an unavailable one.
        """
        record = self.health[index]
        if record.quarantined:
            return True
        remaining = [
            live for live in self.transport.live_servers() if live != index
        ]
        if not self.scheme.sufficient(remaining):
            self.log.append(
                {
                    "event": "quarantine_refused",
                    "server": index,
                    "reason": reason,
                    "live_remaining": remaining,
                }
            )
            return False
        self.transport.mark_quarantined(index)
        record.quarantined = True
        record.reason = reason
        record.quarantines += 1
        self.log.append({"event": "quarantine", "server": index, "reason": reason})
        return True

    def quarantined_servers(self) -> List[int]:
        """Indices currently quarantined."""
        return [
            index for index, record in enumerate(self.health) if record.quarantined
        ]

    # ------------------------------------------------------------------
    # Heal
    # ------------------------------------------------------------------

    def heal(self, index: int) -> HealReport:
        """Re-derive one server's table from healthy peers and swap it in.

        Works for quarantined *and* merely-dead servers.  Raises
        :class:`SupervisorError` when the table cannot be re-derived (no
        quorum of healthy peers, or an additive residual share that only
        the original encoding run could produce).

        With a :attr:`coordinator` attached, the whole heal runs under its
        write fence — concurrent :meth:`~repro.rmi.write.WriteCoordinator.apply`
        calls block until the swap finishes instead of committing an epoch
        the copy misses — and lagging healthy peers are journal-replayed
        first, so every source row is read at one consistent version.
        """
        if self.coordinator is not None:
            with self.coordinator.fence():
                return self._heal_fenced(index)
        return self._heal_fenced(index)

    def _heal_fenced(self, index: int) -> HealReport:
        if self.coordinator is not None:
            try:
                self.coordinator.repair_stale()
            except Exception as error:
                raise SupervisorError(
                    "cannot bring healthy peers to a consistent epoch "
                    "before healing server %d: %s" % (index, error)
                ) from error
        rows, mode, epoch = self._derive_rows(index)
        database = self._build_database(rows)
        path: Optional[str] = None
        if self.cluster is not None:
            transport = self.cluster.spawn_replacement(index, database)
            path = self.cluster.processes[index].database_path
            self.transport.mark_healed(
                index, transport=transport, server=transport.address
            )
        else:
            from repro.filters.server import ServerFilter

            table = database.table(NODE_TABLE_NAME)
            self.transport.mark_healed(index, server=ServerFilter(table, self.ring))
        if epoch:
            # Stamp the rebuilt slice with the epoch its rows were read at,
            # so the next two-phase prepare sees a consistent fleet.
            self.transport.invoke(index, "set_table_epoch", (epoch,))
        record = self.health[index]
        record.quarantined = False
        record.reason = None
        record.corruption_votes = 0
        record.unavailable_streak = 0
        record.ping_failures = 0
        record.heals += 1
        self.log.append(
            {"event": "heal", "server": index, "rows": len(rows), "mode": mode}
        )
        return HealReport(server=index, rows=len(rows), mode=mode, path=path)

    def _healthy_peers(self, index: int) -> List[int]:
        """Servers fit to source a heal: live, not the victim, not quarantined."""
        return [
            peer
            for peer in self.transport.live_servers()
            if peer != index and not self.health[peer].quarantined
        ]

    def _invoke_healthy(self, healthy: Sequence[int], method: str, args: tuple) -> Any:
        """First successful reply across the healthy peers (structural reads)."""
        last: Optional[BaseException] = None
        for peer in healthy:
            try:
                return self.transport.invoke(peer, method, args)
            except (ConnectionError, OSError) as error:
                self.observe_failure(peer, error)
                last = error
        raise SupervisorError(
            "no healthy peer answered %s (tried %s): %s" % (method, list(healthy), last)
        )

    def _gather_peer_rows(
        self, healthy: Sequence[int], chunk: Sequence[int], need: int
    ) -> Dict[int, List[List[int]]]:
        """Share rows for ``chunk`` from ``need`` distinct healthy peers."""
        collected: Dict[int, List[List[int]]] = {}
        for peer in healthy:
            try:
                collected[peer] = self.transport.invoke(
                    peer, "fetch_shares_batch", (list(chunk),)
                )
            except (ConnectionError, OSError) as error:
                self.observe_failure(peer, error)
                continue
            if len(collected) >= need:
                break
        if len(collected) < need:
            raise SupervisorError(
                "heal needs share rows from %d healthy servers, reached %d "
                "(healthy candidates %s)" % (need, len(collected), list(healthy))
            )
        return collected

    def _peer_epochs(self, healthy: Sequence[int]) -> Dict[int, int]:
        """Each healthy peer's table epoch (write-path version fencing)."""
        epochs: Dict[int, int] = {}
        for peer in healthy:
            try:
                epochs[peer] = self.transport.invoke(peer, "table_epoch", ())
            except (ConnectionError, OSError) as error:
                self.observe_failure(peer, error)
        return epochs

    def _derive_rows(self, index: int) -> "tuple[List[Dict[str, Any]], str, int]":
        """The victim's full node table, re-derived without re-encoding.

        Returns ``(rows, mode, epoch)`` — ``epoch`` being the consistent
        table epoch the source rows were read at (0 for a never-written
        fleet).  Peers at mixed epochs (a write committed on some of them
        while others lagged) are fenced out: only the newest-epoch peers
        source the heal, and only if enough of them remain.
        """
        healthy = self._healthy_peers(index)
        if not healthy:
            raise SupervisorError(
                "cannot heal server %d: no healthy peers remain" % index
            )
        epochs = self._peer_epochs(healthy)
        epoch = max(epochs.values()) if epochs else 0
        current = [peer for peer in healthy if epochs.get(peer) == epoch]
        if len(current) < len(healthy):
            stale = sorted(set(healthy) - set(current))
            self.log.append(
                {
                    "event": "heal_fenced_stale_peers",
                    "server": index,
                    "epoch": epoch,
                    "stale_peers": stale,
                }
            )
            healthy = current
        if not healthy:
            raise SupervisorError(
                "cannot heal server %d: no peers at a consistent epoch" % index
            )
        scheme = self.scheme
        regenerable = scheme.regenerable(index)
        if not regenerable and scheme.threshold >= scheme.num_servers:
            # n-of-n without a regenerable lane (the additive residual):
            # peers hold statistically independent slices, so nothing short
            # of the original encoding run can rebuild this table.
            raise SupervisorError(
                "server %d's share is neither regenerable from the seed nor "
                "re-derivable from peers under %s sharing" % (index, scheme.name)
            )
        # The structural skeleton is replicated on every server: the full
        # pre-order is the root plus its descendant scan, in document order
        # — which is exactly the encoder's insertion order.
        root = self._invoke_healthy(healthy, "root_pre", ())
        pres: List[int] = [root] + list(
            self._invoke_healthy(healthy, "descendants_of", (root,))
        )
        length = self.ring.length
        mode = "regenerate" if regenerable else "reshare"
        rows: List[Dict[str, Any]] = []
        for start in range(0, len(pres), self.heal_chunk):
            chunk = pres[start : start + self.heal_chunk]
            infos = self._invoke_healthy(healthy, "node_infos", (list(chunk),))
            versions = self._chunk_versions(healthy, chunk, epoch)
            if regenerable:
                shares = [
                    list(scheme.regenerate_share(pre, index, version).coeffs)
                    for pre, version in zip(chunk, versions)
                ]
            else:
                peer_rows = self._gather_peer_rows(healthy, chunk, scheme.threshold)
                flat = {
                    peer: [value for vector in vectors for value in vector]
                    for peer, vectors in peer_rows.items()
                }
                try:
                    derived = scheme.reshare_vectors(flat, index)
                except SharingError as error:
                    raise SupervisorError(
                        "cannot re-derive server %d's shares: %s" % (index, error)
                    ) from error
                shares = [
                    derived[offset : offset + length]
                    for offset in range(0, len(derived), length)
                ]
            for pre, info, share, version in zip(chunk, infos, shares, versions):
                if info is None:
                    raise SupervisorError(
                        "healthy peers report no node info for pre=%d" % pre
                    )
                row: Dict[str, Any] = {
                    "pre": pre,
                    "post": info["post"],
                    "parent": info["parent"],
                    "share": tuple(share),
                }
                if version:
                    # version 0 omits the column, matching the bulk
                    # encoder's rows byte for byte
                    row["version"] = version
                rows.append(row)
        return rows, mode, epoch

    def _chunk_versions(
        self, healthy: Sequence[int], chunk: Sequence[int], epoch: int
    ) -> List[int]:
        """Per-row write versions for one heal chunk (0 = bulk-encoded).

        A never-written fleet (epoch 0) skips the wire round entirely —
        every row is at version 0 and older servers may not even export
        ``row_versions``.
        """
        if not epoch:
            return [0] * len(chunk)
        versions = self._invoke_healthy(healthy, "row_versions", (list(chunk),))
        if any(version < 0 for version in versions):
            missing = [pre for pre, version in zip(chunk, versions) if version < 0]
            raise SupervisorError(
                "healthy peers hold no version for pres %s" % missing[:5]
            )
        return list(versions)

    def _build_database(self, rows: Sequence[Mapping[str, Any]]) -> Database:
        """A deployment-slice database holding ``rows`` (encoder conventions).

        Schema, index set and insertion order match
        :meth:`Encoder.deploy_text` exactly, so ``Database.save`` writes
        the same bytes the original slice file carries.  The encoder emits
        rows as nodes *complete* — ascending post order — and ``save``
        serialises rows in insertion order, so the rebuild must re-insert
        in post order too.
        """
        database = Database()
        table = database.create_table(node_table_schema())
        for row in sorted(rows, key=lambda row: row["post"]):
            table.insert(dict(row))
        for column in ("pre", "post", "parent"):
            table.create_index(column, unique=(column in ("pre", "post")))
        return database

    # ------------------------------------------------------------------
    # Guarded execution
    # ------------------------------------------------------------------

    def supervised_call(
        self, operation: Callable[[], T], heal: bool = True, retries: Optional[int] = None
    ) -> T:
        """Run a read; on share inconsistency, quarantine + heal + retry.

        Retries only when the observation actually quarantined someone —
        an inconclusive attribution re-raises immediately (retrying the
        same fleet would fail the same way).  ``retries`` defaults to the
        fleet size (each retry removes at least one server, so the loop
        always terminates).
        """
        attempts = (retries if retries is not None else self.transport.num_servers) + 1
        last: Optional[InconsistentShareError] = None
        for _ in range(attempts):
            try:
                return operation()
            except InconsistentShareError as error:
                last = error
                quarantined = self.observe_inconsistency(error)
                if not quarantined:
                    raise
                if heal:
                    for index in quarantined:
                        self.heal(index)
        assert last is not None  # attempts >= 1, so the loop body ran
        raise last

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """One serialisable view of fleet health (benches, demos, gateways)."""
        return {
            "servers": [record.snapshot() for record in self.health],
            "quarantined": self.quarantined_servers(),
            "live": list(self.transport.live_servers()),
            "quarantines": sum(record.quarantines for record in self.health),
            "heals": sum(record.heals for record in self.health),
            "events": list(self.log),
        }

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "FleetSupervisor(servers=%d, quarantined=%s)" % (
            self.transport.num_servers,
            self.quarantined_servers(),
        )
