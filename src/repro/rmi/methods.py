"""The declarative per-method spec table for the remote call surface.

Before this module existed the knowledge about remote methods was
scattered: the gateway kept its exported-session surface as a hand-built
union (``EXPORTED_METHODS``), the result cache kept its own cacheable
sets and alias folding (``CACHEABLE_METHODS`` / ``CACHE_KEY_ALIASES``),
and the admission scheduler kept a third list of batch-priced methods.
Adding one endpoint meant editing three files and hoping the sets stayed
consistent.

Now every remote method is ONE :class:`MethodSpec` row in
:data:`METHOD_SPECS` and everything else is derived:

* ``kind`` groups the surface: replicated ``structural-read``\\ s,
  scatter-gathered ``share-read``\\ s, session-pinned ``queue`` cursors,
  and the ``write`` protocol (two-phase delta application + version
  introspection).
* ``cacheable`` marks results safe to share across gateway sessions
  (static between epochs, no per-session state).
* ``mutating`` marks methods that change server state; a mutation
  commits a new table epoch, so they are never cacheable and never on
  the gateway session surface (the write coordinator talks to share
  servers directly and pokes the gateway with ``__bump_epoch__``).
* ``alias_of`` folds protocol synonyms onto one cache key
  (``fetch_shares`` hits what ``fetch_shares_batch`` stored).
* ``cost`` prices admission: ``"batch"`` methods take a ``pres`` list
  first and are charged its length by the fair scheduler; everything
  else costs 1.

The derived frozensets below are re-exported from their historical homes
(:mod:`repro.rmi.cache`, :mod:`repro.rmi.gateway`) so existing imports
keep working; the regression test in ``tests/test_config_api.py`` pins
them against the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "MethodSpec",
    "METHOD_SPECS",
    "SPECS_BY_NAME",
    "STRUCTURAL_READ_METHODS",
    "SHARE_READ_METHODS",
    "QUEUE_METHODS",
    "QUEUE_OPEN_METHODS",
    "WRITE_METHODS",
    "MUTATING_METHODS",
    "CACHEABLE_METHODS",
    "CACHE_KEY_ALIASES",
    "BATCH_ARG_METHODS",
    "GATEWAY_EXPORTED_METHODS",
    "SERVER_METHODS",
    "spec_for",
    "request_cost",
]

_KINDS = ("structural-read", "share-read", "queue", "write")


@dataclass(frozen=True)
class MethodSpec:
    """One row of the remote-method table.

    ``cost`` is ``"unit"`` (flat admission charge) or ``"batch"`` (the
    first argument is a list whose length is the charge).
    """

    name: str
    kind: str
    cacheable: bool = False
    mutating: bool = False
    alias_of: Optional[str] = None
    cost: str = "unit"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError("unknown method kind %r for %r" % (self.kind, self.name))
        if self.cost not in ("unit", "batch"):
            raise ValueError("unknown cost model %r for %r" % (self.cost, self.name))
        if self.cacheable and self.mutating:
            raise ValueError("%r cannot be both cacheable and mutating" % (self.name,))


#: the whole remote surface, one row per method.  Order groups by kind.
METHOD_SPECS: Tuple[MethodSpec, ...] = (
    # -- replicated structure-only reads (static between epochs) -------
    MethodSpec("node_count", "structural-read", cacheable=True),
    MethodSpec("root_pre", "structural-read", cacheable=True),
    MethodSpec("node_info", "structural-read", cacheable=True),
    MethodSpec("node_infos", "structural-read", cacheable=True, cost="batch"),
    MethodSpec("children_of", "structural-read", cacheable=True),
    MethodSpec("children_of_many", "structural-read", cacheable=True, cost="batch"),
    MethodSpec("descendants_of", "structural-read", cacheable=True),
    MethodSpec("descendants_of_many", "structural-read", cacheable=True, cost="batch"),
    MethodSpec("parent_of", "structural-read", cacheable=True),
    # -- scatter-gathered share reads (combined results cacheable) -----
    MethodSpec("evaluate", "share-read", cacheable=True),
    MethodSpec("evaluate_batch", "share-read", cacheable=True, cost="batch"),
    MethodSpec(
        "evaluate_many", "share-read", cacheable=True, alias_of="evaluate_batch", cost="batch"
    ),
    MethodSpec("fetch_share", "share-read", cacheable=True),
    MethodSpec("fetch_shares_batch", "share-read", cacheable=True, cost="batch"),
    MethodSpec(
        "fetch_shares", "share-read", cacheable=True, alias_of="fetch_shares_batch", cost="batch"
    ),
    # -- per-session queue cursors (mutable session state, NEVER cached)
    MethodSpec("open_queue", "queue", cost="batch"),
    MethodSpec("open_children_queue", "queue", cost="batch"),
    MethodSpec("open_descendants_queue", "queue", cost="batch"),
    MethodSpec("next_node", "queue"),
    MethodSpec("queue_size", "queue"),
    MethodSpec("close_queue", "queue"),
    # -- the versioned write protocol (coordinator <-> share server) ---
    MethodSpec("table_epoch", "write"),
    MethodSpec("row_versions", "write", cost="batch"),
    MethodSpec("prepare_delta", "write", mutating=True),
    MethodSpec("commit_delta", "write", mutating=True),
    MethodSpec("abort_delta", "write", mutating=True),
    MethodSpec("apply_delta", "write", mutating=True),
    MethodSpec("set_table_epoch", "write", mutating=True),
)

#: name -> spec, for O(1) dispatch-time lookups
SPECS_BY_NAME: Dict[str, MethodSpec] = {spec.name: spec for spec in METHOD_SPECS}
if len(SPECS_BY_NAME) != len(METHOD_SPECS):  # pragma: no cover - table sanity
    raise RuntimeError("duplicate method name in METHOD_SPECS")
for _spec in METHOD_SPECS:  # pragma: no branch - table sanity
    if _spec.alias_of is not None and _spec.alias_of not in SPECS_BY_NAME:
        raise RuntimeError("%r aliases unknown method %r" % (_spec.name, _spec.alias_of))


def _names(predicate) -> "frozenset[str]":
    return frozenset(spec.name for spec in METHOD_SPECS if predicate(spec))


#: replicated structure-only reads (static after bulk load, so cacheable)
STRUCTURAL_READ_METHODS = _names(lambda spec: spec.kind == "structural-read")

#: scatter-gathered share reads whose *combined* results are cacheable
SHARE_READ_METHODS = _names(lambda spec: spec.kind == "share-read")

#: per-session queue-cursor methods (pinned to the opening server)
QUEUE_METHODS = _names(lambda spec: spec.kind == "queue")

#: the queue openers (batch-priced: they take the full ``pres`` list)
QUEUE_OPEN_METHODS = _names(lambda spec: spec.kind == "queue" and spec.cost == "batch")

#: the write-protocol surface (two-phase apply + version introspection)
WRITE_METHODS = _names(lambda spec: spec.kind == "write")

#: methods that change server state (epoch-committing)
MUTATING_METHODS = _names(lambda spec: spec.mutating)

#: the full cacheable read surface shared across gateway sessions
CACHEABLE_METHODS = _names(lambda spec: spec.cacheable)

#: protocol aliases that share one cache key (identical args, identical
#: results), so a client calling ``fetch_shares`` hits what another
#: session stored via ``fetch_shares_batch``
CACHE_KEY_ALIASES: Dict[str, str] = {
    spec.name: spec.alias_of for spec in METHOD_SPECS if spec.alias_of is not None
}

#: methods whose first argument is a batch (a ``pres`` list): admission
#: cost scales with the batch size so one hog round is charged what it
#: actually occupies upstream
BATCH_ARG_METHODS = _names(lambda spec: spec.cost == "batch")

#: the session surface a remote client may call through the gateway.
#: Write methods are deliberately absent: mutations go through the
#: :class:`~repro.rmi.write.WriteCoordinator` straight to the share
#: servers, never through a shared read gateway session.
GATEWAY_EXPORTED_METHODS = STRUCTURAL_READ_METHODS | QUEUE_METHODS | SHARE_READ_METHODS

#: everything a share server's socket front end may dispatch.  This is
#: the registration point for new endpoints: a method absent from the
#: table is not reachable on a fleet server, even if the filter object
#: happens to define a public callable with that name.
SERVER_METHODS = _names(lambda spec: True)


def spec_for(method: str) -> Optional[MethodSpec]:
    """The spec row of one method (folding aliases is the caller's call)."""
    return SPECS_BY_NAME.get(method)


def request_cost(method: str, args) -> float:
    """Admission cost: ~batch size for batch-priced methods, 1 otherwise."""
    spec = SPECS_BY_NAME.get(method)
    if spec is not None and spec.cost == "batch" and args:
        first = args[0]
        if isinstance(first, (list, tuple)):
            return float(max(1, len(first)))
    return 1.0
