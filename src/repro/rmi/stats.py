"""Accounting of remote calls: counts, bytes, errors, simulated latency."""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional


@dataclass
class CallStats:
    """Mutable accumulator of remote-invocation statistics.

    One instance is attached to a :class:`~repro.rmi.transport.SimulatedTransport`
    and read out by the experiment harness after each query to report the
    communication cost alongside the evaluation counts.

    Counter semantics: every invocation — including ones whose server method
    raised or whose payload failed to encode — increments ``calls`` and the
    per-method count; failed invocations additionally increment ``errors``
    (and ``errors_by_method``) so a flaky server is visible in the reports
    rather than silently under-counted.  ``queries`` is bumped once per
    executed query by the query layer, which makes the derived
    ``calls_per_query`` / ``bytes_per_query`` the headline numbers for the
    batching work: the batched pipeline issues O(1) calls per query step
    where the per-node path issued O(candidates).

    ``simulated_latency`` is the *accumulated* per-call cost — the busy time
    a server spent answering, regardless of overlap.  ``makespan`` is the
    modeled *wall-clock* cost: the cluster transport charges each scatter
    round with the maximum over the contacted servers (plus a per-round
    overhead) instead of the sum, so concurrent scatter-gather shows its
    latency win deterministically.  The two gauges coincide on a sequential
    single-server trace and diverge exactly by the concurrency win.

    All mutators take an internal lock: scattered calls record from worker
    threads concurrently, and a torn read-modify-write would silently drop
    counts.
    """

    #: total number of remote method invocations (successful or failed)
    calls: int = 0
    #: bytes of encoded request payloads (client → server)
    bytes_sent: int = 0
    #: bytes of encoded response payloads (server → client)
    bytes_received: int = 0
    #: accumulated simulated network latency in seconds
    simulated_latency: float = 0.0
    #: modeled wall-clock of the trace (max-per-round under concurrency);
    #: written by the cluster transport's makespan clock when it snapshots
    #: an aggregate — per-transport instances leave it at 0.0
    makespan: float = 0.0
    #: per-method invocation counts
    calls_by_method: Dict[str, int] = field(default_factory=dict)
    #: per-method payload bytes (request + response)
    bytes_by_method: Dict[str, int] = field(default_factory=dict)
    #: invocations whose server method (or payload encoding) raised
    errors: int = 0
    #: per-method error counts
    errors_by_method: Dict[str, int] = field(default_factory=dict)
    #: number of queries executed against the transport (set by the query layer)
    queries: int = 0
    #: times this server was quarantined by a fleet supervisor (corruption
    #: votes, unavailability streaks or ping failures past their thresholds)
    quarantines: int = 0
    #: times this server's table was re-derived and a replacement swapped in
    heals: int = 0
    #: name of the arithmetic kernel backend serving this trace ("prime",
    #: "table" or "naive"); configuration rather than a counter, so
    #: :meth:`reset` leaves it in place
    backend: Optional[str] = None
    #: guards every read-modify-write (scattered calls record concurrently)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def record(
        self,
        method: str,
        request_bytes: int,
        response_bytes: int,
        latency: float,
        error: bool = False,
    ) -> None:
        """Record one remote call (``error=True`` for a failed invocation)."""
        with self._lock:
            self.calls += 1
            self.bytes_sent += request_bytes
            self.bytes_received += response_bytes
            self.simulated_latency += latency
            self.calls_by_method[method] = self.calls_by_method.get(method, 0) + 1
            self.bytes_by_method[method] = (
                self.bytes_by_method.get(method, 0) + request_bytes + response_bytes
            )
            if error:
                self.errors += 1
                self.errors_by_method[method] = self.errors_by_method.get(method, 0) + 1

    def count_query(self, amount: int = 1) -> None:
        """Record that ``amount`` queries ran over this transport."""
        with self._lock:
            self.queries += amount

    def count_quarantine(self, amount: int = 1) -> None:
        """Record that a supervisor quarantined this server."""
        with self._lock:
            self.quarantines += amount

    def count_heal(self, amount: int = 1) -> None:
        """Record that this server's slice was healed back to strength."""
        with self._lock:
            self.heals += amount

    def merge(self, other: "CallStats") -> "CallStats":
        """Accumulate another trace into this one (returns ``self``).

        Counters — including ``errors``, ``queries`` and ``makespan`` — are
        summed, the per-method breakdowns are merged key-wise, so the derived
        per-query figures of the merged object cover both traces.  Callers
        merging per-server traces of the *same* queries (the cluster
        aggregation) should fix up ``queries`` and ``makespan`` afterwards,
        since those traces are not disjoint.  ``backend`` is kept when both
        agree and degrades to ``"mixed"`` when the traces came from
        different kernels.
        """
        # Snapshot the other trace under its own lock first (never holding
        # both locks at once, so two concurrent merges cannot deadlock).
        with other._lock:
            calls = other.calls
            bytes_sent = other.bytes_sent
            bytes_received = other.bytes_received
            simulated_latency = other.simulated_latency
            makespan = other.makespan
            errors = other.errors
            queries = other.queries
            quarantines = other.quarantines
            heals = other.heals
            calls_by_method = dict(other.calls_by_method)
            bytes_by_method = dict(other.bytes_by_method)
            errors_by_method = dict(other.errors_by_method)
            backend = other.backend
        with self._lock:
            self.calls += calls
            self.bytes_sent += bytes_sent
            self.bytes_received += bytes_received
            self.simulated_latency += simulated_latency
            self.makespan += makespan
            self.errors += errors
            self.queries += queries
            self.quarantines += quarantines
            self.heals += heals
            for method, count in calls_by_method.items():
                self.calls_by_method[method] = self.calls_by_method.get(method, 0) + count
            for method, total in bytes_by_method.items():
                self.bytes_by_method[method] = self.bytes_by_method.get(method, 0) + total
            for method, count in errors_by_method.items():
                self.errors_by_method[method] = self.errors_by_method.get(method, 0) + count
            if self.backend is None:
                self.backend = backend
            elif backend is not None and backend != self.backend:
                self.backend = "mixed"
        return self

    def reset(self) -> None:
        """Zero all counters (used between experiment runs)."""
        with self._lock:
            self.calls = 0
            self.bytes_sent = 0
            self.bytes_received = 0
            self.simulated_latency = 0.0
            self.makespan = 0.0
            self.calls_by_method.clear()
            self.bytes_by_method.clear()
            self.errors = 0
            self.errors_by_method.clear()
            self.queries = 0
            self.quarantines = 0
            self.heals = 0

    @property
    def total_bytes(self) -> int:
        """Bytes in both directions."""
        return self.bytes_sent + self.bytes_received

    @property
    def calls_per_query(self) -> float:
        """Average remote calls per recorded query (0.0 before any query)."""
        return self.calls / self.queries if self.queries else 0.0

    @property
    def bytes_per_query(self) -> float:
        """Average payload bytes per recorded query (0.0 before any query)."""
        return self.total_bytes / self.queries if self.queries else 0.0

    def per_method(self) -> Dict[str, Dict[str, int]]:
        """Per-method breakdown: calls, errors and payload bytes by endpoint.

        Built under the lock: a concurrently recording writer must neither
        tear the iteration (``dictionary changed size during iteration``)
        nor leak into the returned copy afterwards.
        """
        with self._lock:
            return {
                method: {
                    "calls": count,
                    "errors": self.errors_by_method.get(method, 0),
                    "bytes": self.bytes_by_method.get(method, 0),
                }
                for method, count in sorted(self.calls_by_method.items())
            }

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict copy for report printing (counters plus ``backend``).

        Taken atomically under the lock so a scattered round recording
        concurrently can never hand the caller a torn view (``calls`` from
        after a record, ``bytes`` from before it) — and the returned dict,
        including the nested ``by_method`` rows, never mutates under the
        caller: every container in it is a fresh copy.
        """
        with self._lock:
            return {
                "backend": self.backend,
                "calls": self.calls,
                "errors": self.errors,
                "queries": self.queries,
                "quarantines": self.quarantines,
                "heals": self.heals,
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
                "total_bytes": self.total_bytes,
                "simulated_latency": self.simulated_latency,
                "makespan": self.makespan,
                "calls_per_query": self.calls_per_query,
                "bytes_per_query": self.bytes_per_query,
                "by_method": self.per_method(),
            }

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "CallStats(calls=%d, errors=%d, bytes=%d, latency=%.4fs)" % (
            self.calls,
            self.errors,
            self.total_bytes,
            self.simulated_latency,
        )


@dataclass
class CacheStats:
    """Counters of a result cache: hits, misses and single-flight coalesces.

    The :class:`~repro.rmi.cache.GatewayCache` (and any client-side result
    cache built on it) records through one of these.  Same discipline as
    :class:`CallStats`: every mutator takes the internal lock — the gateway
    records from its event loop while ``__stats__`` readers snapshot from
    client connections — and :meth:`snapshot` returns a fresh plain dict
    that can never mutate under the caller.
    """

    #: reads answered from the cache
    hits: int = 0
    #: reads that had to compute (each one upstream scatter)
    misses: int = 0
    #: reads that joined an identical in-flight computation instead of
    #: issuing their own (the single-flight win: N sessions, ONE scatter)
    coalesced: int = 0
    #: computed results admitted into the cache
    stores: int = 0
    #: entries evicted by the LRU byte bound
    evictions: int = 0
    #: entries dropped wholesale by epoch bumps
    invalidated: int = 0
    #: results too large for the configured byte bound (never stored)
    oversized: int = 0
    #: guards every read-modify-write (loop thread vs. reader threads)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def record_hit(self) -> None:
        with self._lock:
            self.hits += 1

    def record_miss(self) -> None:
        with self._lock:
            self.misses += 1

    def record_coalesced(self) -> None:
        with self._lock:
            self.coalesced += 1

    def record_store(self) -> None:
        with self._lock:
            self.stores += 1

    def record_eviction(self, amount: int = 1) -> None:
        with self._lock:
            self.evictions += amount

    def record_invalidated(self, amount: int) -> None:
        with self._lock:
            self.invalidated += amount

    def record_oversized(self) -> None:
        with self._lock:
            self.oversized += 1

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 before any)."""
        with self._lock:
            lookups = self.hits + self.misses + self.coalesced
            if not lookups:
                return 0.0
            return (self.hits + self.coalesced) / lookups

    def snapshot(self) -> Dict[str, object]:
        """An atomic plain-dict copy (never mutates under the caller)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "coalesced": self.coalesced,
                "stores": self.stores,
                "evictions": self.evictions,
                "invalidated": self.invalidated,
                "oversized": self.oversized,
                "hit_rate": self.hit_rate,
            }

    def reset(self) -> None:
        """Zero all counters (between experiment runs)."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.coalesced = 0
            self.stores = 0
            self.evictions = 0
            self.invalidated = 0
            self.oversized = 0

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        with self._lock:
            return "CacheStats(hits=%d, misses=%d, coalesced=%d)" % (
                self.hits,
                self.misses,
                self.coalesced,
            )


class QuantileSketch:
    """Streaming quantile estimate over a sliding window of observations.

    The asyncio scatter layer feeds one sketch per server with the measured
    round-trip time of every successful call and reads a high percentile
    back as the hedging deadline: "co-issue a spare once the k-th reply is
    later than the p95 of what this fleet usually takes".  A bounded window
    (rather than a full history) keeps the estimate adaptive — a server that
    warmed up or degraded dominates the window after ``window`` calls — and
    keeps memory constant.

    The estimate is the empirical quantile of the window using the
    nearest-rank method (``ceil(q * n)``), which is deterministic for a
    given observation sequence.  All methods take the internal lock: the
    event loop observes while accounting readers snapshot from other
    threads.
    """

    def __init__(self, window: int = 256):
        if window < 1:
            raise ValueError("window must be at least 1, got %d" % window)
        self._window: Deque[float] = deque(maxlen=window)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Add one measurement (negative values are clamped to zero)."""
        with self._lock:
            self._window.append(value if value > 0.0 else 0.0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._window)

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile of the window (``None`` before any observation)."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1], got %r" % (q,))
        with self._lock:
            if not self._window:
                return None
            ordered = sorted(self._window)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        with self._lock:
            count = len(self._window)
        return "QuantileSketch(observations=%d)" % count
