"""Accounting of remote calls: counts, bytes, simulated latency."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CallStats:
    """Mutable accumulator of remote-invocation statistics.

    One instance is attached to a :class:`~repro.rmi.transport.SimulatedTransport`
    and read out by the experiment harness after each query to report the
    communication cost alongside the evaluation counts.
    """

    #: total number of remote method invocations
    calls: int = 0
    #: bytes of encoded request payloads (client → server)
    bytes_sent: int = 0
    #: bytes of encoded response payloads (server → client)
    bytes_received: int = 0
    #: accumulated simulated network latency in seconds
    simulated_latency: float = 0.0
    #: per-method invocation counts
    calls_by_method: Dict[str, int] = field(default_factory=dict)

    def record(self, method: str, request_bytes: int, response_bytes: int, latency: float) -> None:
        """Record one completed remote call."""
        self.calls += 1
        self.bytes_sent += request_bytes
        self.bytes_received += response_bytes
        self.simulated_latency += latency
        self.calls_by_method[method] = self.calls_by_method.get(method, 0) + 1

    def reset(self) -> None:
        """Zero all counters (used between experiment runs)."""
        self.calls = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.simulated_latency = 0.0
        self.calls_by_method.clear()

    @property
    def total_bytes(self) -> int:
        """Bytes in both directions."""
        return self.bytes_sent + self.bytes_received

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy for report printing."""
        return {
            "calls": self.calls,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "total_bytes": self.total_bytes,
            "simulated_latency": self.simulated_latency,
        }

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "CallStats(calls=%d, bytes=%d, latency=%.4fs)" % (
            self.calls,
            self.total_bytes,
            self.simulated_latency,
        )
