"""The gateway: many concurrent client sessions over one shared server fleet.

A :class:`Gateway` is a socket daemon (built on the asyncio
:class:`~repro.rmi.server.SocketServer`) whose target is not a share table
but a whole cluster: it holds **one** multiplexed
:class:`~repro.rmi.aio.AsyncClusterTransport` connection per share server
and serves any number of concurrent client connections over it — all on
the same single event loop, from client socket frames to upstream quorum
admission.

Each client connection gets its own :class:`AsyncClusterClient` session —
the async mirror of :class:`~repro.filters.cluster.ClusterClient` — so
per-session state (``open_queue``/``next_node`` cursors, the sticky
structural primary, prefetch credits) is isolated between clients, while
the upstream connections, their pipelined frames, and the per-server call
statistics are shared by everyone.  Sessions expose exactly the
single-server surface the remote :class:`~repro.filters.client.ClientFilter`
expects; share reads come back *combined* (the gateway holds the sharing
scheme and recombines quorum replies), so a remote client drives the
gateway like a lone plaintext-protocol server.

Lifecycle: a client disconnect (clean or mid-query) releases its session's
server-side queues; a ``__shutdown__`` request **drains in-flight calls of
every session** before the gateway answers it and stops — no client's
half-finished scatter is cut off by another client's shutdown.

:class:`GatewayProcess` runs the gateway as a child process (the
``repro-gateway`` entry point), and :class:`GatewayEndpoint` is the tiny
client-side proxy that turns the remote gateway into the in-process
endpoint object a ``ClientFilter`` consumes.
"""

from __future__ import annotations

import asyncio
import os
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.filters.cluster import ClusterClient, ClusterUnavailableError
from repro.rmi.aio import AsyncClusterTransport, WeightedFairScheduler
from repro.rmi.cache import CACHEABLE_METHODS, GatewayCache
from repro.rmi.codec import Codec, CodecError
from repro.rmi.methods import (
    GATEWAY_EXPORTED_METHODS,
    QUEUE_METHODS,
    QUEUE_OPEN_METHODS,
    STRUCTURAL_READ_METHODS,
    request_cost as _request_cost,
)
from repro.rmi.server import PROTOCOL_VERSION, ServerProcess, SocketServer
from repro.rmi.socket import (
    BUMP_EPOCH_METHOD,
    DEFAULT_MAX_FRAME_BYTES,
    PING_METHOD,
    SHUTDOWN_METHOD,
    STATS_METHOD,
    STATUS_OK,
    AddressLike,
    ServerAddress,
    SocketTransport,
    UnknownRemoteMethodError,
    WireProtocolError,
)
from repro.secretshare.scheme import SharingScheme

# The method sets below come from the declarative spec table in
# :mod:`repro.rmi.methods` (one row per method: kind, cacheable,
# mutating, alias, cost); ``EXPORTED_METHODS`` keeps its historical name
# as the gateway's public session surface.  Everything off the surface
# is answered with a typed UnknownRemoteMethodError, never executed —
# including the write protocol, which goes through the
# :class:`~repro.rmi.write.WriteCoordinator` straight to the share
# servers, never through a shared read gateway.
EXPORTED_METHODS = GATEWAY_EXPORTED_METHODS

_QUEUE_METHODS = QUEUE_METHODS

_STRUCTURAL_METHODS = STRUCTURAL_READ_METHODS

_QUEUE_OPEN_METHODS = QUEUE_OPEN_METHODS


class AsyncClusterClient(ClusterClient):
    """One gateway session: ``ClusterClient`` semantics, awaited upstream.

    Inherits every pure-compute piece of :class:`ClusterClient` — scheme
    combination, share regeneration, consistency verification, queue-route
    bookkeeping — and mirrors only the transport-crossing paths as
    coroutines over :class:`~repro.rmi.aio.AsyncClusterTransport`, so many
    sessions interleave on one event loop instead of blocking a thread
    each.

    Client-side *modeled* hedging is permanently off (there are no modeled
    latencies to compare); the transport's RTT-percentile hedging covers
    the same ground with measured data.  The shared transport is owned by
    the gateway: :meth:`close` here is a deliberate no-op.
    """

    def __init__(
        self,
        transport: AsyncClusterTransport,
        scheme: SharingScheme,
        read_quorum: Optional[int] = None,
        verify_shares: bool = True,
        prefetch: int = 0,
    ):
        super().__init__(
            transport,
            scheme,
            read_quorum=read_quorum,
            verify_shares=verify_shares,
            hedge=False,
            prefetch=prefetch,
        )

    # ------------------------------------------------------------------
    # Async mirrors of the transport-crossing paths
    # ------------------------------------------------------------------

    async def _acall_any(self, method: str, args: Tuple[Any, ...]) -> Any:
        """Async mirror of ``_call_any``: one live server, fail-over on loss."""
        last_error: Optional[BaseException] = None
        overlap = self._take_overlap()
        for index in self._server_order():
            try:
                result = await self.transport.ainvoke(index, method, args, overlap=overlap)
            except ConnectionError as exc:
                last_error = exc
                continue
            self._primary = index
            return result
        raise ClusterUnavailableError(
            "no live server could answer %s: %s" % (method, last_error)
        )

    async def _aopen_queue(self, method: str, pres: List[int]) -> int:
        """Async mirror of ``_open_queue_on_primary``."""
        last_error: Optional[BaseException] = None
        overlap = self._take_overlap()
        for index in self._server_order():
            try:
                remote_id = await self.transport.ainvoke(
                    index, method, (list(pres),), overlap=overlap
                )
            except ConnectionError as exc:
                last_error = exc
                continue
            self._primary = index
            local_id = self._next_local_queue_id
            self._next_local_queue_id += 1
            self._queue_routes[local_id] = (index, remote_id)
            return local_id
        raise ClusterUnavailableError(
            "no live server could answer %s: %s" % (method, last_error)
        )

    async def _agather(
        self, method: str, args: Tuple[Any, ...]
    ) -> Tuple[Dict[int, Any], Dict[int, BaseException]]:
        """Async mirror of ``_gather`` (transport-level hedging instead of
        the modeled client-side co-issue; same quorum/escalation logic)."""
        replies: Dict[int, Any] = {}
        failures: Dict[int, BaseException] = {}

        def absorb(batch) -> None:
            for reply in batch:
                if reply.ok:
                    replies[reply.server] = reply.value
                elif isinstance(reply.error, ConnectionError):
                    failures[reply.server] = reply.error
                else:
                    raise reply.error

        order = self._server_order(start=0)
        targets = order[: self._read_quorum]
        spares = order[self._read_quorum :]
        quorum = len(targets) if self._verify else min(self.scheme.threshold, len(targets))
        absorb(await self.transport.ainvoke_quorum(method, args, k=quorum, indices=targets))
        if not self.scheme.sufficient(replies):
            remaining = [
                index for index in spares if index not in replies and index not in failures
            ]
            if remaining:
                absorb(await self.transport.ainvoke_all(method, args, indices=remaining))
        self._overlap_credits = self._prefetch
        return replies, failures

    async def aevaluate(self, pre: int, point: int) -> int:
        """Async mirror of :meth:`ClusterClient.evaluate`."""
        replies, failures = await self._agather("evaluate", (pre, point))
        replies = self._complete_with_regenerated(
            replies,
            failures,
            lambda index: self.ring.evaluate(self.scheme.regenerate_share(pre, index), point),
            "evaluate",
        )
        vectors = {index: (value,) for index, value in replies.items()}
        self._verify_vectors(vectors, "evaluate")
        return self.scheme.combine_vectors(vectors)[0]

    async def aevaluate_batch(self, pres: List[int], point: int) -> List[int]:
        """Async mirror of :meth:`ClusterClient.evaluate_batch`."""
        pres = list(pres)
        if not pres:
            return []
        replies, failures = await self._agather("evaluate_batch", (pres, point))

        def regenerate(index: int) -> List[int]:
            shares = [self.scheme.regenerate_share(pre, index) for pre in pres]
            return self.ring.evaluate_many(shares, point)

        replies = self._complete_with_regenerated(replies, failures, regenerate, "evaluate_batch")
        self._verify_vectors(replies, "evaluate_batch")
        return self.scheme.combine_values_many(replies)

    async def afetch_share(self, pre: int) -> List[int]:
        """Async mirror of :meth:`ClusterClient.fetch_share`."""
        replies, failures = await self._agather("fetch_share", (pre,))
        replies = self._complete_with_regenerated(
            replies,
            failures,
            lambda index: list(self.scheme.regenerate_share(pre, index).coeffs),
            "fetch_share",
        )
        self._verify_vectors(replies, "fetch_share")
        return self.scheme.combine_vectors(replies)

    async def afetch_shares_batch(self, pres: List[int]) -> List[List[int]]:
        """Async mirror of :meth:`ClusterClient.fetch_shares_batch`."""
        pres = list(pres)
        if not pres:
            return []
        replies, failures = await self._agather("fetch_shares_batch", (pres,))

        def regenerate(index: int) -> List[List[int]]:
            return [list(self.scheme.regenerate_share(pre, index).coeffs) for pre in pres]

        replies = self._complete_with_regenerated(
            replies, failures, regenerate, "fetch_shares_batch"
        )
        flat = {
            index: [value for vector in vectors for value in vector]
            for index, vectors in replies.items()
        }
        self._verify_vectors(flat, "fetch_shares_batch")
        combined = self.scheme.combine_vectors(flat)
        length = self.ring.length
        return [combined[start : start + length] for start in range(0, len(combined), length)]

    # ------------------------------------------------------------------
    # Dispatch and lifecycle
    # ------------------------------------------------------------------

    async def adispatch(self, method: str, args: Sequence[Any], kwargs: Dict[str, Any]) -> Any:
        """Route one wire request to the matching session coroutine."""
        if kwargs:
            raise TypeError(
                "gateway calls take positional arguments only, got keywords %s"
                % sorted(kwargs)
            )
        args = tuple(args)
        if method in _STRUCTURAL_METHODS:
            return await self._acall_any(method, args)
        if method in _QUEUE_OPEN_METHODS:
            (pres,) = args
            return await self._aopen_queue(method, pres)
        if method == "next_node":
            (queue_id,) = args
            server, remote_id = self._queue_route(queue_id)
            return await self.transport.ainvoke(server, "next_node", (remote_id,))
        if method == "queue_size":
            (queue_id,) = args
            server, remote_id = self._queue_route(queue_id)
            return await self.transport.ainvoke(server, "queue_size", (remote_id,))
        if method == "close_queue":
            (queue_id,) = args
            server, remote_id = self._queue_routes.pop(queue_id, (None, None))
            if server is None:
                return False
            return await self.transport.ainvoke(server, "close_queue", (remote_id,))
        if method == "evaluate":
            pre, point = args
            return await self.aevaluate(pre, point)
        if method in ("evaluate_batch", "evaluate_many"):
            pres, point = args
            return await self.aevaluate_batch(pres, point)
        if method == "fetch_share":
            (pre,) = args
            return await self.afetch_share(pre)
        if method in ("fetch_shares_batch", "fetch_shares"):
            (pres,) = args
            return await self.afetch_shares_batch(pres)
        raise UnknownRemoteMethodError("gateway exports no method %r" % method)

    async def arelease(self) -> None:
        """Release per-session server-side resources (open queue cursors).

        Called when the client connection ends — cleanly or mid-query — so
        abandoned cursors never pile up on the share servers.  A server
        that is gone (or already dropped the queue) is not an error here.
        """
        routes, self._queue_routes = self._queue_routes, {}
        for server, remote_id in routes.values():
            try:
                await self.transport.ainvoke(server, "close_queue", (remote_id,))
            except (ConnectionError, LookupError, RuntimeError):
                pass

    def close(self) -> None:
        """A session must NOT close the shared transport: deliberate no-op."""


class Gateway(SocketServer):
    """Serves many concurrent client sessions over one shared fleet.

    One event loop runs everything: the client-facing accept loop (both
    framings, pipelined or legacy), every session's dispatches, and the
    multiplexed upstream connections of the shared
    :class:`~repro.rmi.aio.AsyncClusterTransport`.  The transport must not
    have a sync loop thread of its own — the gateway *is* its event loop.
    """

    def __init__(
        self,
        cluster: AsyncClusterTransport,
        scheme: SharingScheme,
        read_quorum: Optional[int] = None,
        verify_shares: bool = True,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        codec: Optional[Codec] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        name: str = "repro-gateway",
        cache_bytes: int = 0,
        fair: bool = False,
        fair_session_cap: int = 8,
        fair_max_inflight: Optional[int] = None,
    ):
        super().__init__(
            target=cluster,
            host=host,
            port=port,
            unix_path=unix_path,
            codec=codec,
            max_frame_bytes=max_frame_bytes,
            name=name,
        )
        self.cluster = cluster
        self.scheme = scheme
        self.read_quorum = read_quorum
        self.verify_shares = verify_shares
        #: shared result cache over the read surface (None = caching off).
        #: A hit answers from the gateway without touching the fleet; a
        #: miss is single-flight, so N sessions asking the same question
        #: concurrently cost one upstream scatter.
        self.cache: Optional[GatewayCache] = (
            GatewayCache(cache_bytes) if cache_bytes else None
        )
        #: weighted fair queue over *upstream-bound* work (None = FIFO).
        #: Cache hits bypass admission entirely — they cost the fleet
        #: nothing — so a hog only competes where it actually hogs.
        self.scheduler: Optional[WeightedFairScheduler] = (
            WeightedFairScheduler(
                session_cap=fair_session_cap, max_inflight=fair_max_inflight
            )
            if fair
            else None
        )
        #: live sessions (loop-confined; for introspection and tests)
        self.sessions: Set[AsyncClusterClient] = set()
        self._inflight = 0
        self._drain_waiters: List["asyncio.Future"] = []

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def _make_session(self) -> AsyncClusterClient:
        session = AsyncClusterClient(
            self.cluster,
            self.scheme,
            read_quorum=self.read_quorum,
            verify_shares=self.verify_shares,
        )
        self.sessions.add(session)
        return session

    async def _release_session(self, session: Any) -> None:
        if session is None:  # pragma: no cover - defensive
            return
        self.sessions.discard(session)
        if self.scheduler is not None:
            # Return the departed session's admission slots and wake any
            # queued work that was waiting behind them.
            self.scheduler.forget(session)
        await session.arelease()

    async def _on_loop_shutdown(self) -> None:
        # Every connection is gone; release the upstream fleet connections
        # on the loop they live on, before it closes.
        await self.cluster.aclose()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _respond(self, frame: bytes, session: Any = None) -> Tuple[bytes, bool]:
        """Decode, dispatch against the session, encode — all awaited.

        Unlike the base server's synchronous ``_handle``, a dispatch here
        crosses the upstream wire, so it awaits — which is exactly what
        lets other sessions' requests interleave on the loop meanwhile.
        """
        if self.delay:
            await asyncio.sleep(self.delay)
        try:
            request = self.codec.decode(frame)
        except CodecError as exc:
            return self._error_payload(WireProtocolError("malformed request: %s" % exc)), False
        if not isinstance(request, dict) or not isinstance(request.get("method"), str):
            return (
                self._error_payload(
                    WireProtocolError("request must be a {method, args, kwargs} dictionary")
                ),
                False,
            )
        method = request["method"]
        args = request.get("args") or []
        kwargs = request.get("kwargs") or {}
        if method == PING_METHOD:
            return STATUS_OK + self.codec.encode(self._identity()), False
        if method == SHUTDOWN_METHOD:
            # Graceful drain: every other session's in-flight dispatch
            # completes (and is answered) before the gateway goes down.
            await self._drain_inflight()
            return STATUS_OK + self.codec.encode(True), True
        if method == STATS_METHOD:
            return STATUS_OK + self.codec.encode(self.stats_snapshot()), False
        if method == BUMP_EPOCH_METHOD:
            epoch = self.cache.bump_epoch() if self.cache is not None else 0
            return STATUS_OK + self.codec.encode(epoch), False
        if method.startswith("_") or method not in EXPORTED_METHODS:
            return (
                self._error_payload(
                    UnknownRemoteMethodError("gateway exports no method %r" % method)
                ),
                False,
            )
        if session is None:  # pragma: no cover - defensive
            return self._error_payload(RuntimeError("connection has no session")), False
        self._inflight += 1
        try:
            value = await self._dispatch_session(session, method, args, kwargs)
        except Exception as exc:
            return self._error_payload(exc), False
        finally:
            self._inflight -= 1
            if self._inflight == 0 and self._drain_waiters:
                waiters, self._drain_waiters = self._drain_waiters, []
                for waiter in waiters:
                    if not waiter.done():
                        waiter.set_result(None)
        try:
            return STATUS_OK + self.codec.encode(value), False
        except CodecError as exc:
            return self._error_payload(exc), False

    async def _dispatch_session(
        self, session: Any, method: str, args: Sequence[Any], kwargs: Dict[str, Any]
    ) -> Any:
        """One session request through the cache (if on), then admission.

        Only the read surface with positional args routes through the
        cache; queue-cursor methods (session-private mutable state) and
        anything uncacheable go straight to fair admission.  On a cache
        hit or coalesce nothing is admitted — no upstream work happens.
        """
        if self.cache is not None and not kwargs and method in CACHEABLE_METHODS:
            return await self.cache.aget_or_compute(
                method,
                args,
                lambda: self._admit_and_dispatch(session, method, args, kwargs),
            )
        return await self._admit_and_dispatch(session, method, args, kwargs)

    async def _admit_and_dispatch(
        self, session: Any, method: str, args: Sequence[Any], kwargs: Dict[str, Any]
    ) -> Any:
        """Run one upstream-bound dispatch under fair admission (if on)."""
        if self.scheduler is None:
            return await session.adispatch(method, args, kwargs)
        await self.scheduler.acquire(session, cost=_request_cost(method, args))
        try:
            return await session.adispatch(method, args, kwargs)
        finally:
            self.scheduler.release(session)

    def stats_snapshot(self) -> Dict[str, Any]:
        """One codec-serialisable view of gateway health (``__stats__``).

        Reads the upstream transports' :class:`~repro.rmi.stats.CallStats`
        directly — deliberately NOT via ``aggregate_stats()``/``drain()``,
        which are sync-bridge paths that must never run on the gateway's
        own loop.
        """
        server_snapshots = [
            transport.stats.snapshot() for transport in self.cluster.transports
        ]
        live = set(self.cluster.live_servers())
        return {
            "server": self.name,
            "sessions": len(self.sessions),
            "cache": self.cache.snapshot() if self.cache is not None else None,
            "fairness": self.scheduler.snapshot() if self.scheduler is not None else None,
            "servers": server_snapshots,
            # Fleet-health rollup (supervisor quarantine/heal activity):
            # per-server counters summed, plus which indices are currently
            # routed around — one line for operators and the chaos bench.
            "health": {
                "quarantines": sum(row["quarantines"] for row in server_snapshots),
                "heals": sum(row["heals"] for row in server_snapshots),
                "down": [
                    index
                    for index in range(self.cluster.num_servers)
                    if index not in live
                ],
            },
        }

    async def _drain_inflight(self) -> None:
        while self._inflight:
            waiter: "asyncio.Future" = asyncio.get_event_loop().create_future()
            self._drain_waiters.append(waiter)
            await waiter

    def _identity(self) -> Dict[str, Any]:
        return {
            "server": self.name,
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "target": "AsyncClusterClient",
            "servers": self.cluster.num_servers,
        }

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        where = str(self._address) if self._address is not None else "unbound"
        return "Gateway(servers=%d, sessions=%d, %s)" % (
            self.cluster.num_servers,
            len(self.sessions),
            where,
        )


class GatewayEndpoint:
    """Client-side proxy: the remote gateway as an in-process endpoint.

    Every public attribute access yields a callable that performs one
    remote call over the transport, so the object drops into any slot
    expecting a single ``ServerFilter``-surface endpoint — in particular
    the first argument of :class:`~repro.filters.client.ClientFilter`.
    """

    def __init__(self, transport: SocketTransport):
        self.transport = transport

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        transport = self.transport

        def remote_call(*args: Any, **kwargs: Any) -> Any:
            return transport.invoke(None, name, args, kwargs)

        remote_call.__name__ = name
        return remote_call

    def ping(self) -> Dict[str, Any]:
        """The gateway's ``__ping__`` identity (health check)."""
        return self.transport.ping()

    def stats(self) -> Dict[str, Any]:
        """The gateway's ``__stats__`` snapshot: sessions, cache counters,
        fairness queue state, per-server upstream call statistics."""
        return self.transport.invoke(None, STATS_METHOD, (), {})

    def bump_epoch(self) -> int:
        """Invalidate the gateway's result cache wholesale (new epoch).

        The over-the-wire handle a writer calls after mutating rows;
        returns the new epoch (0 when the gateway runs without a cache).
        """
        return self.transport.invoke(None, BUMP_EPOCH_METHOD, (), {})

    def close(self) -> None:
        """Release the proxy's pooled connections."""
        self.transport.close()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "GatewayEndpoint(%s)" % (self.transport.address,)


class GatewayProcess(ServerProcess):
    """The gateway as a child process (the ``repro-gateway`` daemon).

    Reuses the :class:`~repro.rmi.server.ServerProcess` machinery — READY
    line handshake, ``__ping__`` health check, parent-watch, graceful
    ``__shutdown__`` with escalation, SIGKILL fault injection — and swaps
    only the spawned command: ``python -m repro.cli gateway`` pointed at an
    already-running server fleet and the deployment's seed file.
    """

    def __init__(
        self,
        servers: Sequence[AddressLike],
        seed_path: str,
        p: int,
        e: int = 1,
        sharing: str = "additive",
        threshold: Optional[int] = None,
        read_quorum: Optional[int] = None,
        verify_shares: bool = True,
        hedge: float = 0.0,
        host: str = "127.0.0.1",
        python: Optional[str] = None,
        startup_timeout: float = 30.0,
        name: Optional[str] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        cache_bytes: int = 0,
        fair: bool = False,
        fair_cap: int = 8,
    ):
        super().__init__(
            database_path=seed_path,
            p=p,
            e=e,
            host=host,
            python=python,
            startup_timeout=startup_timeout,
            name=name or "repro-gateway",
            max_frame_bytes=max_frame_bytes,
        )
        self.servers = [ServerAddress.coerce(server) for server in servers]
        for address in self.servers:
            if address.is_unix:
                raise ValueError(
                    "the gateway daemon reaches its fleet over TCP; got unix "
                    "address %s" % address
                )
        self.seed_path = seed_path
        self.sharing = sharing
        self.threshold = threshold
        self.read_quorum = read_quorum
        self.verify_shares = verify_shares
        self.hedge = hedge
        self.cache_bytes = cache_bytes
        self.fair = fair
        self.fair_cap = fair_cap

    def _command(self) -> List[str]:
        command = [
            self.python, "-m", "repro.cli", "gateway",
            "--seed", self.seed_path,
            "--p", str(self.p), "--e", str(self.e),
            "--sharing", self.sharing,
            "--host", self.host, "--port", "0",
            "--max-frame-bytes", str(self.max_frame_bytes),
            "--parent-watch",
        ]
        for address in self.servers:
            command.extend(["--server", "%s:%d" % (address.host, address.port)])
        if self.threshold is not None:
            command.extend(["--threshold", str(self.threshold)])
        if self.read_quorum is not None:
            command.extend(["--read-quorum", str(self.read_quorum)])
        if not self.verify_shares:
            command.append("--no-verify")
        if self.hedge:
            command.extend(["--hedge", repr(self.hedge)])
        if self.cache_bytes:
            command.extend(["--cache-bytes", str(self.cache_bytes)])
        if self.fair:
            command.extend(["--fair", "--fair-cap", str(self.fair_cap)])
        return command

    def endpoint(self, **kwargs: Any) -> GatewayEndpoint:
        """A fresh client-side proxy session against this gateway."""
        return GatewayEndpoint(self.transport(**kwargs))
