"""Leakage analysis of the secret-sharing scheme (honest-but-curious server).

The paper treats the server as untrusted storage and argues that, because it
only ever holds one additive share of each polynomial, it "cannot learn the
data".  Later literature showed the *query protocol* leaks much more than the
stored shares: every containment test sends the mapped tag value in the clear
as the evaluation point, and the engine's subsequent navigation reveals which
nodes matched.  This package makes that leakage concrete and measurable:

* :class:`~repro.analysis.observer.ObservingServerFilter` — a drop-in wrapper
  around :class:`repro.filters.server.ServerFilter` that records everything
  the server sees (structural requests, share fetches and the evaluation
  points of every containment test).
* :mod:`~repro.analysis.attacks` — an access-pattern analysis that
  reconstructs, per observed evaluation point, the set of nodes whose
  subtrees contain the queried (still unnamed) tag, and a frequency attack
  that matches those observations against public document statistics (e.g.
  the XMark DTD) to recover the secret tag map.

The module exists to *document* the scheme's weakness as part of the
reproduction; it is not an endorsement of using the scheme for real data.
"""

from repro.analysis.attacks import (
    AttackReport,
    frequency_attack,
    infer_containment_sets,
    tag_frequency_profile,
)
from repro.analysis.observer import ObservedCall, ObservingServerFilter, ServerView

__all__ = [
    "ObservingServerFilter",
    "ObservedCall",
    "ServerView",
    "infer_containment_sets",
    "tag_frequency_profile",
    "frequency_attack",
    "AttackReport",
]
