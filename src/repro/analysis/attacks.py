"""Access-pattern attacks against the query protocol.

What the server can combine:

1. **Evaluation points are plaintext map values.**  A containment test asks
   the server to evaluate a stored share at ``map(tag)``; the point itself is
   the secret mapping's output.  Distinct queried tags are therefore
   distinguishable immediately, and equal tags across queries are linkable.
2. **Navigation reveals the matching nodes.**  After the client combines the
   two share evaluations it either prunes a branch (no further requests) or
   continues below it (children/descendant requests, further evaluations).
   The server therefore learns, per evaluation point, which subtrees contain
   the queried tag.
3. **Public structure statistics identify the tag.**  The pre/post/parent
   numbers are stored in the clear, so the server knows the exact tree shape;
   with a public DTD (or any rough knowledge of tag frequencies) it can match
   the observed containment sets against expected tag frequencies and recover
   the map — and hence the queries and, progressively, the document labels.

:func:`frequency_attack` implements point 3 as a simple best-match assignment
and reports how much of the secret map it recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.observer import ServerView
from repro.xmldoc.nodes import XMLDocument
from repro.xmldoc.numbering import PrePostNumbering


@dataclass(frozen=True)
class AttackReport:
    """Outcome of a frequency attack over an observation log."""

    #: evaluation point -> guessed tag name
    guesses: Dict[int, str]
    #: evaluation point -> true tag name (when ground truth was supplied)
    ground_truth: Dict[int, str]
    #: fraction of observed points whose tag was guessed correctly
    recovery_rate: float
    #: evaluation point -> number of distinct nodes it was tested on
    observations_per_point: Dict[int, int]

    @property
    def recovered_points(self) -> List[int]:
        """Observed points whose tag name was recovered exactly."""
        return [
            point
            for point, guess in self.guesses.items()
            if self.ground_truth.get(point) == guess
        ]


def infer_containment_sets(view: ServerView) -> Dict[int, List[int]]:
    """Per evaluation point, the nodes the server believes matched.

    A node counts as a *match* for point ``v`` if, after being evaluated at
    ``v``, the client asked for its children or descendants, or fetched its
    share — i.e. the query clearly continued below it.  This is exactly the
    signal a passive server can extract without knowing any tag name.
    """
    evaluations = view.evaluations_by_point()
    continued = set(view.expanded_nodes()) | set(view.fetched_shares())
    matches: Dict[int, List[int]] = {}
    for point, pres in evaluations.items():
        matched = [pre for pre in dict.fromkeys(pres) if pre in continued]
        matches[point] = matched
    return matches


def tag_frequency_profile(document: XMLDocument) -> Dict[str, int]:
    """Public knowledge model: how many subtrees contain each tag.

    For every tag name, counts the number of nodes whose subtree (including
    the node itself) contains that tag.  In a real attack this profile comes
    from the DTD plus published corpus statistics; for the reproduction we
    compute it from a reference document with the same schema, which plays
    the role of the attacker's auxiliary knowledge.
    """
    numbering = PrePostNumbering(document)
    profile: Dict[str, int] = {}
    for node in numbering:
        tags_below = {node.tag} | {d.tag for d in numbering.descendants_of(node.pre)}
        for tag in tags_below:
            profile[tag] = profile.get(tag, 0) + 1
    return profile


def frequency_attack(
    view: ServerView,
    reference_profile: Dict[str, int],
    true_map: Optional[Dict[str, int]] = None,
) -> AttackReport:
    """Match observed containment-set sizes against a public tag profile.

    For every observed evaluation point the attacker knows how many distinct
    nodes were *tested* and how many of those *matched* (the query continued
    below them).  The candidate tag whose public frequency is closest to the
    observed match count — among tags not yet assigned — is guessed.  With
    ``true_map`` (tag name → field value) supplied, the report also scores
    the recovery rate.
    """
    containment_sets = infer_containment_sets(view)
    observations = {point: len(set(pres)) for point, pres in view.evaluations_by_point().items()}

    # Greedy best-match assignment: most-observed points first so frequent
    # query targets (usually structural tags like 'site') are matched before
    # rare ones.
    unassigned = dict(reference_profile)
    guesses: Dict[int, str] = {}
    for point in sorted(containment_sets, key=lambda p: -len(containment_sets[p])):
        matched_count = len(containment_sets[point])
        if not unassigned:
            break
        best_tag = min(unassigned, key=lambda tag: (abs(unassigned[tag] - matched_count), tag))
        guesses[point] = best_tag
        del unassigned[best_tag]

    ground_truth: Dict[int, str] = {}
    if true_map:
        inverse = {value: name for name, value in true_map.items()}
        for point in containment_sets:
            if point in inverse:
                ground_truth[point] = inverse[point]

    if ground_truth:
        correct = sum(1 for point, tag in guesses.items() if ground_truth.get(point) == tag)
        recovery_rate = correct / len(ground_truth)
    else:
        recovery_rate = 0.0

    return AttackReport(
        guesses=guesses,
        ground_truth=ground_truth,
        recovery_rate=recovery_rate,
        observations_per_point=observations,
    )


def linkability_report(view: ServerView) -> Dict[str, float]:
    """Quantify how linkable queries are from the server's viewpoint.

    Returns summary statistics a passive server obtains for free: the number
    of distinct evaluation points seen (== distinct tags queried), the total
    number of evaluations, and the average number of nodes tested per point.
    """
    by_point = view.evaluations_by_point()
    total_evaluations = sum(len(pres) for pres in by_point.values())
    distinct_points = len(by_point)
    return {
        "distinct_points": float(distinct_points),
        "total_evaluations": float(total_evaluations),
        "avg_nodes_per_point": (total_evaluations / distinct_points) if distinct_points else 0.0,
        "expanded_nodes": float(len(view.expanded_nodes())),
    }
