"""Recording what the server observes while answering queries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.filters.server import ServerFilter


@dataclass(frozen=True)
class ObservedCall:
    """One server-side request as the server sees it.

    ``method`` is the remote method name; ``pre`` the node it concerned (when
    applicable); ``point`` the evaluation point for containment tests — this
    is exactly the client's secret ``map(tag)`` value, sent in the clear.
    """

    sequence: int
    method: str
    pre: Optional[int] = None
    point: Optional[int] = None
    pres: Tuple[int, ...] = ()


class ServerView:
    """The accumulated observation log of an honest-but-curious server."""

    def __init__(self) -> None:
        self.calls: List[ObservedCall] = []
        self._sequence = 0
        #: arithmetic kernel backend that served the observed trace
        #: ("prime", "table" or "naive"); stamped by the observing filter
        self.backend: Optional[str] = None

    def record(self, method: str, pre: Optional[int] = None, point: Optional[int] = None, pres: Tuple[int, ...] = ()) -> None:
        """Append one observation."""
        self._sequence += 1
        self.calls.append(ObservedCall(self._sequence, method, pre=pre, point=point, pres=pres))

    # ------------------------------------------------------------------
    # Convenience projections
    # ------------------------------------------------------------------

    _EVALUATION_METHODS = ("evaluate", "evaluate_many", "evaluate_batch")
    _EXPANSION_METHODS = (
        "children_of",
        "descendants_of",
        "children_of_many",
        "descendants_of_many",
    )
    _FETCH_METHODS = ("fetch_share", "fetch_shares", "fetch_shares_batch")

    def evaluation_points(self) -> List[int]:
        """Distinct evaluation points observed, in first-seen order."""
        seen: Dict[int, None] = {}
        for call in self.calls:
            if call.method in self._EVALUATION_METHODS and call.point is not None:
                seen.setdefault(call.point, None)
        return list(seen)

    def evaluations_by_point(self) -> Dict[int, List[int]]:
        """Evaluation point → list of node ``pre`` numbers it was applied to.

        Batched evaluations are unpacked: one ``evaluate_batch`` over *n*
        candidates leaks exactly the same (point, pre) pairs as *n* per-node
        calls, so the attacks see through the batching untouched.
        """
        grouped: Dict[int, List[int]] = {}
        for call in self.calls:
            if call.method not in self._EVALUATION_METHODS or call.point is None:
                continue
            if call.pre is not None:
                grouped.setdefault(call.point, []).append(call.pre)
            for pre in call.pres:
                grouped.setdefault(call.point, []).append(pre)
        return grouped

    def expanded_nodes(self) -> List[int]:
        """Nodes whose children/descendants were subsequently requested."""
        expanded: Dict[int, None] = {}
        for call in self.calls:
            if call.method in self._EXPANSION_METHODS:
                if call.pre is not None:
                    expanded.setdefault(call.pre, None)
                for pre in call.pres:
                    expanded.setdefault(pre, None)
        return list(expanded)

    def fetched_shares(self) -> List[int]:
        """Nodes whose full share vectors were fetched (equality tests)."""
        fetched: Dict[int, None] = {}
        for call in self.calls:
            if call.method in self._FETCH_METHODS:
                if call.pre is not None:
                    fetched.setdefault(call.pre, None)
                for pre in call.pres:
                    fetched.setdefault(pre, None)
        return list(fetched)

    def call_count(self, method: Optional[str] = None) -> int:
        """Total observations, optionally restricted to one method."""
        if method is None:
            return len(self.calls)
        return sum(1 for call in self.calls if call.method == method)

    def clear(self) -> None:
        """Forget everything observed so far."""
        self.calls.clear()
        self._sequence = 0


class ObservingServerFilter(ServerFilter):
    """A :class:`ServerFilter` that logs every request into a :class:`ServerView`.

    The wrapper changes no behaviour — results are identical to the plain
    server filter — it only records the information any real server would
    necessarily see while executing the protocol.
    """

    def __init__(self, table, ring, view: Optional[ServerView] = None):
        super().__init__(table, ring)
        self.view = view or ServerView()
        self.view.backend = ring.kernel.name

    # Structural queries -------------------------------------------------

    def root_pre(self) -> int:
        self.view.record("root_pre")
        return super().root_pre()

    def children_of(self, pre: int):
        self.view.record("children_of", pre=pre)
        return super().children_of(pre)

    def children_of_many(self, pres):
        self.view.record("children_of_many", pres=tuple(pres))
        return super().children_of_many(pres)

    def descendants_of(self, pre: int):
        self.view.record("descendants_of", pre=pre)
        return super().descendants_of(pre)

    def descendants_of_many(self, pres):
        self.view.record("descendants_of_many", pres=tuple(pres))
        return super().descendants_of_many(pres)

    def node_infos(self, pres):
        self.view.record("node_infos", pres=tuple(pres))
        return super().node_infos(pres)

    def parent_of(self, pre: int) -> int:
        self.view.record("parent_of", pre=pre)
        return super().parent_of(pre)

    # Share access --------------------------------------------------------

    def evaluate(self, pre: int, point: int) -> int:
        self.view.record("evaluate", pre=pre, point=point)
        return super().evaluate(pre, point)

    def evaluate_many(self, pres, point):
        self.view.record("evaluate_many", point=point, pres=tuple(pres))
        return ServerFilter.evaluate_batch(self, pres, point)

    def evaluate_batch(self, pres, point):
        self.view.record("evaluate_batch", point=point, pres=tuple(pres))
        return super().evaluate_batch(pres, point)

    def fetch_share(self, pre: int):
        self.view.record("fetch_share", pre=pre)
        return super().fetch_share(pre)

    def fetch_shares(self, pres):
        self.view.record("fetch_shares", pres=tuple(pres))
        return ServerFilter.fetch_shares_batch(self, pres)

    def fetch_shares_batch(self, pres):
        self.view.record("fetch_shares_batch", pres=tuple(pres))
        return super().fetch_shares_batch(pres)
