"""Result records produced by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class QueryMeasurement:
    """One measured query execution.

    The experiment runners build one of these per (query, engine, test)
    combination; the report printers turn lists of them into the rows/series
    of the corresponding paper figure.
    """

    #: the XPath query text
    query: str
    #: "simple" or "advanced"
    engine: str
    #: "containment" (non-strict) or "equality" (strict)
    test: str
    #: number of result nodes returned
    result_size: int
    #: polynomial evaluations performed (figure 5's y-axis)
    evaluations: int
    #: equality tests performed
    equality_tests: int
    #: wall-clock seconds (figure 6's y-axis)
    elapsed_seconds: float
    #: remote calls made, when the client/server transport was used
    remote_calls: int = 0
    #: bytes across the simulated network
    remote_bytes: int = 0
    #: any additional counters worth keeping
    extra: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ExperimentRecord:
    """A named experiment with its collected measurements and metadata."""

    #: experiment identifier, e.g. "figure-5"
    experiment_id: str
    #: human-readable title
    title: str
    #: free-form parameters (document scale, field size, …)
    parameters: Dict[str, Any] = field(default_factory=dict)
    #: the collected measurements
    measurements: List[QueryMeasurement] = field(default_factory=list)
    #: non-query series (e.g. figure 4's sizes) keyed by row label
    series: Dict[str, List[Any]] = field(default_factory=dict)

    def add(self, measurement: QueryMeasurement) -> None:
        """Append one measurement."""
        self.measurements.append(measurement)

    def add_series_point(self, series_name: str, value: Any) -> None:
        """Append a point to a named series."""
        self.series.setdefault(series_name, []).append(value)

    def measurements_for(self, engine: Optional[str] = None, test: Optional[str] = None) -> List[QueryMeasurement]:
        """Filter measurements by engine and/or test."""
        selected = self.measurements
        if engine is not None:
            selected = [m for m in selected if m.engine == engine]
        if test is not None:
            selected = [m for m in selected if m.test == test]
        return selected

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable representation (used by the report writers)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "parameters": dict(self.parameters),
            "series": {name: list(values) for name, values in self.series.items()},
            "measurements": [
                {
                    "query": m.query,
                    "engine": m.engine,
                    "test": m.test,
                    "result_size": m.result_size,
                    "evaluations": m.evaluations,
                    "equality_tests": m.equality_tests,
                    "elapsed_seconds": m.elapsed_seconds,
                    "remote_calls": m.remote_calls,
                    "remote_bytes": m.remote_bytes,
                    "extra": dict(m.extra),
                }
                for m in self.measurements
            ],
        }
