"""Instrumentation: evaluation counters, timers and experiment records.

The paper's primary comparison metric is the *number of polynomial
evaluations* a query engine performs (figure 5) together with wall-clock
execution time (figure 6) and result-set accuracy (figure 7).  Every filter
and engine in this library reports through a shared
:class:`~repro.metrics.counters.EvaluationCounters` instance so the
experiment harness can read the same quantities the paper plots.
"""

from repro.metrics.counters import EvaluationCounters
from repro.metrics.records import ExperimentRecord, QueryMeasurement
from repro.metrics.timer import Stopwatch

__all__ = [
    "EvaluationCounters",
    "Stopwatch",
    "ExperimentRecord",
    "QueryMeasurement",
]
