"""A small stopwatch for the timing columns of the experiment reports."""

from __future__ import annotations

import time
from typing import Optional


class Stopwatch:
    """Measures wall-clock durations with ``perf_counter`` precision.

    Usable either imperatively (``start`` / ``stop``) or as a context
    manager::

        with Stopwatch() as watch:
            run_query()
        print(watch.elapsed)
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        """Start (or restart) timing."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop timing and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("stopwatch was not started")
        self._elapsed += time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    def reset(self) -> None:
        """Zero the accumulated time."""
        self._start = None
        self._elapsed = 0.0

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently timing."""
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Accumulated seconds (including the current run when running)."""
        if self._start is not None:
            return self._elapsed + (time.perf_counter() - self._start)
        return self._elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()
