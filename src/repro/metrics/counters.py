"""Counters shared by the filters and query engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class EvaluationCounters:
    """Counts of the primitive operations a query performs.

    ``evaluations`` is the headline number of figure 5: one unit per
    polynomial evaluation *pair* (server share + regenerated client share,
    summed).  Equality tests are counted separately because their cost is
    proportional to the number of children involved (section 6.3), and the
    harness reports both.
    """

    #: containment-style evaluations (one per (node, value) pair tested)
    evaluations: int = 0
    #: equality tests performed (each involves reconstructing the node and all children)
    equality_tests: int = 0
    #: polynomials reconstructed from shares (client + server addition of full vectors)
    reconstructions: int = 0
    #: nodes fetched from the server store
    nodes_fetched: int = 0
    #: client-share regenerations from the PRG
    client_regenerations: int = 0
    #: per-label counts for ad-hoc instrumentation
    extra: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def count_evaluation(self, amount: int = 1) -> None:
        """Record ``amount`` containment evaluations."""
        self.evaluations += amount

    def count_equality_test(self, children: int) -> None:
        """Record one equality test involving ``children`` child polynomials."""
        self.equality_tests += 1
        self.extra["equality_children"] = self.extra.get("equality_children", 0) + children

    def count_reconstruction(self, amount: int = 1) -> None:
        """Record ``amount`` full polynomial reconstructions."""
        self.reconstructions += amount

    def count_fetch(self, amount: int = 1) -> None:
        """Record ``amount`` node rows fetched from the server."""
        self.nodes_fetched += amount

    def count_regeneration(self, amount: int = 1) -> None:
        """Record ``amount`` client-share regenerations."""
        self.client_regenerations += amount

    def bump(self, label: str, amount: int = 1) -> None:
        """Record an ad-hoc labelled count."""
        self.extra[label] = self.extra.get(label, 0) + amount

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Zero every counter."""
        self.evaluations = 0
        self.equality_tests = 0
        self.reconstructions = 0
        self.nodes_fetched = 0
        self.client_regenerations = 0
        self.extra.clear()

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy (extra labels flattened in)."""
        result = {
            "evaluations": self.evaluations,
            "equality_tests": self.equality_tests,
            "reconstructions": self.reconstructions,
            "nodes_fetched": self.nodes_fetched,
            "client_regenerations": self.client_regenerations,
        }
        result.update(self.extra)
        return result

    @property
    def total_work(self) -> int:
        """A single scalar combining evaluations and equality tests.

        Used for coarse comparisons in ablation benchmarks; the per-figure
        harnesses report the individual counters instead.
        """
        return self.evaluations + self.equality_tests + self.reconstructions

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            "EvaluationCounters(evaluations=%d, equality_tests=%d, reconstructions=%d, fetched=%d)"
            % (self.evaluations, self.equality_tests, self.reconstructions, self.nodes_fetched)
        )
