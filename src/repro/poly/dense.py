"""Dense univariate polynomials over a finite field.

Coefficients are stored little-endian (``coeffs[i]`` multiplies ``x**i``) as
canonical field integers.  Instances are immutable; arithmetic returns new
objects.  The zero polynomial is represented by an empty coefficient tuple and
reports degree ``-1``.

Bulk coefficient arithmetic (addition, products, Horner evaluation, the
brute-force root search) is routed through the field's
:class:`~repro.gf.kernels.FieldKernel` rather than per-coefficient ``Field``
method dispatch; the results are bit-identical.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.gf.base import Field, FieldError


class PolynomialError(ValueError):
    """Raised for invalid polynomial operations (e.g. division by zero)."""


class Polynomial:
    """A dense polynomial over a finite field.

    Supports the usual ring operations plus Euclidean division, evaluation
    (Horner's rule), gcd, and construction helpers for the ``x - value``
    monomials that the encoding is built from.
    """

    __slots__ = ("field", "coeffs")

    def __init__(self, field: Field, coeffs: Iterable[int] = ()):  # noqa: D401
        self.field = field
        trimmed: List[int] = [field.validate(c) for c in coeffs]
        while trimmed and trimmed[-1] == 0:
            trimmed.pop()
        self.coeffs: Tuple[int, ...] = tuple(trimmed)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def _wrap(cls, field: Field, coeffs: List[int]) -> "Polynomial":
        """Adopt an already-canonical coefficient list without re-validating.

        Internal fast path for kernel outputs (which are canonical by
        construction); ``coeffs`` must be a fresh list the caller gives up.
        Array-native kernel outputs are normalised to plain Python ints.
        """
        if hasattr(coeffs, "tolist"):
            coeffs = coeffs.tolist()
        while coeffs and coeffs[-1] == 0:
            coeffs.pop()
        poly = cls.__new__(cls)
        poly.field = field
        poly.coeffs = tuple(coeffs)
        return poly

    @classmethod
    def zero(cls, field: Field) -> "Polynomial":
        """The zero polynomial."""
        return cls(field, ())

    @classmethod
    def one(cls, field: Field) -> "Polynomial":
        """The constant polynomial 1."""
        return cls(field, (field.one,))

    @classmethod
    def constant(cls, field: Field, value: int) -> "Polynomial":
        """The constant polynomial ``value``."""
        return cls(field, (field.from_int(value),))

    @classmethod
    def x(cls, field: Field) -> "Polynomial":
        """The identity polynomial ``x``."""
        return cls(field, (0, field.one))

    @classmethod
    def linear_factor(cls, field: Field, root: int) -> "Polynomial":
        """The monomial ``x - root``, the building block of the encoding."""
        return cls(field, (field.neg(field.from_int(root)), field.one))

    @classmethod
    def from_roots(cls, field: Field, roots: Sequence[int]) -> "Polynomial":
        """The monic polynomial with the given roots (with multiplicity)."""
        result = cls.one(field)
        for root in roots:
            result = result * cls.linear_factor(field, root)
        return result

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def degree(self) -> int:
        """Degree of the polynomial; ``-1`` for the zero polynomial."""
        return len(self.coeffs) - 1

    @property
    def is_zero(self) -> bool:
        """True when this is the zero polynomial."""
        return not self.coeffs

    @property
    def is_monic(self) -> bool:
        """True when the leading coefficient is one."""
        return bool(self.coeffs) and self.coeffs[-1] == self.field.one

    @property
    def leading_coefficient(self) -> int:
        """Leading coefficient (zero for the zero polynomial)."""
        return self.coeffs[-1] if self.coeffs else 0

    def coefficient(self, power: int) -> int:
        """Coefficient of ``x**power`` (zero when beyond the degree)."""
        if 0 <= power < len(self.coeffs):
            return self.coeffs[power]
        return 0

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _check_same_field(self, other: "Polynomial") -> None:
        if self.field != other.field:
            raise FieldError(
                "cannot combine polynomials over %r and %r" % (self.field, other.field)
            )

    def _padded(self, length: int) -> Tuple[int, ...]:
        """Coefficients zero-extended to ``length`` (for aligned vector ops)."""
        if len(self.coeffs) >= length:
            return self.coeffs
        return self.coeffs + (0,) * (length - len(self.coeffs))

    def __add__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        self._check_same_field(other)
        length = max(len(self.coeffs), len(other.coeffs))
        coeffs = self.field.kernel.vec_add(self._padded(length), other._padded(length))
        return Polynomial._wrap(self.field, coeffs)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        self._check_same_field(other)
        length = max(len(self.coeffs), len(other.coeffs))
        coeffs = self.field.kernel.vec_sub(self._padded(length), other._padded(length))
        return Polynomial._wrap(self.field, coeffs)

    def __neg__(self) -> "Polynomial":
        return Polynomial._wrap(self.field, self.field.kernel.vec_neg(self.coeffs))

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        self._check_same_field(other)
        if self.is_zero or other.is_zero:
            return Polynomial.zero(self.field)
        product = self.field.kernel.convolve(self.coeffs, other.coeffs)
        return Polynomial._wrap(self.field, product)

    def scale(self, scalar: int) -> "Polynomial":
        """Multiply every coefficient by a field scalar."""
        field = self.field
        scalar = field.from_int(scalar)
        return Polynomial._wrap(field, field.kernel.vec_scale(self.coeffs, scalar))

    def __divmod__(self, divisor: "Polynomial") -> Tuple["Polynomial", "Polynomial"]:
        if not isinstance(divisor, Polynomial):
            return NotImplemented
        self._check_same_field(divisor)
        if divisor.is_zero:
            raise PolynomialError("polynomial division by zero")
        field = self.field
        remainder = list(self.coeffs)
        quotient = [0] * max(0, len(remainder) - len(divisor.coeffs) + 1)
        inv_lead = field.inv(divisor.leading_coefficient)
        dlen = len(divisor.coeffs)
        while len(remainder) >= dlen:
            lead = remainder[-1]
            if lead == 0:
                remainder.pop()
                continue
            factor = field.mul(lead, inv_lead)
            shift = len(remainder) - dlen
            quotient[shift] = factor
            for i, dc in enumerate(divisor.coeffs):
                remainder[shift + i] = field.sub(remainder[shift + i], field.mul(factor, dc))
            while remainder and remainder[-1] == 0:
                remainder.pop()
        return Polynomial(field, quotient), Polynomial(field, remainder)

    def __floordiv__(self, divisor: "Polynomial") -> "Polynomial":
        quotient, _ = divmod(self, divisor)
        return quotient

    def __mod__(self, divisor: "Polynomial") -> "Polynomial":
        _, remainder = divmod(self, divisor)
        return remainder

    def __pow__(self, exponent: int) -> "Polynomial":
        if exponent < 0:
            raise PolynomialError("negative polynomial exponents are not supported")
        result = Polynomial.one(self.field)
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def evaluate(self, point: int) -> int:
        """Evaluate at ``point`` using Horner's rule; returns a field int."""
        field = self.field
        return field.kernel.horner(self.coeffs, field.from_int(point))

    def roots(self) -> List[int]:
        """All field elements at which the polynomial evaluates to zero.

        Brute force over the field (one kernel ``eval_points`` sweep); fine
        for the small fields the encoding uses (``q <= a few hundred``).
        """
        if self.is_zero:
            return list(self.field.elements())
        values = self.field.kernel.eval_points(self.coeffs, self.field.elements())
        return [a for a, value in enumerate(values) if value == 0]

    def monic(self) -> "Polynomial":
        """Return the monic scalar multiple of this polynomial."""
        if self.is_zero:
            return self
        return self.scale(self.field.inv(self.leading_coefficient))

    def gcd(self, other: "Polynomial") -> "Polynomial":
        """Monic greatest common divisor via the Euclidean algorithm."""
        self._check_same_field(other)
        a, b = self, other
        while not b.is_zero:
            a, b = b, a % b
        return a.monic() if not a.is_zero else a

    def derivative(self) -> "Polynomial":
        """Formal derivative."""
        field = self.field
        coeffs = [
            field.mul(field.from_int(i), c) for i, c in enumerate(self.coeffs) if i > 0
        ]
        return Polynomial(field, coeffs)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self.field == other.field and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash((self.field, self.coeffs))

    def __bool__(self) -> bool:
        return bool(self.coeffs)

    def __len__(self) -> int:
        return len(self.coeffs)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "Polynomial(%s)" % self.format()

    def format(self, variable: str = "x") -> str:
        """Human-readable rendering, highest power first (as in the paper)."""
        if self.is_zero:
            return "0"
        terms = []
        for power in range(self.degree, -1, -1):
            coefficient = self.coefficient(power)
            if coefficient == 0:
                continue
            if power == 0:
                terms.append(str(coefficient))
            elif power == 1:
                terms.append(variable if coefficient == 1 else "%d%s" % (coefficient, variable))
            else:
                base = "%s^%d" % (variable, power)
                terms.append(base if coefficient == 1 else "%d%s" % (coefficient, base))
        return " + ".join(terms)
