"""Polynomials over finite fields and the quotient ring used by the encoding.

Section 3 of the paper encodes an XML tree into a tree of polynomials in the
ring ``F_{p^e}[x] / (x^{p^e - 1} - 1)``:

* leaves become the monomial ``x - map(node)``,
* internal nodes become ``(x - map(node)) * Π f(child)``.

The *containment test* evaluates a node polynomial at ``map(N)`` and checks
for zero; the *equality test* divides a node polynomial by the product of its
children and checks that the quotient is the monomial ``x - map(N)``.

:class:`~repro.poly.dense.Polynomial` implements ordinary dense polynomials
over a :class:`~repro.gf.base.Field` (used for plain ``F_p[x]`` work such as
irreducibility checks and exact division), while
:class:`~repro.poly.ring.QuotientRing` implements the cyclic quotient ring the
encoding actually lives in, including the factor-extraction routine backing
the equality test.
"""

from repro.poly.dense import Polynomial, PolynomialError
from repro.poly.ring import QuotientRing, RingPolynomial

__all__ = [
    "Polynomial",
    "PolynomialError",
    "QuotientRing",
    "RingPolynomial",
]
