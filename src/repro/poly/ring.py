"""The cyclic quotient ring ``F_q[x] / (x^{q-1} - 1)`` of the encoding.

Every node polynomial produced by the paper's encoding lives in this ring:
high powers of ``x`` wrap around because ``x^{q-1} ≡ 1``.  Reducing to the
ring is what keeps the storage per node bounded at ``(q - 1) * log2(q)`` bits
regardless of subtree size.

Ring elements are fixed-length coefficient vectors (length ``q - 1``), which
makes additive secret sharing trivial: the client and server shares are two
vectors of the same shape that sum component-wise to the real polynomial.

Evaluation is only meaningful at *non-zero* field points: every non-zero
``a`` satisfies ``a^{q-1} = 1`` so the evaluation map is well defined on the
quotient; at ``a = 0`` different representatives disagree.  The tag-name map
therefore never assigns the value zero (see :mod:`repro.encode.tagmap`).

All ring arithmetic (component-wise sums, the cyclic-convolution product,
Horner evaluation) runs on the field's
:class:`~repro.gf.kernels.FieldKernel` — flat table/modular operations on
whole coefficient vectors instead of one dispatched ``Field`` call per
coefficient — with bit-identical results.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.gf.base import Field, FieldError
from repro.poly.dense import Polynomial, PolynomialError


class RingPolynomial:
    """An element of ``F_q[x]/(x^{q-1} - 1)`` as a fixed-length vector.

    Instances are created by a :class:`QuotientRing` and carry a reference to
    it; arithmetic is delegated to the ring so all elements stay in canonical
    (fully reduced, fixed-length) form.
    """

    __slots__ = ("ring", "coeffs")

    def __init__(self, ring: "QuotientRing", coeffs: Sequence[int]):
        if len(coeffs) != ring.length:
            raise PolynomialError(
                "ring polynomial needs exactly %d coefficients, got %d"
                % (ring.length, len(coeffs))
            )
        self.ring = ring
        self.coeffs: Tuple[int, ...] = tuple(ring.field.validate(c) for c in coeffs)

    # ------------------------------------------------------------------
    # Arithmetic (delegating to the ring)
    # ------------------------------------------------------------------

    def __add__(self, other: "RingPolynomial") -> "RingPolynomial":
        return self.ring.add(self, other)

    def __sub__(self, other: "RingPolynomial") -> "RingPolynomial":
        return self.ring.sub(self, other)

    def __neg__(self) -> "RingPolynomial":
        return self.ring.neg(self)

    def __mul__(self, other: "RingPolynomial") -> "RingPolynomial":
        return self.ring.mul(self, other)

    def evaluate(self, point: int) -> int:
        """Evaluate at a non-zero field point (see module docstring)."""
        return self.ring.evaluate(self, point)

    def to_polynomial(self) -> Polynomial:
        """Convert to a plain :class:`Polynomial` (the canonical representative)."""
        return Polynomial(self.ring.field, self.coeffs)

    @property
    def is_zero(self) -> bool:
        """True when every coefficient is zero."""
        return all(c == 0 for c in self.coeffs)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RingPolynomial):
            return NotImplemented
        return self.ring == other.ring and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        # The ring is hashed by value (like __eq__ compares it) so equal
        # polynomials from two equal-but-distinct QuotientRing instances
        # land in the same hash bucket.
        return hash((self.ring, self.coeffs))

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "RingPolynomial(%s)" % self.to_polynomial().format()


class QuotientRing:
    """Factory and arithmetic context for :class:`RingPolynomial` values.

    ``QuotientRing(field)`` models ``field[x] / (x^{field.order - 1} - 1)``.
    """

    def __init__(self, field: Field):
        if field.order < 3:
            raise FieldError(
                "the encoding ring needs a field with at least 3 elements, got order %d"
                % field.order
            )
        self.field = field
        #: number of stored coefficients per ring element (q - 1)
        self.length = field.order - 1

    @property
    def kernel(self):
        """The field's bulk-arithmetic kernel (resolved per call so a
        backend switch on the field takes effect immediately)."""
        return self.field.kernel

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def wrap_canonical(self, coeffs: Sequence[int]) -> RingPolynomial:
        """Adopt an already-canonical coefficient vector without re-validating.

        Fast path for coefficients produced by a kernel or the keyed PRG
        (both emit canonical field integers); the length must still match.
        Array-native kernel outputs (int64 ndarrays) are normalised through
        ``tolist`` so the stored tuple always holds plain Python ints — the
        wire codec and the storage schema reject numpy scalars.
        """
        if len(coeffs) != self.length:
            raise PolynomialError(
                "ring polynomial needs exactly %d coefficients, got %d"
                % (self.length, len(coeffs))
            )
        if hasattr(coeffs, "tolist"):
            coeffs = coeffs.tolist()
        poly = RingPolynomial.__new__(RingPolynomial)
        poly.ring = self
        poly.coeffs = tuple(coeffs)
        return poly

    def zero(self) -> RingPolynomial:
        """The zero element."""
        return self.wrap_canonical([0] * self.length)

    def one(self) -> RingPolynomial:
        """The multiplicative identity."""
        coeffs = [0] * self.length
        coeffs[0] = self.field.one
        return self.wrap_canonical(coeffs)

    def from_coeffs(self, coeffs: Iterable[int]) -> RingPolynomial:
        """Build a ring element from little-endian coefficients of any length.

        Coefficients of ``x^i`` with ``i >= q - 1`` are folded onto
        ``x^(i mod (q-1))``, implementing the quotient by ``x^{q-1} - 1``.
        """
        field = self.field
        folded = [0] * self.length
        for i, coefficient in enumerate(coeffs):
            slot = i % self.length
            folded[slot] = field.add(folded[slot], field.validate(coefficient))
        return RingPolynomial(self, folded)

    def from_polynomial(self, poly: Polynomial) -> RingPolynomial:
        """Reduce a plain polynomial into the ring."""
        if poly.field != self.field:
            raise FieldError("polynomial field %r does not match ring field %r" % (poly.field, self.field))
        return self.from_coeffs(poly.coeffs)

    def linear_factor(self, root: int) -> RingPolynomial:
        """The encoding monomial ``x - root``."""
        field = self.field
        coeffs = [0] * self.length
        coeffs[0] = field.neg(field.from_int(root))
        if self.length > 1:
            coeffs[1] = field.one
        else:  # degenerate q = 2 ring collapses x onto the constant term
            coeffs[0] = field.add(coeffs[0], field.one)
        return RingPolynomial(self, coeffs)

    def from_root_multiset(self, roots: Sequence[int]) -> RingPolynomial:
        """Product of ``x - root`` over ``roots`` (with multiplicity), reduced."""
        result = self.one()
        for root in roots:
            result = self.linear_mul(root, result)
        return result

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _check(self, value: RingPolynomial) -> None:
        if value.ring is not self and value.ring != self:
            raise FieldError("ring polynomial belongs to a different ring")

    def add(self, a: RingPolynomial, b: RingPolynomial) -> RingPolynomial:
        """Component-wise sum."""
        self._check(a)
        self._check(b)
        return self.wrap_canonical(self.kernel.vec_add(a.coeffs, b.coeffs))

    def sub(self, a: RingPolynomial, b: RingPolynomial) -> RingPolynomial:
        """Component-wise difference."""
        self._check(a)
        self._check(b)
        return self.wrap_canonical(self.kernel.vec_sub(a.coeffs, b.coeffs))

    def neg(self, a: RingPolynomial) -> RingPolynomial:
        """Component-wise negation."""
        self._check(a)
        return self.wrap_canonical(self.kernel.vec_neg(a.coeffs))

    def mul(self, a: RingPolynomial, b: RingPolynomial) -> RingPolynomial:
        """Cyclic convolution (multiplication modulo ``x^{q-1} - 1``)."""
        self._check(a)
        self._check(b)
        return self.wrap_canonical(self.kernel.cyclic_convolve(a.coeffs, b.coeffs))

    def linear_mul(self, root: int, a: RingPolynomial) -> RingPolynomial:
        """The product ``(x - root) * a`` via the kernel's O(n) linear path.

        Identical to ``mul(linear_factor(root), a)`` — the encoding performs
        one such product per node, which earns the monomial its own kernel
        primitive.
        """
        self._check(a)
        root = self.field.from_int(root)
        return self.wrap_canonical(self.kernel.cyclic_mul_linear(root, a.coeffs))

    def _checked_point(self, point: int) -> int:
        point = self.field.from_int(point)
        if point == 0:
            raise PolynomialError(
                "evaluation at 0 is not well defined on the quotient ring; "
                "tag map values must be non-zero"
            )
        return point

    def evaluate(self, a: RingPolynomial, point: int) -> int:
        """Evaluate a ring element at a non-zero field point."""
        self._check(a)
        return self.kernel.horner(a.coeffs, self._checked_point(point))

    def evaluate_many(self, polys: Sequence[RingPolynomial], point: int) -> List[int]:
        """Evaluate many ring elements at the same non-zero field point.

        One kernel ``horner_many`` sweep (shared power table on the prime
        backend) instead of a dispatched Horner loop per polynomial; this is
        the server side of a batched containment test.
        """
        for poly in polys:
            self._check(poly)
        return self.kernel.horner_many([poly.coeffs for poly in polys], self._checked_point(point))

    def evaluate_rows(self, rows: Sequence[Sequence[int]], point: int) -> List[int]:
        """Evaluate many raw coefficient rows at one non-zero field point.

        The array-resident sibling of :meth:`evaluate_many`: rows are trusted
        canonical coefficient vectors (or a kernel matrix) straight from a
        share table or the keyed PRG, skipping RingPolynomial construction
        entirely.
        """
        return self.kernel.horner_many(rows, self._checked_point(point))

    # ------------------------------------------------------------------
    # Equality-test support
    # ------------------------------------------------------------------

    def extract_linear_factor(
        self, node_poly: RingPolynomial, children_product: RingPolynomial
    ) -> Optional[int]:
        """Recover ``t`` such that ``node_poly == (x - t) * children_product``.

        This is the paper's *equality test* primitive: after reconstructing a
        node's polynomial and the product of all its direct children's
        polynomials, dividing the former by the latter must leave the monomial
        ``x - t`` where ``t`` is the node's own mapped tag value.

        Returns the root ``t`` when such a factorisation exists, otherwise
        ``None`` (which the filters interpret as "tag not equal").

        The algorithm avoids true division in the quotient ring (which is not
        an integral domain) by solving for ``t`` from one evaluation point
        where the children product does not vanish and then verifying the
        candidate with a full ring multiplication.
        """
        self._check(node_poly)
        self._check(children_product)
        field = self.field
        kernel = self.kernel
        candidate: Optional[int] = None
        for point in range(1, field.order):
            denominator = kernel.horner(children_product.coeffs, point)
            if denominator == 0:
                continue
            numerator = kernel.horner(node_poly.coeffs, point)
            # node(a) = (a - t) * children(a)  =>  t = a - node(a)/children(a)
            candidate = field.sub(point, field.div(numerator, denominator))
            break
        if candidate is None:
            # The children product vanishes everywhere on F_q^*; no unique
            # linear factor can be recovered.
            return None
        reconstructed = self.linear_mul(candidate, children_product)
        if reconstructed == node_poly:
            return candidate
        return None

    def divides_cleanly(
        self, node_poly: RingPolynomial, children_product: RingPolynomial, tag_value: int
    ) -> bool:
        """Check ``node_poly == (x - tag_value) * children_product`` exactly."""
        expected = self.linear_mul(tag_value, children_product)
        return expected == node_poly

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    @property
    def element_bits(self) -> int:
        """Storage bits per ring element: ``(q - 1) * ceil(log2 q)``.

        This is the quantity the paper uses for its storage-cost discussion
        (section 4: "each polynomial takes ``(p^e − 1) log2 p^e`` bits").
        """
        return self.length * self.field.element_bits

    @property
    def element_bytes(self) -> int:
        """Storage bytes per ring element, rounded up."""
        return (self.element_bits + 7) // 8

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuotientRing):
            return NotImplemented
        return self.field == other.field

    def __hash__(self) -> int:
        return hash(("QuotientRing", self.field))

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "QuotientRing(F_%d[x]/(x^%d - 1))" % (self.field.order, self.length)
