"""Public facade of the library.

:class:`~repro.core.database.EncryptedXMLDatabase` ties every substrate
together: it encodes a document into the secret-shared store, stands up the
client/server filter pair (optionally behind the simulated RMI boundary) and
exposes the two query engines and two matching rules through one call.

Typical use::

    from repro import EncryptedXMLDatabase
    from repro.xmark import generate_document

    document = generate_document(scale=0.02)
    database = EncryptedXMLDatabase.from_document(document)
    result = database.query("/site/regions/europe/item", engine="advanced", strict=True)
    print(result.matches, result.evaluations)
"""

from repro.core.database import EncryptedXMLDatabase, QueryConfigError

__all__ = ["EncryptedXMLDatabase", "QueryConfigError"]
