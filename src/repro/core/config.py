"""Typed configuration for :class:`~repro.core.database.EncryptedXMLDatabase`.

``from_document`` historically grew one keyword argument per feature —
twenty-nine knobs in one flat signature, with the conflict rules (modeled
latency over a measured transport, cluster options without a cluster, …)
buried in the constructor body.  This module replaces that surface with
four small dataclasses grouped by concern:

* :class:`FieldConfig` — the encoding itself: field, tag map, seed,
  trie transform, storage layout.
* :class:`ClusterConfig` — the share fleet: server count, sharing
  scheme, threshold, read quorum, verification.
* :class:`TransportConfig` — how calls travel: simulated / socket /
  asyncio, latency model, concurrency, hedging, prefetch.
* :class:`WriteConfig` — the versioned write path: enablement, journal
  retention, reconstruction-time read repair.

:class:`DatabaseConfig` composes them (plus ``keep_plaintext``) and owns
every cross-cutting validation rule in :meth:`DatabaseConfig.validated`,
raising :class:`QueryConfigError` — the same type the legacy surface
raised, so existing error handling keeps working.  The legacy kwargs are
accepted through :meth:`DatabaseConfig.from_legacy_kwargs` (the mapping
shim behind ``from_document``'s deprecation path).
"""

from __future__ import annotations

from dataclasses import dataclass, field as _field, fields, replace
from typing import Iterable, List, Optional, Tuple, Union


class ConfigError(ValueError):
    """An invalid or internally conflicting database configuration."""


class QueryConfigError(ConfigError):
    """Raised for invalid engine/rule selections or unusable configurations.

    Historically defined in :mod:`repro.core.database`; it lives with the
    config objects now and is re-exported from its old home.
    """


@dataclass(frozen=True)
class FieldConfig:
    """The encoding: field choice, tag map, seed and storage layout."""

    #: map alphabet (e.g. the DTD's element names); ``None`` derives it
    #: from the document itself
    tag_names: Optional[Iterable[str]] = None
    #: PRG master seed; ``None`` draws a fresh one
    seed: Optional[bytes] = None
    #: field characteristic (``None`` picks the smallest fitting prime)
    p: Optional[int] = None
    #: field extension degree (``F_{p^e}``)
    e: int = 1
    #: shuffle seed for a randomised tag -> value assignment
    map_shuffle_seed: Optional[int] = None
    #: rewrite text payloads into trie elements (enables ``contains()``)
    use_trie: bool = False
    #: compress trie chains into single edges
    trie_compressed: bool = True
    #: B+-tree fan-out of the node-table indexes
    btree_order: int = 64
    #: indexed columns (``None`` = the encoder's default set)
    index_columns: Optional[List[str]] = None


@dataclass(frozen=True)
class ClusterConfig:
    """The share fleet: how many servers hold what under which scheme."""

    servers: int = 1
    #: reconstruction threshold for ``sharing="shamir"`` (k of n)
    threshold: Optional[int] = None
    #: ``"additive"`` (n-of-n, regenerable PRG lanes) or ``"shamir"``
    sharing: str = "additive"
    #: force (``True``) or forbid (``False``) the cluster stack;
    #: ``None`` infers it from the other knobs
    cluster: Optional[bool] = None
    #: servers contacted per share read (``None`` = all of them)
    read_quorum: Optional[int] = None
    #: verify redundant replies against the reconstruction
    verify_shares: bool = True


@dataclass(frozen=True)
class TransportConfig:
    """How calls travel and what latency they are charged."""

    #: ``"simulated"``, ``"socket"`` or ``"asyncio"``
    transport: str = "simulated"
    #: single-server mode: cross a simulated RMI boundary (vs in-process)
    use_rmi: bool = True
    #: batched per-step remote protocol (vs one call per candidate)
    batched: bool = True
    per_call_latency: float = 0.0
    per_byte_latency: float = 0.0
    latency_jitter: float = 0.0
    #: thread-pool scatter-gather (``False`` = sequential loop)
    concurrency: bool = True
    #: hedged straggler co-issue (socket: rejected; asyncio: RTT quantile)
    hedge: Union[bool, float] = False
    #: structural rounds overlapped with in-flight share reads
    prefetch: int = 0
    #: fixed modeled cost per scatter round
    round_overhead: float = 0.0


@dataclass(frozen=True)
class WriteConfig:
    """The versioned write path (see :mod:`repro.rmi.write`)."""

    #: build the write surface: a client-side
    #: :class:`~repro.encode.mutate.DocumentState` plus a
    #: :class:`~repro.rmi.write.WriteCoordinator` driving two-phase
    #: deltas across the fleet
    enabled: bool = False
    #: committed deltas retained for replay repair (``None`` = unbounded)
    journal_capacity: Optional[int] = None
    #: arm reconstruction-time read repair on the cluster client
    read_repair: bool = True


#: legacy ``from_document`` keyword -> (config group, field name)
LEGACY_KWARG_MAP = {
    "tag_names": ("field", "tag_names"),
    "seed": ("field", "seed"),
    "p": ("field", "p"),
    "e": ("field", "e"),
    "map_shuffle_seed": ("field", "map_shuffle_seed"),
    "use_trie": ("field", "use_trie"),
    "trie_compressed": ("field", "trie_compressed"),
    "btree_order": ("field", "btree_order"),
    "index_columns": ("field", "index_columns"),
    "servers": ("cluster", "servers"),
    "threshold": ("cluster", "threshold"),
    "sharing": ("cluster", "sharing"),
    "cluster": ("cluster", "cluster"),
    "read_quorum": ("cluster", "read_quorum"),
    "verify_shares": ("cluster", "verify_shares"),
    "transport": ("transport", "transport"),
    "use_rmi": ("transport", "use_rmi"),
    "batched": ("transport", "batched"),
    "per_call_latency": ("transport", "per_call_latency"),
    "per_byte_latency": ("transport", "per_byte_latency"),
    "latency_jitter": ("transport", "latency_jitter"),
    "concurrency": ("transport", "concurrency"),
    "hedge": ("transport", "hedge"),
    "prefetch": ("transport", "prefetch"),
    "round_overhead": ("transport", "round_overhead"),
    "enable_writes": ("write", "enabled"),
    "journal_capacity": ("write", "journal_capacity"),
    "read_repair": ("write", "read_repair"),
    "keep_plaintext": ("root", "keep_plaintext"),
}


@dataclass(frozen=True)
class DatabaseConfig:
    """Everything ``from_document`` needs, grouped and validated."""

    field: FieldConfig = _field(default_factory=FieldConfig)
    cluster: ClusterConfig = _field(default_factory=ClusterConfig)
    transport: TransportConfig = _field(default_factory=TransportConfig)
    write: WriteConfig = _field(default_factory=WriteConfig)
    #: retain the plaintext document (ground truth for experiments; the
    #: write path's :class:`~repro.encode.mutate.DocumentState` needs it)
    keep_plaintext: bool = True

    # ------------------------------------------------------------------
    # The legacy mapping shim
    # ------------------------------------------------------------------

    @classmethod
    def from_legacy_kwargs(cls, **kwargs) -> "DatabaseConfig":
        """Build a config from ``from_document``'s historical flat kwargs.

        Unknown names raise :class:`TypeError` exactly like the old
        signature did.  This is a pure mapping — validation happens in
        :meth:`validated`, same as for directly constructed configs.
        """
        groups = {"field": {}, "cluster": {}, "transport": {}, "write": {}, "root": {}}
        for name, value in kwargs.items():
            try:
                group, attr = LEGACY_KWARG_MAP[name]
            except KeyError:
                raise TypeError(
                    "from_document() got an unexpected keyword argument %r" % (name,)
                ) from None
            groups[group][attr] = value
        return cls(
            field=FieldConfig(**groups["field"]),
            cluster=ClusterConfig(**groups["cluster"]),
            transport=TransportConfig(**groups["transport"]),
            write=WriteConfig(**groups["write"]),
            **groups["root"],
        )

    # ------------------------------------------------------------------
    # Validation (every cross-cutting conflict rule lives here)
    # ------------------------------------------------------------------

    def validated(self) -> "DatabaseConfig":
        """Check every conflict rule; returns the config with the
        effective ``cluster`` flag resolved (never ``None``).

        Raises :class:`QueryConfigError` — a :class:`ConfigError` — on
        any invalid or internally conflicting combination.
        """
        cluster_cfg = self.cluster
        transport_cfg = self.transport
        kind = transport_cfg.transport
        if kind not in ("simulated", "socket", "asyncio"):
            raise QueryConfigError(
                "unknown transport %r; expected 'simulated', 'socket' or 'asyncio'"
                % (kind,)
            )
        resolved = cluster_cfg.cluster
        if kind in ("socket", "asyncio"):
            if resolved is False:
                raise QueryConfigError(
                    "transport=%r deploys a share cluster; it conflicts with cluster=False"
                    % (kind,)
                )
            resolved = True
            conflicts = []
            if transport_cfg.per_call_latency:
                conflicts.append("per_call_latency=%r" % transport_cfg.per_call_latency)
            if transport_cfg.per_byte_latency:
                conflicts.append("per_byte_latency=%r" % transport_cfg.per_byte_latency)
            if transport_cfg.latency_jitter:
                conflicts.append("latency_jitter=%r" % transport_cfg.latency_jitter)
            if kind == "socket" and transport_cfg.hedge is not False:
                conflicts.append("hedge=%r" % (transport_cfg.hedge,))
            if conflicts:
                raise QueryConfigError(
                    "the %s transport measures latency instead of modelling it; "
                    "it conflicts with %s" % (kind, ", ".join(conflicts))
                )
        if kind == "asyncio":
            if not transport_cfg.concurrency:
                raise QueryConfigError(
                    "the asyncio transport is inherently concurrent (one event "
                    "loop multiplexes every call); it conflicts with concurrency=False"
                )
            hedge = transport_cfg.hedge
            if hedge is not False and hedge is not True and not 0 < hedge < 1:
                raise QueryConfigError(
                    "asyncio hedging is driven by observed RTT percentiles: hedge "
                    "must be a quantile in (0, 1) (or True for the default), got %r"
                    % (hedge,)
                )
        if resolved is None:
            resolved = (
                cluster_cfg.servers > 1
                or cluster_cfg.sharing != "additive"
                or cluster_cfg.threshold is not None
            )
        if not resolved:
            # An explicit cluster=False must not silently discard cluster
            # configuration — especially not a threshold sharing request.
            conflicts = []
            if cluster_cfg.servers != 1:
                conflicts.append("servers=%d" % cluster_cfg.servers)
            if cluster_cfg.sharing != "additive":
                conflicts.append("sharing=%r" % cluster_cfg.sharing)
            if cluster_cfg.threshold is not None:
                conflicts.append("threshold=%r" % (cluster_cfg.threshold,))
            if transport_cfg.latency_jitter:
                conflicts.append("latency_jitter=%r" % transport_cfg.latency_jitter)
            if cluster_cfg.read_quorum is not None:
                conflicts.append("read_quorum=%r" % (cluster_cfg.read_quorum,))
            if not transport_cfg.concurrency:
                conflicts.append("concurrency=%r" % transport_cfg.concurrency)
            if transport_cfg.hedge is not False:
                conflicts.append("hedge=%r" % (transport_cfg.hedge,))
            if transport_cfg.prefetch:
                conflicts.append("prefetch=%r" % transport_cfg.prefetch)
            if transport_cfg.round_overhead:
                conflicts.append("round_overhead=%r" % transport_cfg.round_overhead)
            if conflicts:
                raise QueryConfigError(
                    "a non-cluster deployment conflicts with %s" % ", ".join(conflicts)
                )
        write_cfg = self.write
        if write_cfg.enabled:
            if not resolved:
                raise QueryConfigError(
                    "the write path runs the two-phase protocol across a share "
                    "fleet; WriteConfig(enabled=True) needs a cluster deployment"
                )
            if not self.keep_plaintext:
                raise QueryConfigError(
                    "the write path edits the client-side plaintext tree; "
                    "WriteConfig(enabled=True) conflicts with keep_plaintext=False"
                )
            if self.field.use_trie:
                raise QueryConfigError(
                    "incremental writes do not rewrite trie payloads yet; "
                    "WriteConfig(enabled=True) conflicts with use_trie=True"
                )
        if write_cfg.journal_capacity is not None and write_cfg.journal_capacity < 1:
            raise QueryConfigError(
                "journal_capacity must be positive, got %r" % (write_cfg.journal_capacity,)
            )
        return replace(self, cluster=replace(cluster_cfg, cluster=resolved))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def as_legacy_kwargs(self) -> dict:
        """The flat legacy-kwarg view of this config (tests, round-trips)."""
        flat = {}
        sections = {
            "field": self.field,
            "cluster": self.cluster,
            "transport": self.transport,
            "write": self.write,
        }
        for legacy_name, (group, attr) in LEGACY_KWARG_MAP.items():
            if group == "root":
                flat[legacy_name] = getattr(self, attr)
            else:
                flat[legacy_name] = getattr(sections[group], attr)
        return flat


def legacy_kwarg_names() -> Tuple[str, ...]:
    """Every keyword the legacy ``from_document`` surface accepts."""
    return tuple(sorted(LEGACY_KWARG_MAP))


def config_field_names() -> Tuple[str, ...]:
    """Every (group, field) pair of the typed surface — shim coverage check."""
    pairs = []
    for group_name, cls in (
        ("field", FieldConfig),
        ("cluster", ClusterConfig),
        ("transport", TransportConfig),
        ("write", WriteConfig),
    ):
        for spec in fields(cls):
            pairs.append("%s.%s" % (group_name, spec.name))
    pairs.append("root.keep_plaintext")
    return tuple(sorted(pairs))
