"""The ``EncryptedXMLDatabase`` facade."""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from repro.core.config import (
    ClusterConfig,
    DatabaseConfig,
    FieldConfig,
    QueryConfigError,
    TransportConfig,
    WriteConfig,
)
from repro.encode.deploy import ClusterDeployment
from repro.encode.encoder import EncodedDatabase, Encoder
from repro.encode.mutate import DocumentState, WriteDelta
from repro.encode.tagmap import TagMap
from repro.engines.advanced import AdvancedQueryEngine
from repro.engines.base import QueryResult
from repro.engines.plaintext import PlaintextEngine
from repro.engines.simple import SimpleQueryEngine
from repro.filters.client import ClientFilter
from repro.filters.cluster import ClusterClient
from repro.filters.interface import MatchRule
from repro.filters.server import ServerFilter
from repro.gf.factory import make_field
from repro.metrics.counters import EvaluationCounters
from repro.prg.seed import SeedFile, generate_seed
from repro.rmi.aio import AsyncClusterTransport
from repro.rmi.cluster import ClusterTransport
from repro.rmi.proxy import Registry
from repro.rmi.server import SocketCluster
from repro.rmi.stats import CallStats
from repro.rmi.transport import SimulatedTransport
from repro.rmi.write import WriteCoordinator, WriteJournal
from repro.trie.transform import TrieTransformer
from repro.xmldoc.nodes import XMLDocument, XMLElement
from repro.xmldoc.parser import parse_string
from repro.xpath.ast import Query
from repro.xpath.parser import parse_query
from repro.xpath.rewrite import rewrite_for_trie

# QueryConfigError moved to repro.core.config with the typed config
# surface; imported above and re-exported here, its historical home.
__all__ = ["EncryptedXMLDatabase", "QueryConfigError", "CLUSTER_TRANSPORT_TYPES"]

#: transports presenting the scatter-gather cluster surface (per-server
#: stats, quorum reads, the makespan round clock)
CLUSTER_TRANSPORT_TYPES = (ClusterTransport, AsyncClusterTransport)

#: one process-wide deprecation notice for the legacy kwarg surface
_legacy_kwargs_warned = False


def _warn_legacy_kwargs() -> None:
    global _legacy_kwargs_warned
    if _legacy_kwargs_warned:
        return
    _legacy_kwargs_warned = True
    warnings.warn(
        "passing flat keyword arguments to EncryptedXMLDatabase.from_document "
        "is deprecated; build a repro.core.config.DatabaseConfig and pass "
        "from_document(document, config=...) instead",
        DeprecationWarning,
        stacklevel=4,
    )


class EncryptedXMLDatabase:
    """A queryable, secret-shared encoding of one XML document.

    Construction encodes the document; afterwards the instance holds

    * the *server side*: one relational node table per share server, each
      behind its own :class:`~repro.filters.server.ServerFilter` — a single
      server in the classic two-party setup, ``n`` of them for a cluster
      deployment (``servers=n``), fronted by a
      :class:`~repro.filters.cluster.ClusterClient`,
    * the *client side*: tag map, seed/PRG, the
      :class:`~repro.filters.client.ClientFilter` and the two query engines,
    * optionally the plaintext document and a
      :class:`~repro.engines.plaintext.PlaintextEngine` used as ground truth
      by the accuracy experiments (a real deployment would discard it).
    """

    def __init__(
        self,
        encoded: Union[EncodedDatabase, ClusterDeployment],
        document: Optional[XMLDocument],
        use_rmi: bool,
        transport: Union[SimulatedTransport, ClusterTransport],
        counters: EvaluationCounters,
        trie_transformer: Optional[TrieTransformer],
        batched: bool = True,
        read_quorum: Optional[int] = None,
        verify_shares: bool = True,
        hedge: Union[bool, float] = False,
        prefetch: int = 0,
        socket_cluster: Optional["SocketCluster"] = None,
        write_config: Optional[WriteConfig] = None,
    ):
        self.encoded = encoded
        self.document = document
        self.counters = counters
        self.transport = transport
        self._trie_transformer = trie_transformer
        #: the subprocess fleet behind a ``transport="socket"`` deployment
        #: (``None`` for in-process transports); owned — :meth:`close`
        #: shuts it down
        self.socket_cluster = socket_cluster
        self._closed = False

        backend = encoded.ring.kernel.name
        if isinstance(transport, CLUSTER_TRANSPORT_TYPES):
            # Cluster path: the transport already owns one ServerFilter per
            # share table; the ClusterClient recombines their replies behind
            # the single-server surface the ClientFilter expects.  ``use_rmi``
            # is moot — every cluster call crosses a transport by definition.
            if not isinstance(encoded, ClusterDeployment):
                raise QueryConfigError(
                    "a ClusterTransport needs a ClusterDeployment, got %r" % type(encoded).__name__
                )
            if socket_cluster is not None:
                # Socket deployment: the shards live in child processes, so
                # there are no in-process ServerFilter objects to hand out.
                self.server_filters: List[ServerFilter] = []
                self.server_filter = None
            else:
                self.server_filters = list(transport.servers)
                self.server_filter = self.server_filters[0]
            for stats in transport.per_server_stats:
                stats.backend = backend
            self.cluster_client: Optional[ClusterClient] = ClusterClient(
                transport,
                encoded.sharing,
                read_quorum=read_quorum,
                verify_shares=verify_shares,
                # The asyncio transport hedges itself on observed RTT
                # percentiles; the client-side trigger compares *modeled*
                # latencies and stays off there.
                hedge=False if isinstance(transport, AsyncClusterTransport) else hedge,
                prefetch=prefetch,
            )
            server_endpoint = self.cluster_client
        else:
            server_filter = ServerFilter(encoded.node_table, encoded.ring)
            self.server_filter = server_filter
            self.server_filters = [server_filter]
            self.cluster_client = None
            # Stamp the trace with the arithmetic backend that produced it.
            transport.stats.backend = backend
            if use_rmi:
                registry = Registry(transport)
                registry.bind("ServerFilter", server_filter)
                server_endpoint = registry.lookup("ServerFilter")
            else:
                server_endpoint = server_filter
        self.client_filter = ClientFilter(
            server_endpoint, encoded.sharing, encoded.tag_map, counters=counters, batched=batched
        )
        self._engines = {
            "simple": SimpleQueryEngine(self.client_filter),
            "advanced": AdvancedQueryEngine(self.client_filter),
        }
        self._plaintext = PlaintextEngine(document) if document is not None else None
        self._statistics = None
        self._cost_model = None
        #: the versioned write surface (``None`` unless WriteConfig(enabled=True))
        self.document_state: Optional[DocumentState] = None
        self.write_coordinator: Optional[WriteCoordinator] = None
        if write_config is not None and write_config.enabled:
            if self.cluster_client is None or not isinstance(
                encoded, ClusterDeployment
            ):
                raise QueryConfigError(
                    "the write path needs a cluster deployment"
                )
            if document is None:
                raise QueryConfigError(
                    "the write path edits the retained plaintext tree; "
                    "it conflicts with keep_plaintext=False"
                )
            self.document_state = DocumentState(
                document, encoded.tag_map, encoded.sharing
            )
            self.write_coordinator = WriteCoordinator(
                transport,
                journal=WriteJournal(capacity=write_config.journal_capacity),
                prg=encoded.prg,
            )
            if write_config.read_repair:
                self.cluster_client.enable_read_repair(
                    self.write_coordinator.repair_stale
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_document(
        cls,
        document: XMLDocument,
        config: Optional[DatabaseConfig] = None,
        **legacy_kwargs,
    ) -> "EncryptedXMLDatabase":
        """Encode an in-memory document.

        The configuration surface is a typed
        :class:`~repro.core.config.DatabaseConfig` composing
        :class:`~repro.core.config.FieldConfig` (encoding),
        :class:`~repro.core.config.ClusterConfig` (share fleet),
        :class:`~repro.core.config.TransportConfig` (wire/latency model)
        and :class:`~repro.core.config.WriteConfig` (the versioned write
        path) — pass it as ``from_document(document, config=...)``.  The
        historical flat keyword arguments keep working through a mapping
        shim (one process-wide :class:`DeprecationWarning`); mixing
        ``config=`` with legacy kwargs is rejected.  Every conflict rule
        lives in :meth:`DatabaseConfig.validated` and raises the usual
        :class:`QueryConfigError`.

        The legacy keyword semantics, unchanged:

        ``tag_names`` supplies the map alphabet (e.g. the DTD's element
        names); when omitted it is derived from the document itself.  ``p``
        and ``e`` pin the field to ``F_{p^e}`` (the paper uses ``p=83, e=1``
        for XMark); when omitted the smallest prime able to hold the alphabet
        is chosen.  With ``use_trie=True`` every text payload is rewritten
        into trie elements before encoding so ``contains(text(), …)`` queries
        work, and the map alphabet is extended with the trie characters.
        ``batched=False`` restores the per-node remote protocol (one call per
        candidate instead of one per query step) — useful for measuring what
        the batched pipeline saves.

        ``servers`` / ``threshold`` / ``sharing`` deploy the document across
        an n-server share cluster instead of the classic single server:
        ``sharing="additive"`` splits n-of-n with regenerable PRG lanes,
        ``sharing="shamir"`` is (k, n) threshold sharing tolerating
        ``n - k`` failed servers.  ``cluster=True`` forces the cluster stack
        even for a lone additive server (useful for differential tests);
        ``latency_jitter`` spreads the simulated latencies per server, and
        ``read_quorum`` / ``verify_shares`` tune the
        :class:`~repro.filters.cluster.ClusterClient` (see there).

        ``concurrency`` selects the thread-pool scatter-gather (the default;
        ``False`` restores the sequential loop, whose makespan clock charges
        the per-server latency *sum* per round), ``round_overhead`` adds a
        fixed modeled cost per scatter round, and ``hedge`` / ``prefetch``
        enable the latency-optimal read-path options of the
        :class:`~repro.filters.cluster.ClusterClient`: hedged straggler
        co-issue and structural prefetch overlapping in-flight share reads.

        ``transport="socket"`` deploys the share servers as real child
        processes, each serving its node table over a loopback TCP socket
        (see :class:`~repro.rmi.server.SocketCluster`); every remote call
        then crosses an actual wire and the stats record *measured*
        latency and payload bytes.  The modeled-latency knobs
        (``per_call_latency`` / ``per_byte_latency`` / ``latency_jitter``)
        and ``hedge`` (whose trigger compares modeled latencies) do not
        apply and are rejected.  Use the instance as a context manager —
        or call :meth:`close` — to shut the server fleet down.

        ``transport="asyncio"`` deploys the same subprocess fleet but talks
        to it over one *multiplexed* connection per server, all driven by a
        single event loop (see :class:`~repro.rmi.aio.AsyncClusterTransport`)
        behind the unchanged sync facade: pipelined request ids instead of
        a pooled socket and a scatter thread per in-flight call, and
        first-k quorum reads admitted on real arrival.  ``hedge`` is
        reinterpreted as the observed-RTT *quantile* in ``(0, 1)`` (or
        ``True`` for 0.95) past which a short quorum co-issues spares;
        ``concurrency=False`` does not apply (one loop multiplexes every
        call) and is rejected, as are the modeled-latency knobs.
        """
        if config is not None and legacy_kwargs:
            raise QueryConfigError(
                "pass either config= or the legacy keyword arguments, not both "
                "(got config plus %s)" % ", ".join(sorted(legacy_kwargs))
            )
        if config is None:
            if legacy_kwargs:
                _warn_legacy_kwargs()
            config = DatabaseConfig.from_legacy_kwargs(**legacy_kwargs)
        config = config.validated()
        field_cfg = config.field
        cluster_cfg = config.cluster
        transport_cfg = config.transport
        write_cfg = config.write
        cluster = cluster_cfg.cluster  # resolved to a bool by validated()

        trie_transformer = None
        if field_cfg.use_trie:
            trie_transformer = TrieTransformer(compressed=field_cfg.trie_compressed)
            document = trie_transformer.transform_document(document)

        if field_cfg.tag_names is None:
            names: List[str] = sorted(document.distinct_tags())
        else:
            names = list(dict.fromkeys(field_cfg.tag_names))
            missing = document.distinct_tags() - set(names)
            if missing:
                names.extend(sorted(missing))
        if trie_transformer is not None:
            for extra in trie_transformer.tag_alphabet():
                if extra not in names:
                    names.append(extra)

        field = make_field(field_cfg.p, field_cfg.e) if field_cfg.p is not None else None
        tag_map = TagMap.from_names(
            names, field=field, shuffle_seed=field_cfg.map_shuffle_seed
        )
        seed = field_cfg.seed if field_cfg.seed is not None else generate_seed()
        encoder = Encoder(
            tag_map,
            seed,
            btree_order=field_cfg.btree_order,
            index_columns=field_cfg.index_columns,
        )

        transport = transport_cfg.transport
        counters = EvaluationCounters()
        socket_cluster: Optional[SocketCluster] = None
        if cluster:
            deployment = encoder.deploy_document(
                document,
                servers=cluster_cfg.servers,
                threshold=cluster_cfg.threshold,
                sharing=cluster_cfg.sharing,
            )
            if transport in ("socket", "asyncio"):
                socket_cluster = SocketCluster.from_deployment(deployment)
                try:
                    if transport == "asyncio":
                        # Same subprocess fleet, different wire: one
                        # multiplexed connection per server on one event
                        # loop, instead of pooled sockets + scatter threads.
                        transport_channel: Union[SimulatedTransport, ClusterTransport] = (
                            AsyncClusterTransport(
                                socket_cluster.addresses,
                                round_overhead=transport_cfg.round_overhead,
                                hedge=transport_cfg.hedge,
                            )
                        )
                    else:
                        transport_channel = socket_cluster.cluster_transport(
                            concurrency=transport_cfg.concurrency,
                            round_overhead=transport_cfg.round_overhead,
                        )
                except Exception:
                    socket_cluster.shutdown()
                    raise
            else:
                server_filters = [
                    ServerFilter(table, deployment.ring) for table in deployment.node_tables
                ]
                transport_channel = ClusterTransport(
                    server_filters,
                    per_call_latency=transport_cfg.per_call_latency,
                    per_byte_latency=transport_cfg.per_byte_latency,
                    latency_jitter=transport_cfg.latency_jitter,
                    concurrency=transport_cfg.concurrency,
                    round_overhead=transport_cfg.round_overhead,
                )
            encoded: Union[EncodedDatabase, ClusterDeployment] = deployment
        else:
            encoded = encoder.encode_document(document)
            transport_channel = SimulatedTransport(
                per_call_latency=transport_cfg.per_call_latency,
                per_byte_latency=transport_cfg.per_byte_latency,
                stats=CallStats(),
            )
        try:
            return cls(
                encoded=encoded,
                document=document if config.keep_plaintext else None,
                use_rmi=transport_cfg.use_rmi,
                transport=transport_channel,
                counters=counters,
                trie_transformer=trie_transformer,
                batched=transport_cfg.batched,
                read_quorum=cluster_cfg.read_quorum,
                verify_shares=cluster_cfg.verify_shares,
                hedge=transport_cfg.hedge,
                prefetch=transport_cfg.prefetch,
                socket_cluster=socket_cluster,
                write_config=write_cfg,
            )
        except Exception:
            # Never leak a spawned server fleet on a construction failure
            # (e.g. an invalid read_quorum reaching the ClusterClient).
            if socket_cluster is not None:
                socket_cluster.shutdown()
            raise

    @classmethod
    def from_text(cls, xml_text: str, **kwargs) -> "EncryptedXMLDatabase":
        """Encode XML text (see :meth:`from_document` for keyword options)."""
        return cls.from_document(parse_string(xml_text), **kwargs)

    @classmethod
    def from_file(cls, path: str, encoding: str = "utf-8", **kwargs) -> "EncryptedXMLDatabase":
        """Encode an XML file (see :meth:`from_document` for keyword options)."""
        with open(path, "r", encoding=encoding) as handle:
            return cls.from_text(handle.read(), **kwargs)

    # ------------------------------------------------------------------
    # Mutations (the versioned write path)
    # ------------------------------------------------------------------

    def _mutate(self, edit: Callable[[DocumentState], WriteDelta]) -> Dict[str, Any]:
        """Run one edit against the document state and ship its delta.

        The edit computes the incremental re-encode
        (:class:`~repro.encode.mutate.WriteDelta`), the coordinator drives
        it through two-phase prepare/commit, and the client-side caches
        that index the old numbering (plaintext engine, statistics, cost
        model, per-row versions) are refreshed before the report returns.
        """
        if self.write_coordinator is None or self.document_state is None:
            raise QueryConfigError(
                "this database was built without the write path; enable it "
                "with WriteConfig(enabled=True) (legacy: enable_writes=True)"
            )
        delta = edit(self.document_state)
        report = self.write_coordinator.apply(delta)
        if self.cluster_client is not None:
            self.cluster_client.note_versions(self.document_state.versions())
        # Mutations renumber the tree: every cache derived from the old
        # pre-order is stale the moment the delta commits.
        self._plaintext = PlaintextEngine(self.document)
        self._statistics = None
        self._cost_model = None
        return report

    def update_tag(self, pre: int, new_tag: str) -> Dict[str, Any]:
        """Rename the node at ``pre`` across the deployed fleet."""
        return self._mutate(lambda state: state.update_tag(pre, new_tag))

    def insert_subtree(
        self, parent_pre: int, element: XMLElement, index: Optional[int] = None
    ) -> Dict[str, Any]:
        """Graft ``element`` under ``parent_pre`` (``index=None`` appends)."""
        return self._mutate(
            lambda state: state.insert_subtree(parent_pre, element, index=index)
        )

    def delete_subtree(self, pre: int) -> Dict[str, Any]:
        """Remove the node at ``pre`` and its subtree from every server."""
        return self._mutate(lambda state: state.delete_subtree(pre))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release every transport resource this database owns.

        Drains in-flight scatter calls and shuts down the thread pool and
        pooled sockets (:meth:`~repro.rmi.cluster.ClusterTransport.close`),
        then — for a ``transport="socket"`` deployment — stops the server
        subprocess fleet and removes its on-disk tables.  Idempotent, and
        wired into the context-manager ``__exit__``, so examples and CI
        runs never leak thread pools, sockets or orphan server processes.
        """
        if self._closed:
            return
        self._closed = True
        if self.cluster_client is not None:
            self.cluster_client.close()
        elif isinstance(self.transport, CLUSTER_TRANSPORT_TYPES):
            self.transport.close()
        if self.socket_cluster is not None:
            self.socket_cluster.shutdown()

    def __enter__(self) -> "EncryptedXMLDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(
        self,
        xpath: Union[str, Query],
        engine: str = "advanced",
        strict: bool = False,
    ) -> QueryResult:
        """Run an XPath query against the encrypted store.

        ``engine`` selects ``"simple"``, ``"advanced"`` or ``"auto"`` (pick
        per query using the client-side cost model); ``strict`` selects the
        equality test (exact results) over the containment test (cheap,
        possibly over-approximate results).
        """
        if engine == "auto":
            engine = self.recommend_engine(xpath)
        selected = self._engines.get(engine)
        if selected is None:
            raise QueryConfigError(
                "unknown engine %r; expected one of %s" % (engine, sorted(self._engines) + ["auto"])
            )
        parsed = parse_query(xpath) if isinstance(xpath, str) else xpath
        if self._trie_transformer is not None:
            parsed = rewrite_for_trie(parsed, self._trie_transformer)
        elif parsed.has_predicates():
            # Without the trie representation contains() cannot be answered;
            # path predicates over tags are still fine.
            parsed = parsed
        rule = MatchRule.from_strict_flag(strict)
        result = selected.execute(parsed, rule=rule)
        # Counted after execution so aborted queries do not dilute the
        # per-query call/byte averages.
        if isinstance(self.transport, CLUSTER_TRANSPORT_TYPES):
            self.transport.count_query()
        else:
            self.transport.stats.count_query()
        return result

    def plaintext_query(self, xpath: Union[str, Query]) -> List[int]:
        """Ground-truth evaluation on the retained plaintext document.

        When the database was built with the trie transform, the retained
        document is the *transformed* one, so text predicates are rewritten
        into trie paths here as well — both sides then answer the same query
        over the same tree and the results are directly comparable.
        """
        if self._plaintext is None:
            raise QueryConfigError(
                "the plaintext document was not retained (keep_plaintext=False)"
            )
        parsed = parse_query(xpath) if isinstance(xpath, str) else xpath
        if self._trie_transformer is not None:
            parsed = rewrite_for_trie(parsed, self._trie_transformer)
        return self._plaintext.execute(parsed)

    def recommend_engine(self, xpath: Union[str, Query]) -> str:
        """Pick an engine for ``xpath`` using the client-side cost model.

        The model needs the structural statistics collected from the
        plaintext document at encoding time; when the plaintext was not
        retained the advanced engine is recommended (it is the safer default
        on the descendant-heavy queries where the choice matters).
        """
        from repro.engines.costmodel import DocumentStatistics, EngineCostModel

        if self.document is None:
            return "advanced"
        if self._cost_model is None:
            self._statistics = DocumentStatistics.from_document(self.document)
            self._cost_model = EngineCostModel(self._statistics)
        parsed = parse_query(xpath) if isinstance(xpath, str) else xpath
        if self._trie_transformer is not None:
            parsed = rewrite_for_trie(parsed, self._trie_transformer)
        return self._cost_model.choose_engine(parsed)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def encoding_stats(self):
        """Size and time accounting of the encoding run."""
        return self.encoded.stats

    @property
    def is_cluster(self) -> bool:
        """Whether this database runs against an n-server share cluster."""
        return isinstance(self.transport, CLUSTER_TRANSPORT_TYPES)

    @property
    def num_servers(self) -> int:
        """Number of share servers behind the query path."""
        return self.transport.num_servers if self.is_cluster else 1

    @property
    def transport_stats(self) -> CallStats:
        """Remote-call statistics of the simulated RMI transport.

        For a cluster this is a merged *snapshot* of every server's stats
        (see :meth:`~repro.rmi.cluster.ClusterTransport.aggregate_stats`);
        use :attr:`per_server_stats` for the per-server traces and
        :meth:`reset_transport_stats` to zero the live counters.
        """
        if self.is_cluster:
            return self.transport.aggregate_stats()
        return self.transport.stats

    @property
    def per_server_stats(self) -> List[CallStats]:
        """The live per-server call statistics (one entry per server)."""
        if self.is_cluster:
            return self.transport.per_server_stats
        return [self.transport.stats]

    @property
    def makespan(self) -> float:
        """Modeled wall-clock of the traffic so far (critical path, not sum).

        For a cluster this is the scatter-round clock of
        :meth:`~repro.rmi.cluster.ClusterTransport.makespan`; the
        single-server path is sequential by construction, so its makespan is
        exactly the accumulated ``simulated_latency``.
        """
        if self.is_cluster:
            return self.transport.makespan()
        return self.transport.stats.simulated_latency

    def reset_transport_stats(self) -> None:
        """Zero the remote-call counters (between experiment runs)."""
        if self.is_cluster:
            self.transport.reset_stats()
        else:
            self.transport.stats.reset()

    @property
    def node_count(self) -> int:
        """Number of encoded element nodes."""
        return len(self.encoded.node_table)

    @property
    def field_order(self) -> int:
        """Order of the finite field used by the encoding."""
        return self.encoded.ring.field.order

    def tag_of(self, pre: int) -> Optional[str]:
        """Tag name of a node (requires the retained plaintext document)."""
        if self._plaintext is None:
            return None
        node = self._plaintext.numbering.by_pre(pre)
        return node.tag if node else None

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "EncryptedXMLDatabase(nodes=%d, field=F_%d, rmi=%s)" % (
            self.node_count,
            self.field_order,
            self.transport is not None,
        )
