"""Keyed pseudorandom generator producing finite-field elements.

The Java prototype used a seeded ``java.util.Random``; any deterministic PRG
keyed on ``(seed, node position)`` reproduces the same semantics.  We use a
SplitMix64 core (a well-studied 64-bit mixing function) seeded from a stable
hash of the seed bytes and the node's pre number, and map its output to field
elements with rejection sampling so the distribution over ``F_q`` is uniform.

This module is *not* a cryptographic guarantee — neither was the original
prototype's — but it is deterministic, portable and uniform, which is what
the experiments require.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.gf.base import Field

try:  # optional accelerator for the bulk block path (see elements_block)
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI axis
    np = None

_MASK64 = (1 << 64) - 1

#: SplitMix64 constants (shared by the scalar loop and the vectorized path)
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


class SplitMix64:
    """The SplitMix64 sequence generator.

    Produces a deterministic stream of 64-bit integers from a 64-bit state.
    Used as the mixing core of :class:`KeyedPRG` and as a light-weight
    deterministic random source for the synthetic XMark generator.
    """

    __slots__ = ("state",)

    def __init__(self, seed: int):
        self.state = seed & _MASK64

    def next_uint64(self) -> int:
        """Advance the state and return the next 64-bit output."""
        self.state = (self.state + 0x9E3779B97F4A7C15) & _MASK64
        z = self.state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return (z ^ (z >> 31)) & _MASK64

    def next_below(self, bound: int) -> int:
        """Uniform integer in ``range(bound)`` using rejection sampling."""
        if bound <= 0:
            raise ValueError("bound must be positive, got %d" % bound)
        if bound == 1:
            return 0
        # Largest multiple of bound below 2**64; values above it are rejected
        # so the result is exactly uniform.
        limit = (1 << 64) - ((1 << 64) % bound)
        while True:
            value = self.next_uint64()
            if value < limit:
                return value % bound

    def next_float(self) -> float:
        """Uniform float in [0, 1) with 53 bits of precision."""
        return (self.next_uint64() >> 11) / float(1 << 53)

    def choice(self, items: Sequence):
        """Pick one item of a non-empty sequence uniformly."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.next_below(len(items))]

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        if high < low:
            raise ValueError("empty range [%d, %d]" % (low, high))
        return low + self.next_below(high - low + 1)


class KeyedPRG:
    """Derives per-node streams of field elements from a secret seed.

    The stream for a given node is identified by its ``pre`` number (the
    document-order position used as primary key in the server's table), so
    the client can regenerate exactly the share that was subtracted from the
    node's polynomial at encoding time, in any order and as many times as
    needed.

    Because queries regenerate the same client shares over and over (every
    containment test on a node re-derives its share), the bulk
    :meth:`elements` call keeps a bounded LRU memo keyed on
    ``(pre, count, lane)``; :meth:`cache_info` exposes its hit accounting.
    The memo changes no output — entries are exactly the deterministic
    stream prefixes.  The memo is guarded by a lock so concurrent readers
    (cluster regeneration racing a prefetch pipeline) never tear the LRU's
    ``move_to_end`` bookkeeping; the generation itself runs outside the
    lock, so two threads may briefly compute the same prefix — identical by
    determinism — rather than serialise on it.
    """

    def __init__(self, seed: bytes, field: Field, memo_size: int = 1024):
        if not isinstance(seed, (bytes, bytearray)):
            raise TypeError("seed must be bytes, got %r" % type(seed).__name__)
        if len(seed) == 0:
            raise ValueError("seed must not be empty")
        if memo_size < 0:
            raise ValueError("memo_size must be non-negative, got %d" % memo_size)
        self.seed = bytes(seed)
        self.field = field
        # Pre-hash the seed once; per-node states mix in the pre number.
        self._seed_digest = hashlib.sha256(self.seed).digest()
        # Bounded LRU of generated stream prefixes, guarded for concurrent
        # readers (see the class docstring).
        self._memo: "OrderedDict[Tuple[int, int, int, int], Tuple[int, ...]]" = OrderedDict()
        self._memo_size = memo_size
        self._memo_hits = 0
        self._memo_misses = 0
        self._memo_lock = threading.Lock()
        # Derived SplitMix states, cached because the sha256 derivation is
        # ~1µs per node and every batched query touches thousands of nodes.
        # Writes are GIL-atomic dict stores of deterministic values, so a
        # benign race merely recomputes; the bound keeps memory finite.
        self._state_cache: Dict[Tuple[int, int], int] = {}
        self._state_cache_limit = 1 << 20

    def _node_state(self, pre: int, lane: int = 0, version: int = 0) -> int:
        """Derive the 64-bit SplitMix state for node ``pre`` and stream ``lane``.

        ``version`` salts the derivation for re-encoded rows: a mutated
        node's masks must not repeat the masks of its previous polynomial
        (reusing them would hand each server the polynomial *difference*).
        Version 0 hashes exactly the historical payload, so every
        bulk-loaded stream is unchanged.
        """
        payload = self._seed_digest + pre.to_bytes(8, "big", signed=False) + lane.to_bytes(4, "big")
        if version:
            payload += version.to_bytes(8, "big", signed=False)
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big")

    def _state(self, pre: int, lane: int, version: int = 0) -> int:
        """Memoised :meth:`_node_state`."""
        key = (pre, lane, version)
        state = self._state_cache.get(key)
        if state is None:
            state = self._node_state(pre, lane, version)
            if len(self._state_cache) < self._state_cache_limit:
                self._state_cache[key] = state
        return state

    def stream(self, pre: int, lane: int = 0, version: int = 0) -> Iterator[int]:
        """Infinite stream of uniform field elements for node ``pre``."""
        core = SplitMix64(self._node_state(pre, lane, version))
        order = self.field.order
        while True:
            yield core.next_below(order)

    def elements(self, pre: int, count: int, lane: int = 0, version: int = 0) -> List[int]:
        """The first ``count`` field elements of node ``pre``'s stream.

        This is the call used to regenerate a client share: ``count`` equals
        the ring length ``q - 1`` and the returned list is the coefficient
        vector of the client polynomial.  Results are memoised per
        ``(pre, count, lane, version)`` in a bounded LRU.
        """
        if count < 0:
            raise ValueError("count must be non-negative, got %d" % count)
        key = (pre, count, lane, version)
        with self._memo_lock:
            cached = self._memo.get(key)
            if cached is not None:
                if type(cached) is not tuple:
                    # block-path entries arrive as int64 array rows; pin
                    # them down to plain-int tuples on first scalar read
                    cached = tuple(cached.tolist())
                    self._memo[key] = cached
                self._memo.move_to_end(key)
                self._memo_hits += 1
                return list(cached)
            self._memo_misses += 1
        generated = self._scalar_generate(self._state(pre, lane, version), count)
        if self._memo_size:
            with self._memo_lock:
                self._memo[key] = tuple(generated)
                self._memo.move_to_end(key)
                while len(self._memo) > self._memo_size:
                    self._memo.popitem(last=False)
        return generated

    def _scalar_generate(self, state: int, count: int) -> List[int]:
        """First ``count`` uniform field elements from a SplitMix state.

        Inlined SplitMix64 + rejection sampling: identical state sequence
        and outputs as SplitMix64.next_below, without two method calls per
        element (this loop runs q - 1 times per share regeneration).
        """
        order = self.field.order
        limit = (1 << 64) - ((1 << 64) % order)
        generated: List[int] = []
        append = generated.append
        for _ in range(count):
            while True:
                state = (state + _GAMMA) & _MASK64
                z = state
                z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
                z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
                z = (z ^ (z >> 31)) & _MASK64
                if z < limit:
                    append(z % order)
                    break
        return generated

    def _np_generate(self, states: Sequence[int], count: int) -> "np.ndarray":
        """Vectorized SplitMix64 streams: one row of ``count`` elements per state.

        SplitMix64 is counter-based — draw ``k`` mixes ``state + k * GAMMA`` —
        so whole blocks vectorize as uint64 array arithmetic with natural
        wrap-around.  Rejection sampling is handled by generating exactly
        ``count`` draws per row and redoing the astronomically rare rows
        (probability < order / 2^64 per draw) where any draw fell in the
        rejected band, via the bit-identical scalar loop.
        """
        order = self.field.order
        row_count = len(states)
        with np.errstate(over="ignore"):
            state_array = np.asarray(states, dtype=np.uint64)
            counters = np.arange(1, count + 1, dtype=np.uint64)
            z = state_array[:, None] + counters[None, :] * np.uint64(_GAMMA)
            z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
            z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
            z = z ^ (z >> np.uint64(31))
        remainder = (1 << 64) % order
        result = (z % np.uint64(order)).astype(np.int64)
        if remainder:
            limit = (1 << 64) - remainder
            rejected_rows = (z >= np.uint64(limit)).any(axis=1)
            if rejected_rows.any():  # pragma: no cover - ~2^-55 per draw
                for i in np.nonzero(rejected_rows)[0]:
                    result[i] = self._scalar_generate(int(states[i]), count)
        return result

    def elements_block(
        self, pres: Sequence[int], count: int, lane: int = 0, versions: Optional[Sequence[int]] = None
    ):
        """Array variant of :meth:`elements_many`: an (n, count) int64 matrix.

        Bit-identical rows and *identical memo accounting* to calling
        :meth:`elements` once per ``pre`` in order — hits touch the LRU,
        misses insert and evict — but the generation itself is one
        vectorized sweep.  The whole batch regenerates even on memo hits
        (regeneration is cheaper than row-by-row tuple unpacking, and
        determinism makes the results equal); only the bookkeeping replays
        per key.  ``versions`` optionally supplies one row version per
        ``pre`` (the incremental re-encode path); ``None`` means version 0
        throughout.  Without numpy this falls back to the scalar path and
        returns a list of lists.
        """
        if count < 0:
            raise ValueError("count must be non-negative, got %d" % count)
        if versions is None:
            versions = [0] * len(pres)
        elif len(versions) != len(pres):
            raise ValueError(
                "got %d versions for %d pres" % (len(versions), len(pres))
            )
        if np is None:
            return [
                self.elements(pre, count, lane, version)
                for pre, version in zip(pres, versions)
            ]
        states = [self._state(pre, lane, version) for pre, version in zip(pres, versions)]
        matrix = self._np_generate(states, count)
        with self._memo_lock:
            if self._memo_size:
                # Replay the LRU on keys alone, then materialise row tuples
                # only for the entries still present afterwards — a block
                # larger than the capacity would otherwise build thousands
                # of tuples destined for immediate eviction.  Hits, misses,
                # order and surviving contents match the per-call path.
                memo = self._memo
                simulated: "OrderedDict[Tuple[int, int, int, int], None]" = (
                    OrderedDict.fromkeys(memo)
                )
                fresh: Dict[Tuple[int, int, int, int], int] = {}
                for i, pre in enumerate(pres):
                    key = (pre, count, lane, versions[i])
                    if key in simulated:
                        simulated.move_to_end(key)
                        self._memo_hits += 1
                    else:
                        self._memo_misses += 1
                        simulated[key] = None
                        fresh[key] = i
                        while len(simulated) > self._memo_size:
                            evicted, _ = simulated.popitem(last=False)
                            fresh.pop(evicted, None)
                rebuilt: "OrderedDict[Tuple[int, int, int, int], Sequence[int]]" = OrderedDict()
                for key in simulated:
                    row = fresh.get(key)
                    if row is None:
                        rebuilt[key] = memo[key]
                    else:
                        # store the int64 row as-is (copied so callers
                        # mutating the returned block cannot reach it);
                        # the scalar path normalises to a tuple of plain
                        # ints the first time the entry is actually read
                        rebuilt[key] = matrix[row].copy()
                self._memo = rebuilt
            else:
                # capacity 0 stores nothing but still counts every lookup
                # as a miss, exactly like the scalar path
                self._memo_misses += len(pres)
        return matrix

    def elements_many(
        self, pres: Sequence[int], count: int, lane: int = 0
    ) -> List[List[int]]:
        """Bulk variant of :meth:`elements`: one stream prefix per ``pre``."""
        return [self.elements(pre, count, lane) for pre in pres]

    def evict(self, pres: Iterable[int]) -> int:
        """Version-aware memo busting: drop every cached stream of ``pres``.

        Called by the write path after a committed mutation — the memoised
        prefixes of a re-encoded node belong to its *previous* version (the
        memo key carries the version, so stale entries could never be
        returned for the new one, but they are dead weight and must not
        outlive the rows they masked).  The derived SplitMix states of the
        same nodes are dropped too.  Returns how many memo entries left.
        """
        victims = set(pres)
        with self._memo_lock:
            stale = [key for key in self._memo if key[0] in victims]
            for key in stale:
                del self._memo[key]
        stale_states = [key for key in self._state_cache if key[0] in victims]
        for key in stale_states:
            self._state_cache.pop(key, None)
        return len(stale)

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/occupancy accounting of the share memo."""
        with self._memo_lock:
            return {
                "hits": self._memo_hits,
                "misses": self._memo_misses,
                "size": len(self._memo),
                "capacity": self._memo_size,
            }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KeyedPRG):
            return NotImplemented
        return self.seed == other.seed and self.field == other.field

    def __hash__(self) -> int:
        return hash((self.seed, self.field))

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "KeyedPRG(seed=%d bytes, field=%r)" % (len(self.seed), self.field)
