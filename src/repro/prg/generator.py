"""Keyed pseudorandom generator producing finite-field elements.

The Java prototype used a seeded ``java.util.Random``; any deterministic PRG
keyed on ``(seed, node position)`` reproduces the same semantics.  We use a
SplitMix64 core (a well-studied 64-bit mixing function) seeded from a stable
hash of the seed bytes and the node's pre number, and map its output to field
elements with rejection sampling so the distribution over ``F_q`` is uniform.

This module is *not* a cryptographic guarantee — neither was the original
prototype's — but it is deterministic, portable and uniform, which is what
the experiments require.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List, Sequence

from repro.gf.base import Field

_MASK64 = (1 << 64) - 1


class SplitMix64:
    """The SplitMix64 sequence generator.

    Produces a deterministic stream of 64-bit integers from a 64-bit state.
    Used as the mixing core of :class:`KeyedPRG` and as a light-weight
    deterministic random source for the synthetic XMark generator.
    """

    __slots__ = ("state",)

    def __init__(self, seed: int):
        self.state = seed & _MASK64

    def next_uint64(self) -> int:
        """Advance the state and return the next 64-bit output."""
        self.state = (self.state + 0x9E3779B97F4A7C15) & _MASK64
        z = self.state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return (z ^ (z >> 31)) & _MASK64

    def next_below(self, bound: int) -> int:
        """Uniform integer in ``range(bound)`` using rejection sampling."""
        if bound <= 0:
            raise ValueError("bound must be positive, got %d" % bound)
        if bound == 1:
            return 0
        # Largest multiple of bound below 2**64; values above it are rejected
        # so the result is exactly uniform.
        limit = (1 << 64) - ((1 << 64) % bound)
        while True:
            value = self.next_uint64()
            if value < limit:
                return value % bound

    def next_float(self) -> float:
        """Uniform float in [0, 1) with 53 bits of precision."""
        return (self.next_uint64() >> 11) / float(1 << 53)

    def choice(self, items: Sequence):
        """Pick one item of a non-empty sequence uniformly."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.next_below(len(items))]

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        if high < low:
            raise ValueError("empty range [%d, %d]" % (low, high))
        return low + self.next_below(high - low + 1)


class KeyedPRG:
    """Derives per-node streams of field elements from a secret seed.

    The stream for a given node is identified by its ``pre`` number (the
    document-order position used as primary key in the server's table), so
    the client can regenerate exactly the share that was subtracted from the
    node's polynomial at encoding time, in any order and as many times as
    needed.
    """

    def __init__(self, seed: bytes, field: Field):
        if not isinstance(seed, (bytes, bytearray)):
            raise TypeError("seed must be bytes, got %r" % type(seed).__name__)
        if len(seed) == 0:
            raise ValueError("seed must not be empty")
        self.seed = bytes(seed)
        self.field = field
        # Pre-hash the seed once; per-node states mix in the pre number.
        self._seed_digest = hashlib.sha256(self.seed).digest()

    def _node_state(self, pre: int, lane: int = 0) -> int:
        """Derive the 64-bit SplitMix state for node ``pre`` and stream ``lane``."""
        payload = self._seed_digest + pre.to_bytes(8, "big", signed=False) + lane.to_bytes(4, "big")
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big")

    def stream(self, pre: int, lane: int = 0) -> Iterator[int]:
        """Infinite stream of uniform field elements for node ``pre``."""
        core = SplitMix64(self._node_state(pre, lane))
        order = self.field.order
        while True:
            yield core.next_below(order)

    def elements(self, pre: int, count: int, lane: int = 0) -> List[int]:
        """The first ``count`` field elements of node ``pre``'s stream.

        This is the call used to regenerate a client share: ``count`` equals
        the ring length ``q - 1`` and the returned list is the coefficient
        vector of the client polynomial.
        """
        if count < 0:
            raise ValueError("count must be non-negative, got %d" % count)
        core = SplitMix64(self._node_state(pre, lane))
        order = self.field.order
        return [core.next_below(order) for _ in range(count)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KeyedPRG):
            return NotImplemented
        return self.seed == other.seed and self.field == other.field

    def __hash__(self) -> int:
        return hash((self.seed, self.field))

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "KeyedPRG(seed=%d bytes, field=%r)" % (len(self.seed), self.field)
