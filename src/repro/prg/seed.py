"""Seed files — the encryption key of the scheme.

The prototype's ``MySQLEncode`` takes a seed file on the command line; the
seed is the only secret the client must retain ("The seed file acts as the
encryption key and should therefore be kept secure", section 5.1).  This
module provides a small container with read/write helpers and a generator of
fresh random seeds.
"""

from __future__ import annotations

import os
import secrets
from typing import Union

_PathLike = Union[str, "os.PathLike[str]"]

DEFAULT_SEED_BYTES = 32


def generate_seed(num_bytes: int = DEFAULT_SEED_BYTES) -> bytes:
    """Generate a fresh random seed of ``num_bytes`` bytes."""
    if num_bytes < 16:
        raise ValueError("seeds shorter than 16 bytes are too weak; got %d" % num_bytes)
    return secrets.token_bytes(num_bytes)


class SeedFile:
    """A seed value with optional on-disk persistence (hex encoded)."""

    def __init__(self, seed: bytes):
        if not isinstance(seed, (bytes, bytearray)) or len(seed) == 0:
            raise ValueError("seed must be non-empty bytes")
        self.seed = bytes(seed)

    @classmethod
    def generate(cls, num_bytes: int = DEFAULT_SEED_BYTES) -> "SeedFile":
        """Create a fresh random seed."""
        return cls(generate_seed(num_bytes))

    @classmethod
    def load(cls, path: _PathLike) -> "SeedFile":
        """Load a hex-encoded seed from ``path``."""
        with open(path, "r", encoding="ascii") as handle:
            text = handle.read().strip()
        if not text:
            raise ValueError("seed file %s is empty" % path)
        return cls(bytes.fromhex(text))

    def save(self, path: _PathLike) -> None:
        """Write the seed to ``path`` as a single hex line."""
        with open(path, "w", encoding="ascii") as handle:
            handle.write(self.seed.hex())
            handle.write("\n")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SeedFile):
            return NotImplemented
        return self.seed == other.seed

    def __hash__(self) -> int:
        return hash(self.seed)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "SeedFile(%d bytes)" % len(self.seed)
