"""Deterministic pseudorandom generation of client shares.

The client tree of secret shares is never stored: it is regenerated on demand
from a secret *seed* and the node's *pre* position (section 5.2 of the paper:
"ClientFilter first regenerates the client polynomial by using the
pseudorandom generator with the secret seed and the pre location of the
polynomial").

:class:`~repro.prg.generator.KeyedPRG` provides exactly that interface: a
stream of field elements deterministically derived from ``(seed, pre)``, plus
seed-file handling mirroring the prototype's ``seed`` command-line file.
"""

from repro.prg.generator import KeyedPRG, SplitMix64
from repro.prg.seed import SeedFile, generate_seed

__all__ = ["KeyedPRG", "SplitMix64", "SeedFile", "generate_seed"]
