"""Serialisation of the XML tree model back to text."""

from __future__ import annotations

from typing import List

from repro.xmldoc.nodes import XMLDocument, XMLElement

_ESCAPES_TEXT = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ESCAPES_ATTR = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def escape_text(text: str) -> str:
    """Escape character data for element content."""
    return "".join(_ESCAPES_TEXT.get(ch, ch) for ch in text)


def escape_attribute(text: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return "".join(_ESCAPES_ATTR.get(ch, ch) for ch in text)


def serialize_fragment(element: XMLElement) -> str:
    """Serialise one element subtree (no XML declaration)."""
    parts: List[str] = []
    _write_element(element, parts)
    return "".join(parts)


def serialize(document: XMLDocument, declaration: bool = True) -> str:
    """Serialise a whole document, optionally with an XML declaration."""
    parts: List[str] = []
    if declaration:
        parts.append('<?xml version="1.0" encoding="UTF-8"?>\n')
    _write_element(document.root, parts)
    parts.append("\n")
    return "".join(parts)


def _write_element(element: XMLElement, parts: List[str]) -> None:
    """Append the serialisation of ``element`` to ``parts`` (iteratively)."""
    # An explicit stack avoids recursion limits on the deep trie documents.
    stack = [("open", element)]
    while stack:
        action, node = stack.pop()
        if action == "close":
            parts.append("</%s>" % node.tag)
            parts.append(escape_text(node.tail))
            continue
        attributes = "".join(
            ' %s="%s"' % (name, escape_attribute(value))
            for name, value in sorted(node.attributes.items())
        )
        if not node.children and not node.text:
            parts.append("<%s%s/>" % (node.tag, attributes))
            parts.append(escape_text(node.tail))
            continue
        parts.append("<%s%s>" % (node.tag, attributes))
        parts.append(escape_text(node.text))
        stack.append(("close", node))
        for child in reversed(node.children):
            stack.append(("open", child))


def document_byte_size(document: XMLDocument) -> int:
    """UTF-8 size in bytes of the serialised document.

    The encoding experiment (figure 4) plots output size against *input* XML
    size; this helper provides the input-size axis for synthetic documents
    without having to write them to disk.
    """
    return len(serialize(document).encode("utf-8"))
