"""Minimal XML substrate: document model, streaming parser, serialiser.

The prototype parses XML with a SAX parser so that the encoding client only
needs memory proportional to the tree depth (section 5.1).  This package
provides the same capabilities without external dependencies:

* :class:`~repro.xmldoc.nodes.XMLElement` / :class:`~repro.xmldoc.nodes.XMLDocument`
  — a small in-memory tree model used by the generator, the trie transform
  and the plaintext reference engine.
* :class:`~repro.xmldoc.parser.StreamingParser` — an event-based (SAX-style)
  parser that feeds start/end/text events to a handler, plus a tree-building
  handler for convenience.
* :func:`~repro.xmldoc.serializer.serialize` — document → XML text.
* :class:`~repro.xmldoc.numbering.PrePostNumbering` — the pre / post / parent
  numbering used to store the tree shape relationally (Grust-style).
* :class:`~repro.xmldoc.dtd.DTD` — a light DTD model carrying the element
  names (the tag alphabet that the map file enumerates).
"""

from repro.xmldoc.dtd import DTD, DTDElement, XMARK_DTD, XMARK_ELEMENT_COUNT
from repro.xmldoc.nodes import XMLDocument, XMLElement, XMLError
from repro.xmldoc.numbering import NumberedNode, PrePostNumbering
from repro.xmldoc.parser import (
    ContentHandler,
    StreamingParser,
    TreeBuilder,
    parse_document,
    parse_string,
)
from repro.xmldoc.serializer import serialize, serialize_fragment

__all__ = [
    "XMLDocument",
    "XMLElement",
    "XMLError",
    "ContentHandler",
    "StreamingParser",
    "TreeBuilder",
    "parse_document",
    "parse_string",
    "serialize",
    "serialize_fragment",
    "NumberedNode",
    "PrePostNumbering",
    "DTD",
    "DTDElement",
    "XMARK_DTD",
    "XMARK_ELEMENT_COUNT",
]
