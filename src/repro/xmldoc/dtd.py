"""Light-weight DTD model and the XMark auction DTD from the paper's appendix.

The tag map (section 5.1) enumerates "each tag-name as specified by the DTD or
XML schema"; the paper's experiments rely on the XMark DTD having 77 element
names, which makes ``p = 83`` the smallest usable prime.  This module encodes
that DTD so the rest of the library (map generation, the synthetic document
generator, the AdvancedQuery discussion of "dead branches") can consult it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class DTDElement:
    """One ``<!ELEMENT …>`` declaration, simplified.

    ``children`` lists the element names that may occur as direct children
    (ignoring ordering and cardinality), and ``has_text`` records whether
    ``#PCDATA`` may occur.  That level of detail is enough for map-file
    generation, synthetic data generation and reachability analysis.
    """

    name: str
    children: Tuple[str, ...] = ()
    has_text: bool = False


class DTD:
    """A collection of element declarations with reachability helpers."""

    def __init__(self, elements: Iterable[DTDElement], root: str):
        self._elements: Dict[str, DTDElement] = {}
        for element in elements:
            if element.name in self._elements:
                raise ValueError("duplicate element declaration: %s" % element.name)
            self._elements[element.name] = element
        if root not in self._elements:
            raise ValueError("root element %r is not declared" % root)
        self.root = root
        self._descendant_cache: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def element_names(self) -> List[str]:
        """All declared element names, in declaration order."""
        return list(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, name: object) -> bool:
        return name in self._elements

    def get(self, name: str) -> Optional[DTDElement]:
        """The declaration of ``name``, or ``None``."""
        return self._elements.get(name)

    def children_of(self, name: str) -> Tuple[str, ...]:
        """Direct child element names allowed under ``name``."""
        element = self._elements.get(name)
        return element.children if element else ()

    def allows_text(self, name: str) -> bool:
        """Whether ``name`` may contain ``#PCDATA``."""
        element = self._elements.get(name)
        return bool(element and element.has_text)

    # ------------------------------------------------------------------
    # Reachability — what AdvancedQuery exploits
    # ------------------------------------------------------------------

    def reachable_descendants(self, name: str) -> Set[str]:
        """Element names that can occur anywhere below ``name``.

        The paper's query-length experiment (table 1) deliberately picks
        queries where the DTD already guarantees containment ("it is a waste
        of effort to check whether a europe node contains an item …, because
        the DTD dictates it to be always the case"); this helper lets tests
        and workload builders verify that property.
        """
        cached = self._descendant_cache.get(name)
        if cached is not None:
            return set(cached)
        visited: Set[str] = set()
        frontier = list(self.children_of(name))
        while frontier:
            current = frontier.pop()
            if current in visited:
                continue
            visited.add(current)
            frontier.extend(self.children_of(current))
        self._descendant_cache[name] = set(visited)
        return visited

    def can_contain(self, ancestor: str, descendant: str) -> bool:
        """Whether ``descendant`` can occur (at any depth) below ``ancestor``."""
        return descendant in self.reachable_descendants(ancestor)


def _element(name: str, children: Sequence[str] = (), has_text: bool = False) -> DTDElement:
    return DTDElement(name=name, children=tuple(children), has_text=has_text)


#: The 77-element XMark auction DTD transcribed from the paper's appendix A.
XMARK_DTD = DTD(
    elements=[
        _element("site", ["regions", "categories", "catgraph", "people", "open_auctions", "closed_auctions"]),
        _element("categories", ["category"]),
        _element("category", ["name", "description"]),
        _element("name", [], has_text=True),
        _element("description", ["text", "parlist"]),
        _element("text", ["bold", "keyword", "emph"], has_text=True),
        _element("bold", ["bold", "keyword", "emph"], has_text=True),
        _element("keyword", ["bold", "keyword", "emph"], has_text=True),
        _element("emph", ["bold", "keyword", "emph"], has_text=True),
        _element("parlist", ["listitem"]),
        _element("listitem", ["text", "parlist"]),
        _element("catgraph", ["edge"]),
        _element("edge", []),
        _element("regions", ["africa", "asia", "australia", "europe", "namerica", "samerica"]),
        _element("africa", ["item"]),
        _element("asia", ["item"]),
        _element("australia", ["item"]),
        _element("namerica", ["item"]),
        _element("samerica", ["item"]),
        _element("europe", ["item"]),
        _element(
            "item",
            ["location", "quantity", "name", "payment", "description", "shipping", "incategory", "mailbox"],
        ),
        _element("location", [], has_text=True),
        _element("quantity", [], has_text=True),
        _element("payment", [], has_text=True),
        _element("shipping", [], has_text=True),
        _element("reserve", [], has_text=True),
        _element("incategory", []),
        _element("mailbox", ["mail"]),
        _element("mail", ["from", "to", "date", "text"]),
        _element("from", [], has_text=True),
        _element("to", [], has_text=True),
        _element("date", [], has_text=True),
        _element("itemref", []),
        _element("personref", []),
        _element("people", ["person"]),
        _element(
            "person",
            ["name", "emailaddress", "phone", "address", "homepage", "creditcard", "profile", "watches"],
        ),
        _element("emailaddress", [], has_text=True),
        _element("phone", [], has_text=True),
        _element("address", ["street", "city", "country", "province", "zipcode"]),
        _element("street", [], has_text=True),
        _element("city", [], has_text=True),
        _element("province", [], has_text=True),
        _element("zipcode", [], has_text=True),
        _element("country", [], has_text=True),
        _element("homepage", [], has_text=True),
        _element("creditcard", [], has_text=True),
        _element("profile", ["interest", "education", "gender", "business", "age"]),
        _element("interest", []),
        _element("education", [], has_text=True),
        _element("income", [], has_text=True),
        _element("gender", [], has_text=True),
        _element("business", [], has_text=True),
        _element("age", [], has_text=True),
        _element("watches", ["watch"]),
        _element("watch", []),
        _element("open_auctions", ["open_auction"]),
        _element(
            "open_auction",
            [
                "initial",
                "reserve",
                "bidder",
                "current",
                "privacy",
                "itemref",
                "seller",
                "annotation",
                "quantity",
                "type",
                "interval",
            ],
        ),
        _element("privacy", [], has_text=True),
        _element("initial", [], has_text=True),
        _element("bidder", ["date", "time", "personref", "increase"]),
        _element("seller", []),
        _element("current", [], has_text=True),
        _element("increase", [], has_text=True),
        _element("type", [], has_text=True),
        _element("interval", ["start", "end"]),
        _element("start", [], has_text=True),
        _element("end", [], has_text=True),
        _element("time", [], has_text=True),
        _element("status", [], has_text=True),
        _element("amount", [], has_text=True),
        _element("closed_auctions", ["closed_auction"]),
        _element(
            "closed_auction",
            ["seller", "buyer", "itemref", "price", "date", "quantity", "type", "annotation"],
        ),
        _element("buyer", []),
        _element("price", [], has_text=True),
        _element("annotation", ["author", "description", "happiness"]),
        _element("author", []),
        _element("happiness", [], has_text=True),
    ],
    root="site",
)

#: Number of element names in the XMark DTD (the paper reports 77).
XMARK_ELEMENT_COUNT = len(XMARK_DTD)
