"""Pre / post / parent numbering of XML trees.

The prototype stores the tree shape relationally by attaching three integers
to every node (section 5.1, following Grust's XPath accelerator):

* ``pre``    — sequence number of the node's opening tag (document order),
* ``post``   — sequence number of the node's closing tag,
* ``parent`` — the ``pre`` number of the node's parent (0 for the root;
  the root itself is recognised by ``parent == 0``).

The well-known axis characterisations follow:

* ``d`` is a *descendant* of ``a``  ⇔  ``a.pre < d.pre`` and ``d.post < a.post``
* ``c`` is a *child* of ``a``       ⇔  ``c.parent == a.pre``

Numbering here starts at 1 so that ``parent == 0`` unambiguously marks the
root, matching the prototype's "locate the root node (i.e. the only node
without a parent (parent=0))".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.xmldoc.nodes import XMLDocument, XMLElement


@dataclass(frozen=True)
class NumberedNode:
    """One element together with its structural numbers."""

    element: XMLElement
    pre: int
    post: int
    parent: int

    @property
    def tag(self) -> str:
        """Tag name of the underlying element."""
        return self.element.tag


class PrePostNumbering:
    """Assigns and indexes pre/post/parent numbers for a document."""

    def __init__(self, document: XMLDocument):
        self.document = document
        self._nodes: List[NumberedNode] = []
        self._by_pre: Dict[int, NumberedNode] = {}
        self._number(document.root)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _number(self, root: XMLElement) -> None:
        """Iterative numbering pass (explicit stack: deep tries are legal)."""
        pre_counter = 0
        post_counter = 0
        records: Dict[int, Tuple[XMLElement, int]] = {}
        post_of: Dict[int, int] = {}
        # Each stack entry is (element, parent_pre, phase) where phase "open"
        # assigns the pre number and schedules the "close" phase after the
        # children have been processed.
        stack: List[Tuple[XMLElement, int, str, int]] = [(root, 0, "open", 0)]
        while stack:
            element, parent_pre, phase, own_pre = stack.pop()
            if phase == "open":
                pre_counter += 1
                records[pre_counter] = (element, parent_pre)
                stack.append((element, parent_pre, "close", pre_counter))
                for child in reversed(element.children):
                    stack.append((child, pre_counter, "open", 0))
            else:
                post_counter += 1
                post_of[own_pre] = post_counter
        for pre in sorted(records):
            element, parent_pre = records[pre]
            node = NumberedNode(element=element, pre=pre, post=post_of[pre], parent=parent_pre)
            self._nodes.append(node)
            self._by_pre[pre] = node

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[NumberedNode]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def by_pre(self, pre: int) -> Optional[NumberedNode]:
        """The node with the given ``pre`` number, or ``None``."""
        return self._by_pre.get(pre)

    @property
    def root(self) -> NumberedNode:
        """The root node (``parent == 0``)."""
        return self._by_pre[1]

    def children_of(self, pre: int) -> List[NumberedNode]:
        """Direct children of the node with the given ``pre`` number."""
        return [node for node in self._nodes if node.parent == pre]

    def descendants_of(self, pre: int) -> List[NumberedNode]:
        """All proper descendants of the node with the given ``pre`` number."""
        anchor = self._by_pre[pre]
        return [
            node
            for node in self._nodes
            if node.pre > anchor.pre and node.post < anchor.post
        ]

    def parent_of(self, pre: int) -> Optional[NumberedNode]:
        """Parent node, or ``None`` for the root."""
        node = self._by_pre[pre]
        if node.parent == 0:
            return None
        return self._by_pre[node.parent]

    def is_descendant(self, descendant_pre: int, ancestor_pre: int) -> bool:
        """Axis check using the pre/post characterisation."""
        descendant = self._by_pre[descendant_pre]
        ancestor = self._by_pre[ancestor_pre]
        return ancestor.pre < descendant.pre and descendant.post < ancestor.post
