"""In-memory XML tree model.

Only the features the reproduction needs are modelled: element nodes with a
tag name, ordered children, optional attributes, and text content.  Mixed
content is supported by keeping text as a per-element ``text`` plus per-child
``tail`` strings (the same convention as ``xml.etree``), which is sufficient
for the XMark documents.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional


class XMLError(ValueError):
    """Raised for malformed documents or invalid tree operations."""


class XMLElement:
    """One element node of an XML tree."""

    __slots__ = ("tag", "attributes", "children", "text", "tail", "parent")

    def __init__(
        self,
        tag: str,
        attributes: Optional[Dict[str, str]] = None,
        text: str = "",
    ):
        if not tag or not _is_valid_name(tag):
            raise XMLError("invalid element tag name: %r" % (tag,))
        self.tag = tag
        self.attributes: Dict[str, str] = dict(attributes or {})
        self.children: List["XMLElement"] = []
        self.text = text
        self.tail = ""
        self.parent: Optional["XMLElement"] = None

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------

    def append(self, child: "XMLElement") -> "XMLElement":
        """Append ``child`` and return it (for chaining)."""
        if not isinstance(child, XMLElement):
            raise XMLError("children must be XMLElement instances, got %r" % (child,))
        child.parent = self
        self.children.append(child)
        return child

    def make_child(self, tag: str, text: str = "", **attributes: str) -> "XMLElement":
        """Create, append and return a new child element."""
        child = XMLElement(tag, attributes=attributes, text=text)
        return self.append(child)

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------

    def iter(self) -> Iterator["XMLElement"]:
        """Depth-first, document-order iteration over this subtree."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_tag(self, tag: str) -> Iterator["XMLElement"]:
        """Iterate the subtree yielding only elements with the given tag."""
        for node in self.iter():
            if node.tag == tag:
                yield node

    def find(self, tag: str) -> Optional["XMLElement"]:
        """First direct child with the given tag, or ``None``."""
        for child in self.children:
            if child.tag == tag:
                return child
        return None

    def find_all(self, tag: str) -> List["XMLElement"]:
        """All direct children with the given tag."""
        return [child for child in self.children if child.tag == tag]

    @property
    def depth(self) -> int:
        """Distance from the root (root has depth 0)."""
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------

    def subtree_size(self) -> int:
        """Number of element nodes in this subtree (including ``self``)."""
        return sum(1 for _ in self.iter())

    def subtree_tags(self) -> set:
        """Set of distinct tag names appearing in this subtree."""
        return {node.tag for node in self.iter()}

    def text_content(self) -> str:
        """Concatenated text of this subtree, document order."""
        parts = [self.text]
        for child in self.children:
            parts.append(child.text_content())
            parts.append(child.tail)
        return "".join(parts)

    def height(self) -> int:
        """Height of this subtree (a leaf has height 1)."""
        if not self.children:
            return 1
        return 1 + max(child.height() for child in self.children)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "<XMLElement %s children=%d>" % (self.tag, len(self.children))


class XMLDocument:
    """A whole XML document: a root element plus document-level metadata."""

    __slots__ = ("root",)

    def __init__(self, root: XMLElement):
        if not isinstance(root, XMLElement):
            raise XMLError("document root must be an XMLElement, got %r" % (root,))
        self.root = root

    def iter(self) -> Iterator[XMLElement]:
        """Document-order iteration over all elements."""
        return self.root.iter()

    def element_count(self) -> int:
        """Total number of element nodes."""
        return self.root.subtree_size()

    def distinct_tags(self) -> set:
        """Set of distinct tag names in the document."""
        return self.root.subtree_tags()

    def height(self) -> int:
        """Height of the document tree."""
        return self.root.height()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "<XMLDocument root=%s elements=%d>" % (self.root.tag, self.element_count())


_NAME_START = set("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_")
_NAME_CHARS = _NAME_START | set("0123456789.-·")


def _is_valid_name(name: str) -> bool:
    """Check a tag/attribute name against a simplified XML name grammar."""
    if not name:
        return False
    if name[0] not in _NAME_START:
        return False
    return all(ch in _NAME_CHARS or ch == ":" for ch in name[1:])
