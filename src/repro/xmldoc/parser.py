"""Streaming (SAX-style) XML parser.

The encoder must be able to process documents much larger than client memory,
reading linearly and keeping only a path-to-root of state (section 5.1).  The
:class:`StreamingParser` therefore emits events to a :class:`ContentHandler`
while scanning the input text once; :class:`TreeBuilder` is the convenience
handler that materialises an :class:`~repro.xmldoc.nodes.XMLDocument` when an
in-memory tree is acceptable.

Supported XML subset (sufficient for XMark documents and the examples):

* elements with attributes, text content and mixed content,
* character and the five predefined entity references,
* comments, processing instructions, XML declarations and DOCTYPE
  declarations (all skipped),
* CDATA sections.

Namespaces, external entities and full DTD validation are out of scope.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.xmldoc.nodes import XMLDocument, XMLElement, XMLError

_ENTITY_MAP = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}


class ContentHandler:
    """Receiver of parse events; subclass and override what you need."""

    def start_document(self) -> None:
        """Called once before any other event."""

    def end_document(self) -> None:
        """Called once after the root element has been closed."""

    def start_element(self, tag: str, attributes: Dict[str, str]) -> None:
        """Called for every opening (or self-closing) tag."""

    def end_element(self, tag: str) -> None:
        """Called for every closing tag (and after self-closing tags)."""

    def characters(self, text: str) -> None:
        """Called for runs of character data (already entity-decoded)."""


class TreeBuilder(ContentHandler):
    """A handler that builds an in-memory :class:`XMLDocument`."""

    def __init__(self) -> None:
        self._stack: List[XMLElement] = []
        self._root: Optional[XMLElement] = None

    def start_element(self, tag: str, attributes: Dict[str, str]) -> None:
        element = XMLElement(tag, attributes=attributes)
        if self._stack:
            self._stack[-1].append(element)
        elif self._root is None:
            self._root = element
        else:
            raise XMLError("multiple root elements in document")
        self._stack.append(element)

    def end_element(self, tag: str) -> None:
        if not self._stack:
            raise XMLError("unexpected closing tag </%s>" % tag)
        top = self._stack.pop()
        if top.tag != tag:
            raise XMLError("mismatched closing tag </%s> for <%s>" % (tag, top.tag))

    def characters(self, text: str) -> None:
        if not self._stack:
            if text.strip():
                raise XMLError("character data outside of the root element")
            return
        current = self._stack[-1]
        if current.children:
            current.children[-1].tail += text
        else:
            current.text += text

    def document(self) -> XMLDocument:
        """The completed document (only valid after parsing finished)."""
        if self._root is None:
            raise XMLError("document had no root element")
        if self._stack:
            raise XMLError("document ended with unclosed elements: %s" % self._stack[-1].tag)
        return XMLDocument(self._root)


class StreamingParser:
    """Single-pass event parser over XML text."""

    def __init__(self, handler: ContentHandler):
        self.handler = handler

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def parse_string(self, text: str) -> None:
        """Parse a complete document held in a string."""
        self.handler.start_document()
        self._scan(text)
        self.handler.end_document()

    def parse_chunks(self, chunks: Iterable[str]) -> None:
        """Parse a document supplied as an iterable of text chunks.

        Chunks are concatenated lazily enough that very large documents built
        by generators (e.g. the XMark synthesiser's streaming mode) do not
        require an extra full copy beyond the joined text buffer.
        """
        self.parse_string("".join(chunks))

    def parse_file(self, path: str, encoding: str = "utf-8") -> None:
        """Parse a document stored in a file."""
        with open(path, "r", encoding=encoding) as handle:
            self.parse_string(handle.read())

    # ------------------------------------------------------------------
    # Scanner
    # ------------------------------------------------------------------

    def _scan(self, text: str) -> None:
        handler = self.handler
        position = 0
        length = len(text)
        open_elements = 0
        seen_root = False
        while position < length:
            lt = text.find("<", position)
            if lt < 0:
                trailing = text[position:]
                if trailing.strip():
                    raise XMLError("character data after the root element")
                break
            if lt > position:
                raw = text[position:lt]
                if open_elements:
                    handler.characters(_decode_entities(raw))
                elif raw.strip():
                    raise XMLError("character data outside of the root element")
            if text.startswith("<!--", lt):
                end = text.find("-->", lt + 4)
                if end < 0:
                    raise XMLError("unterminated comment")
                position = end + 3
                continue
            if text.startswith("<![CDATA[", lt):
                end = text.find("]]>", lt + 9)
                if end < 0:
                    raise XMLError("unterminated CDATA section")
                if open_elements:
                    handler.characters(text[lt + 9 : end])
                position = end + 3
                continue
            if text.startswith("<?", lt):
                end = text.find("?>", lt + 2)
                if end < 0:
                    raise XMLError("unterminated processing instruction")
                position = end + 2
                continue
            if text.startswith("<!", lt):
                position = _skip_declaration(text, lt)
                continue
            if text.startswith("</", lt):
                end = text.find(">", lt + 2)
                if end < 0:
                    raise XMLError("unterminated closing tag")
                tag = text[lt + 2 : end].strip()
                handler.end_element(tag)
                open_elements -= 1
                position = end + 1
                continue
            # Opening or self-closing tag.
            end = text.find(">", lt + 1)
            if end < 0:
                raise XMLError("unterminated tag starting at offset %d" % lt)
            body = text[lt + 1 : end]
            self_closing = body.endswith("/")
            if self_closing:
                body = body[:-1]
            tag, attributes = _parse_tag_body(body)
            if not open_elements and seen_root:
                raise XMLError("multiple root elements in document")
            handler.start_element(tag, attributes)
            seen_root = True
            if self_closing:
                handler.end_element(tag)
            else:
                open_elements += 1
            position = end + 1
        if open_elements:
            raise XMLError("document ended with %d unclosed element(s)" % open_elements)
        if not seen_root:
            raise XMLError("document had no root element")


def parse_string(text: str) -> XMLDocument:
    """Parse XML text into an :class:`XMLDocument`."""
    builder = TreeBuilder()
    StreamingParser(builder).parse_string(text)
    return builder.document()


def parse_document(path: str, encoding: str = "utf-8") -> XMLDocument:
    """Parse an XML file into an :class:`XMLDocument`."""
    builder = TreeBuilder()
    StreamingParser(builder).parse_file(path, encoding=encoding)
    return builder.document()


# ----------------------------------------------------------------------
# Lexical helpers
# ----------------------------------------------------------------------


def _skip_declaration(text: str, start: int) -> int:
    """Skip a ``<!...>`` declaration (DOCTYPE with internal subset supported)."""
    depth = 0
    position = start
    length = len(text)
    while position < length:
        char = text[position]
        if char == "<":
            depth += 1
        elif char == ">":
            depth -= 1
            if depth == 0:
                return position + 1
        elif char == "[":
            # Internal DTD subset: skip to the matching "]>".
            close = text.find("]>", position)
            if close < 0:
                raise XMLError("unterminated DOCTYPE internal subset")
            return close + 2
        position += 1
    raise XMLError("unterminated declaration starting at offset %d" % start)


def _parse_tag_body(body: str) -> Tuple[str, Dict[str, str]]:
    """Split ``tagname attr="v" ...`` into the tag and attribute dict."""
    body = body.strip()
    if not body:
        raise XMLError("empty tag")
    parts = _split_tag(body)
    tag = parts[0]
    attributes: Dict[str, str] = {}
    for part in parts[1:]:
        if "=" not in part:
            raise XMLError("malformed attribute %r in tag <%s>" % (part, tag))
        name, _, raw_value = part.partition("=")
        name = name.strip()
        raw_value = raw_value.strip()
        if len(raw_value) < 2 or raw_value[0] not in "\"'" or raw_value[-1] != raw_value[0]:
            raise XMLError("attribute value must be quoted: %r" % (part,))
        attributes[name] = _decode_entities(raw_value[1:-1])
    return tag, attributes


def _split_tag(body: str) -> List[str]:
    """Split a tag body on whitespace, keeping quoted attribute values intact."""
    parts: List[str] = []
    current: List[str] = []
    quote: Optional[str] = None
    for char in body:
        if quote:
            current.append(char)
            if char == quote:
                quote = None
        elif char in "\"'":
            current.append(char)
            quote = char
        elif char.isspace():
            if current:
                parts.append("".join(current))
                current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return parts


def _decode_entities(text: str) -> str:
    """Decode the predefined entities and numeric character references."""
    if "&" not in text:
        return text
    output: List[str] = []
    position = 0
    length = len(text)
    while position < length:
        amp = text.find("&", position)
        if amp < 0:
            output.append(text[position:])
            break
        output.append(text[position:amp])
        semi = text.find(";", amp + 1)
        if semi < 0:
            raise XMLError("unterminated entity reference near %r" % text[amp : amp + 10])
        entity = text[amp + 1 : semi]
        if entity.startswith("#x") or entity.startswith("#X"):
            output.append(chr(int(entity[2:], 16)))
        elif entity.startswith("#"):
            output.append(chr(int(entity[1:], 10)))
        elif entity in _ENTITY_MAP:
            output.append(_ENTITY_MAP[entity])
        else:
            raise XMLError("unknown entity reference &%s;" % entity)
        position = semi + 1
    return "".join(output)
