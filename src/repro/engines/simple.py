"""The SimpleQuery engine: left-to-right step evaluation.

Section 5.3: "The most simple search strategy parses the XPath query into
steps where each step consists of a direction (child (/) or descendant (//))
and a tag name."  Each step expands the current result set along its axis and
filters the candidates with one test per node against the step's own tag —
no look-ahead, so descendant steps can blow the candidate set up considerably
(the paper's ``//city`` example).
"""

from __future__ import annotations

from typing import List

from repro.engines.base import EncryptedQueryEngine
from repro.filters.interface import MatchRule
from repro.xpath.ast import Axis, Query


class SimpleQueryEngine(EncryptedQueryEngine):
    """Left-to-right evaluation with a single test per candidate node."""

    name = "simple"

    def _execute_steps(self, query: Query, rule: MatchRule) -> List[int]:
        # ``current`` is the set of nodes matching the steps consumed so far.
        # ``at_document_root`` marks the virtual context before the first
        # step: "/x" starts at the document root whose only child is the root
        # element, "//x" may match any node of the document.
        current: List[int] = []
        at_document_root = True

        for step in query.steps:
            if step.is_parent:
                if at_document_root:
                    return []
                current = self._parents_of_set(current)
                continue

            if step.axis is Axis.CHILD:
                if at_document_root:
                    candidates = [self.filter.root_pre()]
                else:
                    candidates = self._children_of_set(current)
            else:  # descendant axis
                if at_document_root:
                    root = self.filter.root_pre()
                    candidates = sorted({root, *self.filter.descendants_of(root)})
                else:
                    candidates = self._descendants_of_set(current)
            at_document_root = False

            # "The * reduces the workload because no additional filtering is
            # needed" — every wildcard candidate survives without an
            # evaluation; named steps test the whole candidate list with one
            # batched remote call.
            current = self._filter_matching(candidates, step, rule)

            if step.predicates:
                current = [pre for pre in current if self._predicates_hold(pre, step, rule)]

            if not current:
                return []

        return current
