"""The AdvancedQuery engine: root-to-leaf traversal with look-ahead pruning.

Section 5.3: "In contrast to the SimpleQuery the AdvancedQuery takes the tree
as the starting point and parses it from root to leaf nodes.  At each step
the whole remaining query is taken into account.  We take advantage of the
fact that nodes have knowledge of all descendants.  This way it is possible
to identify dead branches early in the search process at the cost of more
evaluations for each node."

Concretely (matching the paper's worked example for ``/site/*/person//city``):

1. Start with the root as the candidate for the first step and evaluate its
   polynomial at *every* tag name occurring in the query; any non-zero sum
   kills the query immediately.
2. Consuming a child step means descending to the candidates' children; every
   new candidate is evaluated against all tag names of the *remaining* query
   (which includes the next step's own tag), pruning subtrees that cannot
   possibly produce a result.
3. A descendant step walks downwards from the current candidates, descending
   only while the subtree still contains the step's tag, and collecting every
   node that passes the test.
4. Under strict checking the candidates of a named step are additionally
   verified with the equality test; under non-strict checking the containment
   evaluation performed by the look-ahead is all the filtering a named step
   gets (the paper: "The implementation does not check if the node is a
   person but if it contains it").
"""

from __future__ import annotations

from typing import List, Sequence

from repro.engines.base import EncryptedQueryEngine
from repro.filters.interface import MatchRule
from repro.xpath.ast import Axis, Query, Step


class AdvancedQueryEngine(EncryptedQueryEngine):
    """Root-to-leaf evaluation with whole-remaining-query look-ahead."""

    name = "advanced"

    def _execute_steps(self, query: Query, rule: MatchRule) -> List[int]:
        steps = query.steps
        root = self.filter.root_pre()

        # Candidates for the first step.
        if steps[0].axis is Axis.CHILD:
            candidates = [root]
        else:
            candidates = self._descendant_walk([root], steps[0], include_anchors=True)
        candidates = self._lookahead_filter(candidates, query, 0, skip_tag=None)

        for index, step in enumerate(steps):
            is_last = index == len(steps) - 1

            if step.is_parent:
                # '..' maps the candidate nodes to their distinct parents;
                # there is no node test to evaluate.
                matched = self._parents_of_set(candidates)
            else:
                # Matching of the step's own tag: the containment look-ahead
                # has already covered it for the non-strict rule; strict
                # checking adds the expensive equality test on every
                # surviving candidate.
                matched = candidates
                if step.is_name_test and rule is MatchRule.EQUALITY:
                    flags = self.filter.equals_many(matched, step.test)
                    matched = [pre for pre, ok in zip(matched, flags) if ok]
            if step.predicates:
                matched = [pre for pre in matched if self._predicates_hold(pre, step, rule)]
            if not matched:
                return []
            if is_last:
                return matched

            # Build the candidate set for the next step.
            next_step = steps[index + 1]
            if next_step.is_parent:
                # A '..' step operates on the nodes just matched; no descent
                # and no look-ahead here — the parent-step branch above maps
                # to the parents and applies the look-ahead afterwards
                # (matched nodes need not contain the tags their *parents*
                # will be checked against).
                candidates = list(matched)
            else:
                if next_step.axis is Axis.CHILD:
                    candidates = self._children_of_set(matched)
                    skip_tag = None
                else:
                    candidates = self._descendant_walk(matched, next_step, include_anchors=False)
                    # The walk already evaluated the next step's own tag on
                    # every collected node; do not evaluate it again.
                    skip_tag = next_step.test if next_step.is_name_test else None
                candidates = self._lookahead_filter(candidates, query, index + 1, skip_tag=skip_tag)
                if not candidates:
                    return []

        return candidates

    # ------------------------------------------------------------------
    # Look-ahead
    # ------------------------------------------------------------------

    def _lookahead_filter(
        self, candidates: Sequence[int], query: Query, from_step: int, skip_tag
    ) -> List[int]:
        """Keep candidates whose subtree contains every remaining query tag.

        ``from_step`` is the index of the step the candidates are meant for;
        the filter evaluates every distinct tag name from that step onwards.
        ``skip_tag`` suppresses a tag that the caller has already evaluated on
        these candidates (avoids double-counting evaluations).
        """
        tags = [tag for tag in query.name_tests(from_step) if tag != skip_tag]
        surviving = sorted(set(candidates))
        # Tag-by-tag batched filtering: each tag costs one remote call over
        # the candidates still alive, and — exactly like the per-node
        # short-circuiting ``all()`` loop — a candidate killed by an earlier
        # tag is never evaluated at a later one.
        for tag in tags:
            if not surviving:
                break
            flags = self.filter.contains_many(surviving, tag)
            surviving = [pre for pre, ok in zip(surviving, flags) if ok]
        return surviving

    # ------------------------------------------------------------------
    # Descendant steps
    # ------------------------------------------------------------------

    def _descendant_walk(
        self, anchors: Sequence[int], step: Step, include_anchors: bool
    ) -> List[int]:
        """Pruned downward walk implementing a ``//tag`` step.

        Starting from the anchors (or their children when the anchors
        themselves already matched the previous step), the walk visits a node,
        evaluates its polynomial at the step's tag and — because a zero sum
        means the tag occurs somewhere below — descends further only on a
        match.  Every matching node is collected; the wildcard ``//*`` form
        collects every descendant without evaluations.

        The walk proceeds level by level so each tree level costs two remote
        calls (one batched containment test, one batched children expansion)
        instead of two calls per visited node; the set of nodes visited and
        evaluated is identical to the former per-node depth-first walk.
        """
        collected: List[int] = []
        seen = set()
        if include_anchors:
            frontier = list(anchors)
        else:
            frontier = self._children_of_set(anchors)
        while frontier:
            level = []
            for pre in frontier:
                if pre not in seen:
                    seen.add(pre)
                    level.append(pre)
            if not level:
                break
            if step.is_wildcard:
                matched = level
            else:
                flags = self.filter.contains_many(level, step.test)
                matched = [pre for pre, ok in zip(level, flags) if ok]
            collected.extend(matched)
            frontier = self._children_of_set(matched) if matched else []
        return sorted(collected)
