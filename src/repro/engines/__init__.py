"""Query engines: SimpleQuery, AdvancedQuery and the plaintext reference.

Section 5.3 of the paper describes two search strategies over the encrypted
store:

* **SimpleQuery** parses the XPath expression left to right.  Each step
  expands the current result set along its axis (children or descendants,
  fetched from the server) and filters the candidates with a single test per
  node against the step's tag.
* **AdvancedQuery** walks the tree from the root downwards.  At every node it
  evaluates the node's polynomial at *all* remaining query tags — exploiting
  the fact that a node's polynomial knows its whole subtree — so dead
  branches are pruned early, at the price of more evaluations per node.

Both engines run with either matching rule
(:class:`~repro.filters.interface.MatchRule`): the cheap containment test
(non-strict) or the exact equality test (strict).

:class:`~repro.engines.plaintext.PlaintextEngine` evaluates the same query
subset directly on the unencrypted document and is the ground truth used for
correctness tests and for the accuracy measurements of figure 7.
"""

from repro.engines.advanced import AdvancedQueryEngine
from repro.engines.base import EncryptedQueryEngine, QueryResult
from repro.engines.plaintext import PlaintextEngine
from repro.engines.simple import SimpleQueryEngine

__all__ = [
    "EncryptedQueryEngine",
    "QueryResult",
    "SimpleQueryEngine",
    "AdvancedQueryEngine",
    "PlaintextEngine",
]
