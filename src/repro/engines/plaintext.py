"""Plaintext reference engine: exact XPath-subset evaluation on the document.

This engine never touches the encrypted store.  It evaluates the same query
subset directly against the original :class:`~repro.xmldoc.nodes.XMLDocument`
using the pre/post/parent numbering, so its results are the ground truth:

* correctness tests assert that both encrypted engines under the *equality*
  rule return exactly these results,
* the accuracy experiment (figure 7) uses it to size ``E`` (the exact result)
  against ``C`` (the containment result).
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.xmldoc.nodes import XMLDocument
from repro.xmldoc.numbering import PrePostNumbering
from repro.xpath.ast import (
    Axis,
    ContainsTextPredicate,
    PathPredicate,
    Query,
    Step,
    XPathError,
)
from repro.xpath.parser import parse_query


class PlaintextEngine:
    """Evaluates the XPath subset on an unencrypted document."""

    name = "plaintext"

    def __init__(self, document: XMLDocument):
        self.document = document
        self.numbering = PrePostNumbering(document)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute(self, query: Union[str, Query]) -> List[int]:
        """Run ``query`` and return the sorted ``pre`` numbers of the matches."""
        parsed = parse_query(query) if isinstance(query, str) else query
        return self._evaluate(parsed, context=None)

    def execute_tags(self, query: Union[str, Query]) -> List[str]:
        """Like :meth:`execute` but returning the matched tag names."""
        return [self.numbering.by_pre(pre).tag for pre in self.execute(query)]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _evaluate(self, query: Query, context) -> List[int]:
        current: List[int] = list(context) if context is not None else []
        at_document_root = context is None

        for step in query.steps:
            if step.is_parent:
                if at_document_root:
                    return []
                current = self._parents(current)
                continue

            if step.axis is Axis.CHILD:
                if at_document_root:
                    candidates = [self.numbering.root.pre]
                else:
                    candidates = self._children(current)
            else:
                if at_document_root:
                    root_pre = self.numbering.root.pre
                    candidates = sorted(
                        {root_pre, *(node.pre for node in self.numbering.descendants_of(root_pre))}
                    )
                else:
                    candidates = self._descendants(current)
            at_document_root = False

            if step.is_wildcard:
                current = candidates
            else:
                current = [
                    pre for pre in candidates if self.numbering.by_pre(pre).tag == step.test
                ]

            if step.predicates:
                current = [pre for pre in current if self._predicates_hold(pre, step)]

            if not current:
                return []

        return sorted(set(current))

    def _predicates_hold(self, pre: int, step: Step) -> bool:
        for predicate in step.predicates:
            if isinstance(predicate, ContainsTextPredicate):
                element = self.numbering.by_pre(pre).element
                if predicate.literal.lower() not in element.text_content().lower():
                    return False
            elif isinstance(predicate, PathPredicate):
                if not self._evaluate(predicate.path, context=[pre]):
                    return False
            else:  # pragma: no cover - defensive
                raise XPathError("unsupported predicate %r" % (predicate,))
        return True

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------

    def _children(self, pres: Sequence[int]) -> List[int]:
        children = set()
        for pre in pres:
            children.update(node.pre for node in self.numbering.children_of(pre))
        return sorted(children)

    def _descendants(self, pres: Sequence[int]) -> List[int]:
        descendants = set()
        for pre in pres:
            descendants.update(node.pre for node in self.numbering.descendants_of(pre))
        return sorted(descendants)

    def _parents(self, pres: Sequence[int]) -> List[int]:
        parents = set()
        for pre in pres:
            node = self.numbering.parent_of(pre)
            if node is not None:
                parents.add(node.pre)
        return sorted(parents)
