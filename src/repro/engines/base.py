"""Shared machinery of the encrypted query engines."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.filters.client import ClientFilter
from repro.filters.interface import MatchRule
from repro.metrics.timer import Stopwatch
from repro.xpath.ast import (
    Axis,
    ContainsTextPredicate,
    PathPredicate,
    Query,
    Step,
    XPathError,
)
from repro.xpath.parser import parse_query


@dataclass(frozen=True)
class QueryResult:
    """The outcome of one query execution."""

    #: the query as executed
    query: str
    #: engine name ("simple" or "advanced")
    engine: str
    #: matching rule used
    rule: MatchRule
    #: matching node ``pre`` numbers, sorted
    matches: tuple
    #: counter snapshot covering just this execution
    counters: Dict[str, int] = field(default_factory=dict)
    #: wall-clock execution time in seconds
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.matches)

    @property
    def result_size(self) -> int:
        """Number of matching nodes."""
        return len(self.matches)

    @property
    def evaluations(self) -> int:
        """Containment evaluations performed for this query."""
        return self.counters.get("evaluations", 0)

    @property
    def equality_tests(self) -> int:
        """Equality tests performed for this query."""
        return self.counters.get("equality_tests", 0)


class EncryptedQueryEngine(ABC):
    """Base class of the two encrypted query engines.

    Handles query parsing, the strict/non-strict rule selection, the
    per-query counter bookkeeping and predicate evaluation; subclasses
    implement :meth:`_execute_steps` with their search strategy.
    """

    #: engine name used in reports ("simple" / "advanced")
    name = "abstract"

    def __init__(self, client_filter: ClientFilter, rule: MatchRule = MatchRule.CONTAINMENT):
        self.filter = client_filter
        self.rule = rule

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute(self, query: Union[str, Query], rule: Optional[MatchRule] = None) -> QueryResult:
        """Run ``query`` and return the matching nodes plus measurements."""
        parsed = parse_query(query) if isinstance(query, str) else query
        active_rule = rule if rule is not None else self.rule
        before = self.filter.counters.snapshot()
        watch = Stopwatch().start()
        matches = self._execute_steps(parsed, active_rule)
        elapsed = watch.stop()
        after = self.filter.counters.snapshot()
        delta = {key: after.get(key, 0) - before.get(key, 0) for key in after}
        return QueryResult(
            query=parsed.to_string(),
            engine=self.name,
            rule=active_rule,
            matches=tuple(sorted(set(matches))),
            counters=delta,
            elapsed_seconds=elapsed,
        )

    @abstractmethod
    def _execute_steps(self, query: Query, rule: MatchRule) -> List[int]:
        """Strategy-specific evaluation returning matching ``pre`` numbers."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _children_of_set(self, pres: Sequence[int]) -> List[int]:
        """Union of the children of every node in ``pres`` (document order)."""
        if not pres:
            return []
        children = set()
        for child_list in self.filter.children_of_many(pres):
            children.update(child_list)
        return sorted(children)

    def _descendants_of_set(self, pres: Sequence[int]) -> List[int]:
        """Union of the proper descendants of every node in ``pres``."""
        if not pres:
            return []
        descendants = set()
        for descendant_list in self.filter.descendants_of_many(pres):
            descendants.update(descendant_list)
        return sorted(descendants)

    def _parents_of_set(self, pres: Sequence[int]) -> List[int]:
        """Distinct parents of the nodes in ``pres`` (the root's parent is dropped)."""
        if not pres:
            return []
        return sorted({parent for parent in self.filter.parents_of_many(pres) if parent != 0})

    def _matches_step(self, pre: int, step: Step, rule: MatchRule) -> bool:
        """Test one candidate against one step's node test under ``rule``."""
        if step.is_wildcard:
            return True
        if step.is_parent:
            raise XPathError("'..' is handled structurally, not as a node test")
        return self.filter.matches(pre, step.test, rule)

    def _filter_matching(self, pres: Sequence[int], step: Step, rule: MatchRule) -> List[int]:
        """Candidates from ``pres`` that pass the step's node test (batched)."""
        if step.is_wildcard:
            return list(pres)
        if step.is_parent:
            raise XPathError("'..' is handled structurally, not as a node test")
        if not pres:
            return []
        flags = self.filter.matches_many(list(pres), step.test, rule)
        return [pre for pre, matched in zip(pres, flags) if matched]

    def _predicates_hold(self, pre: int, step: Step, rule: MatchRule) -> bool:
        """Evaluate every predicate of ``step`` anchored at node ``pre``."""
        for predicate in step.predicates:
            if isinstance(predicate, ContainsTextPredicate):
                raise XPathError(
                    "contains(text(), …) must be rewritten for the trie representation "
                    "before execution (see repro.xpath.rewrite.rewrite_for_trie)"
                )
            if isinstance(predicate, PathPredicate):
                if not self._relative_path_exists(pre, predicate.path, rule):
                    return False
        return True

    def _relative_path_exists(self, anchor: int, path: Query, rule: MatchRule) -> bool:
        """Existence check of a relative path below ``anchor``.

        Predicates are evaluated with the left-to-right strategy regardless of
        the engine (they are short character paths after the trie rewriting),
        with the same matching rule as the main query.
        """
        current = [anchor]
        for step in path.steps:
            if not current:
                return False
            if step.is_parent:
                current = self._parents_of_set(current)
                continue
            if step.axis is Axis.CHILD:
                candidates = self._children_of_set(current)
            else:
                candidates = self._descendants_of_set(current)
            current = self._filter_matching(candidates, step, rule)
            if step.predicates:
                current = [pre for pre in current if self._predicates_hold(pre, step, rule)]
        return bool(current)
