"""Client-side cost model and automatic engine selection.

The paper's motivation for building two engines was that "it was not a priori
clear which search strategy is the best" — the experiments then showed that
the answer depends on the query: the advanced engine wins whenever ``//``
steps appear (figure 6), while for short absolute paths the simple engine is
marginally cheaper (figure 5).  This module captures that trade-off in a small
analytical cost model so a client can pick the engine per query.

The statistics the model needs (tag counts, average fan-out, subtree
containment counts) are computed *client-side at encoding time* from the
plaintext document, i.e. before it is discarded — nothing is requested from
or revealed to the server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.xmldoc.nodes import XMLDocument
from repro.xmldoc.numbering import PrePostNumbering
from repro.xpath.ast import Axis, Query
from repro.xpath.parser import parse_query


@dataclass(frozen=True)
class DocumentStatistics:
    """Aggregate structural statistics retained by the client.

    ``tag_counts``        — number of nodes per tag name,
    ``containing_counts`` — number of nodes whose subtree contains the tag,
    ``node_count``        — total element count,
    ``average_fanout``    — mean number of children per node,
    ``height``            — tree height.
    """

    node_count: int
    average_fanout: float
    height: int
    tag_counts: Dict[str, int] = field(default_factory=dict)
    containing_counts: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_document(cls, document: XMLDocument) -> "DocumentStatistics":
        """Scan the plaintext document once and collect the statistics."""
        numbering = PrePostNumbering(document)
        tag_counts: Dict[str, int] = {}
        containing_counts: Dict[str, int] = {}
        total_children = 0
        for node in numbering:
            tag_counts[node.tag] = tag_counts.get(node.tag, 0) + 1
            total_children += len(node.element.children)
            subtree_tags = {node.tag} | {d.tag for d in numbering.descendants_of(node.pre)}
            for tag in subtree_tags:
                containing_counts[tag] = containing_counts.get(tag, 0) + 1
        count = len(numbering)
        return cls(
            node_count=count,
            average_fanout=(total_children / count) if count else 0.0,
            height=document.height(),
            tag_counts=tag_counts,
            containing_counts=containing_counts,
        )

    def count_of(self, tag: str) -> int:
        """Number of nodes labelled ``tag`` (0 for unknown tags)."""
        return self.tag_counts.get(tag, 0)

    def containing(self, tag: str) -> int:
        """Number of nodes whose subtree contains ``tag``."""
        return self.containing_counts.get(tag, 0)


@dataclass(frozen=True)
class CostEstimate:
    """Predicted evaluation counts for one query."""

    simple_evaluations: float
    advanced_evaluations: float

    @property
    def recommended_engine(self) -> str:
        """The engine with the lower predicted cost (ties go to 'simple')."""
        if self.advanced_evaluations < self.simple_evaluations:
            return "advanced"
        return "simple"


class EngineCostModel:
    """Analytical estimate of the work each engine performs for a query.

    The model tracks, step by step, the expected size of the candidate set:

    * the **simple** engine pays one evaluation per candidate per named step;
      a ``//`` step inflates the candidate set to the descendants of the
      current result set,
    * the **advanced** engine pays one evaluation per *remaining* query tag
      per candidate, but its candidate set stays close to the true result
      because subtrees that cannot contain the remaining tags are pruned.

    The estimates are deliberately coarse — they only need to rank the two
    engines, and the experiments show the gap is large exactly when it
    matters (descendant-heavy queries).
    """

    def __init__(self, statistics: DocumentStatistics):
        self.statistics = statistics

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def estimate(self, query: Union[str, Query]) -> CostEstimate:
        """Predict evaluation counts for both engines."""
        parsed = parse_query(query) if isinstance(query, str) else query
        return CostEstimate(
            simple_evaluations=self._estimate_simple(parsed),
            advanced_evaluations=self._estimate_advanced(parsed),
        )

    def choose_engine(self, query: Union[str, Query]) -> str:
        """The engine the model recommends for ``query``."""
        return self.estimate(query).recommended_engine

    # ------------------------------------------------------------------
    # Per-engine models
    # ------------------------------------------------------------------

    def _estimate_simple(self, query: Query) -> float:
        stats = self.statistics
        evaluations = 0.0
        current = 1.0  # virtual document root
        for index, step in enumerate(query.steps):
            if step.is_parent:
                continue
            if step.axis is Axis.CHILD:
                candidates = 1.0 if index == 0 else current * max(stats.average_fanout, 1.0)
            else:
                # Descendant step: all nodes below the current set.  Approximate
                # by the share of the document dominated by the current nodes.
                candidates = max(current, 1.0) * self._average_subtree_size()
                candidates = min(candidates, float(stats.node_count))
            if step.is_wildcard:
                current = candidates
                continue
            evaluations += candidates
            current = float(self._selectivity(step, candidates))
            if current == 0.0:
                break
        return evaluations

    def _estimate_advanced(self, query: Query) -> float:
        stats = self.statistics
        evaluations = 0.0
        remaining_tags = len(query.name_tests(0))
        current = 1.0
        evaluations += remaining_tags  # root look-ahead
        for index, step in enumerate(query.steps[:-1]):
            next_step = query.steps[index + 1]
            remaining = max(len(query.name_tests(index + 1)), 1)
            if next_step.axis is Axis.CHILD or next_step.is_parent:
                candidates = current * max(stats.average_fanout, 1.0)
            else:
                # Pruned walk: proportional to the true number of nodes that
                # contain the target tag under the current set, not to the
                # whole subtree.
                target = next_step.test if next_step.is_name_test else None
                containing = stats.containing(target) if target else stats.node_count
                candidates = min(float(containing) + current * max(stats.average_fanout, 1.0) * 0.5,
                                 float(stats.node_count))
            evaluations += candidates * remaining
            current = float(self._selectivity(next_step, candidates))
            if current == 0.0:
                break
        return evaluations

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _average_subtree_size(self) -> float:
        stats = self.statistics
        if stats.height <= 1:
            return 1.0
        # A node halfway down the tree dominates roughly node_count / 2^depth
        # nodes; use a middle-of-the-tree approximation.
        return max(stats.node_count / max(2.0, stats.average_fanout + 1.0), 1.0)

    def _selectivity(self, step, candidates: float) -> float:
        stats = self.statistics
        if step.is_wildcard or step.is_parent:
            return candidates
        count = stats.count_of(step.test)
        if step.axis is Axis.DESCENDANT:
            count = stats.containing(step.test)
        return min(float(count), candidates)


def recommend_engine(
    query: Union[str, Query], document: Optional[XMLDocument] = None, statistics: Optional[DocumentStatistics] = None
) -> str:
    """One-shot convenience: recommend an engine for ``query``.

    Either a plaintext document (statistics are computed on the fly) or
    pre-computed :class:`DocumentStatistics` must be supplied.
    """
    if statistics is None:
        if document is None:
            raise ValueError("recommend_engine needs a document or pre-computed statistics")
        statistics = DocumentStatistics.from_document(document)
    return EngineCostModel(statistics).choose_engine(query)
