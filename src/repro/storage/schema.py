"""Table schemas: typed columns and row validation."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.storage.errors import SchemaError


class ColumnType(enum.Enum):
    """Supported column types.

    The node table needs integers (``pre``, ``post``, ``parent``), a blob for
    the packed polynomial coefficients, and text for auxiliary tables used by
    examples.  ``INT_LIST`` stores a tuple of integers natively — convenient
    for the coefficient vector while still letting the size accounting charge
    it like the packed byte string MySQL would store.
    """

    INTEGER = "integer"
    TEXT = "text"
    BLOB = "blob"
    INT_LIST = "int_list"
    FLOAT = "float"


@dataclass(frozen=True)
class Column:
    """One column definition."""

    name: str
    type: ColumnType
    nullable: bool = False

    def validate(self, value: Any) -> Any:
        """Check (and lightly coerce) one value against this column."""
        if value is None:
            if self.nullable:
                return None
            raise SchemaError("column %r is not nullable" % self.name)
        if self.type is ColumnType.INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError("column %r expects an integer, got %r" % (self.name, value))
            return value
        if self.type is ColumnType.TEXT:
            if not isinstance(value, str):
                raise SchemaError("column %r expects text, got %r" % (self.name, value))
            return value
        if self.type is ColumnType.BLOB:
            if not isinstance(value, (bytes, bytearray)):
                raise SchemaError("column %r expects bytes, got %r" % (self.name, value))
            return bytes(value)
        if self.type is ColumnType.INT_LIST:
            if not isinstance(value, (list, tuple)):
                raise SchemaError("column %r expects a sequence of ints, got %r" % (self.name, value))
            coerced = tuple(value)
            if not all(isinstance(item, int) and not isinstance(item, bool) for item in coerced):
                raise SchemaError("column %r expects only integers, got %r" % (self.name, value))
            return coerced
        if self.type is ColumnType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError("column %r expects a number, got %r" % (self.name, value))
            return float(value)
        raise SchemaError("unsupported column type %r" % self.type)  # pragma: no cover

    def estimated_bytes(self, value: Any, int_width: int = 4, element_bytes: int = 1) -> int:
        """Approximate storage size of one value.

        ``element_bytes`` is the per-element width used for ``INT_LIST``
        columns (the coefficient vector is charged ``ceil(log2 q)/8`` bytes
        per coefficient by the caller, matching the paper's accounting).
        """
        if value is None:
            return 0
        if self.type is ColumnType.INTEGER:
            return int_width
        if self.type is ColumnType.TEXT:
            return len(value.encode("utf-8"))
        if self.type is ColumnType.BLOB:
            return len(value)
        if self.type is ColumnType.INT_LIST:
            return len(value) * element_bytes
        if self.type is ColumnType.FLOAT:
            return 8
        return 0  # pragma: no cover


class TableSchema:
    """An ordered collection of columns with validation helpers."""

    def __init__(self, name: str, columns: Sequence[Column]):
        if not name:
            raise SchemaError("table name must not be empty")
        if not columns:
            raise SchemaError("table %r needs at least one column" % name)
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate column names in table %r: %r" % (name, names))
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._by_name: Dict[str, Column] = {column.name: column for column in columns}

    def column_names(self) -> List[str]:
        """Column names in declaration order."""
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        """Look up a column by name (raises :class:`SchemaError` if missing)."""
        column = self._by_name.get(name)
        if column is None:
            raise SchemaError("table %r has no column %r" % (self.name, name))
        return column

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def validate_row(self, row: Dict[str, Any]) -> Dict[str, Any]:
        """Validate a row dict: unknown keys rejected, missing keys must be nullable.

        A nullable column *absent* from the input stays absent from the
        validated row (rather than materialising as ``None``), so optional
        columns added to a schema later — the node table's ``version`` —
        never change the serialised shape of rows that predate them.
        """
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise SchemaError("unknown columns for table %r: %r" % (self.name, sorted(unknown)))
        validated: Dict[str, Any] = {}
        for column in self.columns:
            if column.name not in row:
                if not column.nullable:
                    raise SchemaError("column %r is not nullable" % column.name)
                continue
            validated[column.name] = column.validate(row[column.name])
        return validated

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "TableSchema(%s: %s)" % (self.name, ", ".join(self.column_names()))
