"""Heap tables with secondary B+-tree indexes."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.storage.btree import BPlusTree
from repro.storage.errors import DuplicateKeyError, SchemaError, UnknownIndexError
from repro.storage.schema import ColumnType, TableSchema


class Table:
    """A heap of rows with optional unique and non-unique B+-tree indexes.

    Rows are dictionaries validated against the table's
    :class:`~repro.storage.schema.TableSchema`; each row receives a stable
    integer row id.  The workload is bulk-load-then-serve — like the
    prototype's encode step followed by the query engines — with a thin
    mutation surface on top for the write path: :meth:`update_by` and
    :meth:`delete_by` maintain every index, deletions leaving a tombstone
    in the heap so existing row ids stay stable.
    """

    def __init__(self, schema: TableSchema, btree_order: int = 64):
        self.schema = schema
        #: heap slots; a ``None`` slot is a tombstone left by delete_by
        self._rows: List[Optional[Dict[str, Any]]] = []
        self._tombstones = 0
        self._indexes: Dict[str, BPlusTree] = {}
        self._unique: Dict[str, bool] = {}
        self._btree_order = btree_order

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create_index(self, column: str, unique: bool = False) -> None:
        """Create a B+-tree index on ``column`` (backfills existing rows)."""
        self.schema.column(column)  # raises SchemaError for unknown columns
        if column in self._indexes:
            return
        tree = BPlusTree(order=self._btree_order)
        for row_id, row in enumerate(self._rows):
            if row is None:
                continue
            key = row[column]
            if unique and tree.contains(key):
                raise DuplicateKeyError(
                    "cannot build unique index on %s.%s: duplicate key %r"
                    % (self.schema.name, column, key)
                )
            tree.insert(key, row_id)
        self._indexes[column] = tree
        self._unique[column] = unique

    def has_index(self, column: str) -> bool:
        """Whether an index exists on ``column``."""
        return column in self._indexes

    def index(self, column: str) -> BPlusTree:
        """The index on ``column`` (raises when missing)."""
        tree = self._indexes.get(column)
        if tree is None:
            raise UnknownIndexError(
                "table %s has no index on column %r" % (self.schema.name, column)
            )
        return tree

    def indexed_columns(self) -> List[str]:
        """Names of indexed columns."""
        return sorted(self._indexes)

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def insert(self, row: Dict[str, Any]) -> int:
        """Insert one row, maintaining all indexes; returns the row id."""
        validated = self.schema.validate_row(row)
        row_id = len(self._rows)
        for column, tree in self._indexes.items():
            key = validated[column]
            if self._unique.get(column) and tree.contains(key):
                raise DuplicateKeyError(
                    "duplicate key %r for unique index %s.%s" % (key, self.schema.name, column)
                )
        self._rows.append(validated)
        for column, tree in self._indexes.items():
            tree.insert(validated[column], row_id)
        return row_id

    def insert_many(self, rows: Iterator[Dict[str, Any]], validate: bool = True) -> int:
        """Insert many rows; returns how many were inserted.

        ``validate=False`` is the bulk-load fast path for callers whose rows
        are schema-shaped by construction (the encoder's share generation):
        when the table has no indexes yet the rows are adopted wholesale
        with one list extend.  With indexes present the per-row path runs
        regardless, so index maintenance and uniqueness checks never weaken.
        """
        if not validate and not self._indexes:
            rows = list(rows)
            self._rows.extend(rows)
            return len(rows)
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def _ids_for(self, column: str, value: Any) -> List[int]:
        """Row ids matching a point predicate (indexed or scanned)."""
        tree = self._indexes.get(column)
        if tree is not None:
            return list(tree.search(value))
        self.schema.column(column)
        return [
            row_id
            for row_id, row in enumerate(self._rows)
            if row is not None and row[column] == value
        ]

    def update_by(self, column: str, value: Any, changes: Dict[str, Any]) -> int:
        """Update every row with ``row[column] == value``; returns the count.

        ``changes`` maps column names to new values (validated against the
        schema).  Every index is maintained: a changed indexed key leaves
        its old slot and enters the new one, with uniqueness re-checked.
        """
        updated = 0
        for row_id in self._ids_for(column, value):
            row = self._rows[row_id]
            assert row is not None  # ids came from a live lookup
            validated = {
                name: self.schema.column(name).validate(new_value)
                for name, new_value in changes.items()
            }
            for name, new_value in validated.items():
                tree = self._indexes.get(name)
                old_value = row.get(name)
                if tree is None or old_value == new_value:
                    continue
                if self._unique.get(name) and tree.contains(new_value):
                    raise DuplicateKeyError(
                        "duplicate key %r for unique index %s.%s"
                        % (new_value, self.schema.name, name)
                    )
                tree.remove(old_value, row_id)
                tree.insert(new_value, row_id)
            row.update(validated)
            updated += 1
        return updated

    def delete_by(self, column: str, value: Any) -> int:
        """Delete every row with ``row[column] == value``; returns the count.

        The heap slot becomes a tombstone (row ids of surviving rows are
        untouched); every index drops its entry for the dead row.
        """
        deleted = 0
        for row_id in self._ids_for(column, value):
            row = self._rows[row_id]
            if row is None:
                continue
            for name, tree in self._indexes.items():
                tree.remove(row.get(name), row_id)
            self._rows[row_id] = None
            self._tombstones += 1
            deleted += 1
        return deleted

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------

    def row(self, row_id: int) -> Dict[str, Any]:
        """Fetch one row by its row id (deleted rows raise)."""
        row = self._rows[row_id]
        if row is None:
            raise LookupError("row %d of table %s was deleted" % (row_id, self.schema.name))
        return row

    def scan(self, predicate: Optional[Callable[[Dict[str, Any]], bool]] = None) -> Iterator[Dict[str, Any]]:
        """Full table scan, optionally filtered by ``predicate``."""
        for row in self._rows:
            if row is None:
                continue
            if predicate is None or predicate(row):
                yield row

    def lookup(self, column: str, value: Any) -> List[Dict[str, Any]]:
        """Point lookup: all rows with ``row[column] == value``.

        Uses the index when one exists, otherwise falls back to a scan (so
        the index-ablation benchmark can quantify what the B-trees buy).
        """
        tree = self._indexes.get(column)
        if tree is not None:
            return [self._rows[row_id] for row_id in tree.search(value)]
        self.schema.column(column)
        return [row for row in self._rows if row is not None and row[column] == value]

    def range_lookup(
        self,
        column: str,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Dict[str, Any]]:
        """Range scan on ``column`` (indexed when possible), in key order."""
        tree = self._indexes.get(column)
        if tree is not None:
            for _, row_id in tree.range(low, high, include_low, include_high):
                yield self._rows[row_id]
            return
        self.schema.column(column)
        matching = []
        for row in self._rows:
            if row is None:
                continue
            value = row[column]
            if low is not None and (value < low or (value == low and not include_low)):
                continue
            if high is not None and (value > high or (value == high and not include_high)):
                continue
            matching.append(row)
        matching.sort(key=lambda row: row[column])
        for row in matching:
            yield row

    def __len__(self) -> int:
        return len(self._rows) - self._tombstones

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return (row for row in self._rows if row is not None)

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def data_bytes(self, int_width: int = 4, element_bytes: int = 1) -> int:
        """Approximate payload size of all rows.

        ``element_bytes`` is applied to ``INT_LIST`` columns (the coefficient
        vectors); integer columns cost ``int_width`` bytes each, mirroring how
        the MySQL schema stored pre/post/parent as 32-bit integers.
        """
        total = 0
        for row in self._rows:
            if row is None:
                continue
            for column in self.schema.columns:
                total += column.estimated_bytes(
                    row.get(column.name), int_width=int_width, element_bytes=element_bytes
                )
        return total

    def column_bytes(self, column_name: str, int_width: int = 4, element_bytes: int = 1) -> int:
        """Approximate payload size contributed by a single column."""
        column = self.schema.column(column_name)
        return sum(
            column.estimated_bytes(row.get(column_name), int_width=int_width, element_bytes=element_bytes)
            for row in self._rows
            if row is not None
        )

    def index_bytes(self, key_bytes: int = 8, pointer_bytes: int = 8) -> int:
        """Approximate total size of all secondary indexes."""
        return sum(
            tree.estimated_bytes(key_bytes=key_bytes, pointer_bytes=pointer_bytes)
            for tree in self._indexes.values()
        )

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "Table(%s, rows=%d, indexes=%s)" % (
            self.schema.name,
            len(self._rows),
            self.indexed_columns(),
        )
