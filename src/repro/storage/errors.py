"""Exception hierarchy of the storage substrate."""


class StorageError(Exception):
    """Base class for storage-layer failures."""


class SchemaError(StorageError):
    """A row or column definition violates the table schema."""


class DuplicateKeyError(StorageError):
    """An insert violated a unique-key constraint."""


class UnknownTableError(StorageError):
    """A referenced table does not exist in the database catalog."""


class UnknownIndexError(StorageError):
    """A referenced index does not exist on the table."""


class WriteConflictError(StorageError):
    """A write could not be applied consistently.

    Raised server-side when a delta's preconditions fail (an unknown
    transaction id, a prepare against rows another in-flight transaction
    already holds, or an op targeting a row that no longer exists) and
    client-side when the two-phase apply cannot reach every live server.
    Travels the wire typed (see ``repro.rmi.socket``).
    """


class StaleVersionError(WriteConflictError):
    """A row version precondition failed: the server holds newer (or older)
    rows than the write or read expected.  Carries enough context for
    read-repair to know *which* rows diverged."""

    def __init__(self, message: str, stale_pres=(), expected=None, found=None):
        super().__init__(message)
        #: pre numbers whose version check failed
        self.stale_pres = tuple(stale_pres)
        #: version the caller expected (per-pre mapping or single int)
        self.expected = expected
        #: version actually found
        self.found = found
