"""Exception hierarchy of the storage substrate."""


class StorageError(Exception):
    """Base class for storage-layer failures."""


class SchemaError(StorageError):
    """A row or column definition violates the table schema."""


class DuplicateKeyError(StorageError):
    """An insert violated a unique-key constraint."""


class UnknownTableError(StorageError):
    """A referenced table does not exist in the database catalog."""


class UnknownIndexError(StorageError):
    """A referenced index does not exist on the table."""
