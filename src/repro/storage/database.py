"""Database catalog: named tables plus optional JSON persistence."""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.storage.errors import StorageError, UnknownTableError
from repro.storage.schema import Column, ColumnType, TableSchema
from repro.storage.table import Table


class Database:
    """A named collection of tables — the server-side "MySQL" of the prototype.

    The database is deliberately unencrypted and considered publicly readable,
    exactly like the paper's server store: all confidentiality comes from the
    secret-shared polynomial column, not from the storage layer.
    """

    def __init__(self, name: str = "encrypted_xml"):
        self.name = name
        self._tables: Dict[str, Table] = {}

    # ------------------------------------------------------------------
    # Catalog operations
    # ------------------------------------------------------------------

    def create_table(self, schema: TableSchema, btree_order: int = 64) -> Table:
        """Create a table from a schema (error if the name is taken)."""
        if schema.name in self._tables:
            raise StorageError("table %r already exists" % schema.name)
        table = Table(schema, btree_order=btree_order)
        self._tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table (error if missing)."""
        if name not in self._tables:
            raise UnknownTableError("no such table: %r" % name)
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Fetch a table by name."""
        table = self._tables.get(name)
        if table is None:
            raise UnknownTableError("no such table: %r" % name)
        return table

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    def table_names(self) -> List[str]:
        """All table names in creation order."""
        return list(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    # ------------------------------------------------------------------
    # Persistence (JSON) — optional convenience for examples
    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Serialise the whole database to a JSON file."""
        payload: Dict[str, Any] = {"name": self.name, "tables": {}}
        for name, table in self._tables.items():
            payload["tables"][name] = {
                "columns": [
                    {"name": c.name, "type": c.type.value, "nullable": c.nullable}
                    for c in table.schema.columns
                ],
                "indexes": [
                    {"column": column, "unique": table._unique.get(column, False)}
                    for column in table.indexed_columns()
                ],
                "rows": [_encode_row(row) for row in table],
            }
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

    @classmethod
    def load(cls, path: str) -> "Database":
        """Load a database previously written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        database = cls(payload.get("name", "encrypted_xml"))
        for table_name, table_payload in payload.get("tables", {}).items():
            columns = [
                Column(
                    name=column["name"],
                    type=ColumnType(column["type"]),
                    nullable=column.get("nullable", False),
                )
                for column in table_payload["columns"]
            ]
            table = database.create_table(TableSchema(table_name, columns))
            for index in table_payload.get("indexes", []):
                table.create_index(index["column"], unique=index.get("unique", False))
            for row in table_payload.get("rows", []):
                table.insert(_decode_row(row, columns))
        return database

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def total_data_bytes(self, element_bytes: int = 1) -> int:
        """Approximate payload bytes across all tables."""
        return sum(table.data_bytes(element_bytes=element_bytes) for table in self)

    def total_index_bytes(self) -> int:
        """Approximate index bytes across all tables."""
        return sum(table.index_bytes() for table in self)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "Database(%s, tables=%s)" % (self.name, self.table_names())


def _encode_row(row: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-encode one row (bytes → hex, tuples → lists)."""
    encoded = {}
    for key, value in row.items():
        if isinstance(value, bytes):
            encoded[key] = {"__bytes__": value.hex()}
        elif isinstance(value, tuple):
            encoded[key] = list(value)
        else:
            encoded[key] = value
    return encoded


def _decode_row(row: Dict[str, Any], columns: Sequence[Column]) -> Dict[str, Any]:
    """Inverse of :func:`_encode_row`."""
    types = {column.name: column.type for column in columns}
    decoded: Dict[str, Any] = {}
    for key, value in row.items():
        if isinstance(value, dict) and "__bytes__" in value:
            decoded[key] = bytes.fromhex(value["__bytes__"])
        elif types.get(key) is ColumnType.INT_LIST and isinstance(value, list):
            decoded[key] = tuple(value)
        else:
            decoded[key] = value
    return decoded
