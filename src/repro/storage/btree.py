"""A B+-tree index supporting point and range lookups with duplicate keys.

This is the index structure behind the ``pre``, ``post`` and ``parent``
columns of the node table.  Keys are integers (or any totally ordered,
hashable values); values are opaque row identifiers.  Duplicate keys are
allowed (many nodes share the same ``parent``), each key slot holding a list
of row ids in insertion order.

The implementation is a textbook B+-tree: internal nodes hold separator keys
and child pointers, leaves hold (key, [row ids]) pairs and are linked left to
right so range scans stream without re-descending.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple


class _LeafNode:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.values: List[List[Any]] = []
        self.next: Optional["_LeafNode"] = None


class _InternalNode:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.children: List[Any] = []


class BPlusTree:
    """B+-tree keyed index with duplicate support.

    ``order`` is the maximum number of children of an internal node; leaves
    hold at most ``order - 1`` distinct keys.  The default (64) keeps the tree
    shallow for the node counts the experiments use while still exercising
    real splits in the unit tests (which use tiny orders).
    """

    def __init__(self, order: int = 64):
        if order < 3:
            raise ValueError("B+-tree order must be at least 3, got %d" % order)
        self.order = order
        self._root: Any = _LeafNode()
        self._size = 0
        self._key_count = 0
        self._height = 1

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of stored (key, value) pairs (duplicates counted)."""
        return self._size

    @property
    def distinct_keys(self) -> int:
        """Number of distinct keys currently stored."""
        return self._key_count

    @property
    def height(self) -> int:
        """Height of the tree (a single leaf has height 1)."""
        return self._height

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert one (key, value) pair; duplicate keys accumulate values."""
        result = self._insert_into(self._root, key, value)
        if result is not None:
            separator, right = result
            new_root = _InternalNode()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
        self._size += 1

    def _insert_into(self, node: Any, key: Any, value: Any):
        if isinstance(node, _LeafNode):
            index = _lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index].append(value)
                return None
            node.keys.insert(index, key)
            node.values.insert(index, [value])
            self._key_count += 1
            if len(node.keys) >= self.order:
                return self._split_leaf(node)
            return None
        # Internal node: descend into the proper child.
        index = _upper_bound(node.keys, key)
        result = self._insert_into(node.children[index], key, value)
        if result is None:
            return None
        separator, right = result
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.children) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _LeafNode) -> Tuple[Any, _LeafNode]:
        middle = len(node.keys) // 2
        right = _LeafNode()
        right.keys = node.keys[middle:]
        right.values = node.values[middle:]
        node.keys = node.keys[:middle]
        node.values = node.values[:middle]
        right.next = node.next
        node.next = right
        return right.keys[0], right

    def _split_internal(self, node: _InternalNode) -> Tuple[Any, _InternalNode]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _InternalNode()
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return separator, right

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def remove(self, key: Any, value: Any) -> bool:
        """Remove one (key, value) pair; returns whether it was present.

        Deletion is *lazy*: the value leaves its posting list (and an
        emptied key leaves its leaf), but leaves are never merged or
        rebalanced.  Search and range iteration remain correct — an
        under-full leaf is just a shorter stop on the linked scan — and the
        write path's churn is tiny relative to the bulk-loaded tree, so the
        height bound the bulk load established effectively persists.
        """
        leaf = self._find_leaf(key)
        index = _lower_bound(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        values = leaf.values[index]
        try:
            values.remove(value)
        except ValueError:
            return False
        self._size -= 1
        if not values:
            del leaf.keys[index]
            del leaf.values[index]
            self._key_count -= 1
        return True

    def remove_key(self, key: Any) -> int:
        """Remove every value stored under ``key``; returns how many."""
        leaf = self._find_leaf(key)
        index = _lower_bound(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return 0
        removed = len(leaf.values[index])
        del leaf.keys[index]
        del leaf.values[index]
        self._size -= removed
        self._key_count -= 1
        return removed

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _LeafNode:
        node = self._root
        while isinstance(node, _InternalNode):
            index = _upper_bound(node.keys, key)
            node = node.children[index]
        return node

    def search(self, key: Any) -> List[Any]:
        """All values stored under ``key`` (empty list when absent)."""
        leaf = self._find_leaf(key)
        index = _lower_bound(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def contains(self, key: Any) -> bool:
        """Whether any value is stored under ``key``."""
        leaf = self._find_leaf(key)
        index = _lower_bound(leaf.keys, key)
        return index < len(leaf.keys) and leaf.keys[index] == key

    def range(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Tuple[Any, Any]]:
        """Iterate (key, value) pairs with ``low <= key <= high`` in key order.

        ``None`` bounds are open-ended.  Inclusive flags control whether the
        endpoints themselves are produced.
        """
        if low is None:
            leaf = self._leftmost_leaf()
            index = 0
        else:
            leaf = self._find_leaf(low)
            index = _lower_bound(leaf.keys, low)
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if low is not None:
                    if key < low or (key == low and not include_low):
                        index += 1
                        continue
                if high is not None:
                    if key > high or (key == high and not include_high):
                        return
                for value in leaf.values[index]:
                    yield key, value
                index += 1
            leaf = leaf.next
            index = 0

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All (key, value) pairs in key order."""
        return self.range()

    def keys(self) -> Iterator[Any]:
        """All distinct keys in order."""
        leaf = self._leftmost_leaf()
        while leaf is not None:
            for key in leaf.keys:
                yield key
            leaf = leaf.next

    def _leftmost_leaf(self) -> _LeafNode:
        node = self._root
        while isinstance(node, _InternalNode):
            node = node.children[0]
        return node

    def minimum(self) -> Optional[Any]:
        """Smallest key, or ``None`` when empty."""
        leaf = self._leftmost_leaf()
        return leaf.keys[0] if leaf.keys else None

    def maximum(self) -> Optional[Any]:
        """Largest key, or ``None`` when empty."""
        node = self._root
        while isinstance(node, _InternalNode):
            node = node.children[-1]
        return node.keys[-1] if node.keys else None

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def node_count(self) -> int:
        """Total number of tree nodes (internal + leaf)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if isinstance(node, _InternalNode):
                stack.extend(node.children)
        return count

    def estimated_bytes(self, key_bytes: int = 8, pointer_bytes: int = 8) -> int:
        """Rough on-disk size estimate of the index.

        Every key costs ``key_bytes``, every child/row pointer costs
        ``pointer_bytes``; node headers are ignored.  This feeds the "index
        size" series of the figure-4 reproduction.
        """
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _InternalNode):
                total += len(node.keys) * key_bytes + len(node.children) * pointer_bytes
                stack.extend(node.children)
            else:
                total += len(node.keys) * key_bytes
                total += sum(len(values) for values in node.values) * pointer_bytes
        return total


def _lower_bound(keys: List[Any], key: Any) -> int:
    """First index whose key is >= ``key`` (binary search)."""
    low, high = 0, len(keys)
    while low < high:
        mid = (low + high) // 2
        if keys[mid] < key:
            low = mid + 1
        else:
            high = mid
    return low


def _upper_bound(keys: List[Any], key: Any) -> int:
    """First index whose key is > ``key`` (binary search)."""
    low, high = 0, len(keys)
    while low < high:
        mid = (low + high) // 2
        if keys[mid] <= key:
            low = mid + 1
        else:
            high = mid
    return low
