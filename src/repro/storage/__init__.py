"""Relational storage substrate (the prototype's MySQL replacement).

The prototype stores one row per XML node in a MySQL table::

    (pre, post, parent, polynomial-coefficients)

with B-tree indices on ``pre``, ``post`` and ``parent`` "in order to speed up
the search process" (section 5.1).  This package is a from-scratch,
pure-Python stand-in providing the same capabilities:

* :class:`~repro.storage.schema.TableSchema` / :class:`~repro.storage.schema.Column`
  — column definitions and row validation,
* :class:`~repro.storage.btree.BPlusTree` — an order-configurable B+-tree with
  point and range lookups (duplicate keys supported),
* :class:`~repro.storage.table.Table` — a heap table with secondary B+-tree
  indexes, scans, and size accounting used by the encoding experiment,
* :class:`~repro.storage.database.Database` — a named catalog of tables with
  optional on-disk persistence.

The query layer only ever touches indexed access paths (point lookup on
``parent``, point lookup on ``pre``, range scan on ``pre``/``post``), which is
exactly what the MySQL schema gave the original prototype.
"""

from repro.storage.btree import BPlusTree
from repro.storage.database import Database
from repro.storage.errors import StorageError
from repro.storage.schema import Column, ColumnType, TableSchema
from repro.storage.table import Table

__all__ = [
    "BPlusTree",
    "Database",
    "StorageError",
    "Column",
    "ColumnType",
    "TableSchema",
    "Table",
]
