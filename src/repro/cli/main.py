"""Argument parsing and command dispatch for the ``repro`` CLI."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cli import commands


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level parser with one subcommand per tool."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Encrypted XML database using secret sharing — reproduction of "
            "Brinkman et al., SDM@VLDB 2005."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # ------------------------------------------------------------------
    # genxmark
    # ------------------------------------------------------------------
    genxmark = subparsers.add_parser(
        "genxmark", help="generate a synthetic XMark-style auction document"
    )
    genxmark.add_argument("--scale", type=float, default=0.05, help="document scale (~MB of XML)")
    genxmark.add_argument("--seed", type=int, default=20050905, help="generator seed")
    genxmark.add_argument("--output", required=True, help="path of the XML file to write")
    genxmark.set_defaults(handler=commands.cmd_genxmark)

    # ------------------------------------------------------------------
    # makemap
    # ------------------------------------------------------------------
    makemap = subparsers.add_parser(
        "makemap", help="create a tag map file (name = field value per line)"
    )
    makemap.add_argument(
        "--dtd",
        choices=["xmark"],
        default=None,
        help="derive the tag alphabet from a built-in DTD",
    )
    makemap.add_argument("--xml", default=None, help="derive the tag alphabet from an XML document")
    makemap.add_argument("--p", type=int, default=None, help="field characteristic (default: smallest safe prime)")
    makemap.add_argument("--e", type=int, default=1, help="field extension degree")
    makemap.add_argument("--shuffle-seed", type=int, default=None, help="randomise the value assignment")
    makemap.add_argument("--trie", action="store_true", help="include the trie character alphabet")
    makemap.add_argument("--output", required=True, help="path of the map file to write")
    makemap.set_defaults(handler=commands.cmd_makemap)

    # ------------------------------------------------------------------
    # makeseed
    # ------------------------------------------------------------------
    makeseed = subparsers.add_parser("makeseed", help="generate a fresh secret seed file")
    makeseed.add_argument("--bytes", type=int, default=32, dest="num_bytes", help="seed length in bytes")
    makeseed.add_argument("--output", required=True, help="path of the seed file to write")
    makeseed.set_defaults(handler=commands.cmd_makeseed)

    # ------------------------------------------------------------------
    # encode
    # ------------------------------------------------------------------
    encode = subparsers.add_parser(
        "encode", help="encode an XML document into a secret-shared server database"
    )
    encode.add_argument("--map", required=True, dest="map_path", help="tag map file")
    encode.add_argument("--seed", required=True, dest="seed_path", help="seed file")
    encode.add_argument("--xml", required=True, dest="xml_path", help="plaintext XML document")
    encode.add_argument("--p", type=int, default=None, help="field characteristic of the map")
    encode.add_argument("--e", type=int, default=1, help="field extension degree")
    encode.add_argument("--trie", action="store_true", help="apply the trie transform to text content")
    encode.add_argument("--output", required=True, help="path of the server database (JSON)")
    encode.set_defaults(handler=commands.cmd_encode)

    # ------------------------------------------------------------------
    # query
    # ------------------------------------------------------------------
    query = subparsers.add_parser("query", help="run an XPath query against an encoded database")
    query.add_argument("xpath", help="the query, e.g. /site/regions/europe/item")
    query.add_argument("--db", required=True, dest="db_path", help="server database (JSON)")
    query.add_argument("--map", required=True, dest="map_path", help="tag map file")
    query.add_argument("--seed", required=True, dest="seed_path", help="seed file")
    query.add_argument("--p", type=int, default=None, help="field characteristic of the map")
    query.add_argument("--e", type=int, default=1, help="field extension degree")
    query.add_argument("--engine", choices=["simple", "advanced"], default="advanced")
    query.add_argument("--strict", action="store_true", help="use the equality test (exact results)")
    query.add_argument("--trie", action="store_true", help="rewrite contains(text(), …) predicates for the trie")
    query.set_defaults(handler=commands.cmd_query)

    # ------------------------------------------------------------------
    # server
    # ------------------------------------------------------------------
    server = subparsers.add_parser(
        "server",
        help="serve an encoded share database over a TCP or Unix socket "
        "(the repro-server daemon behind SocketCluster deployments)",
    )
    server.add_argument("--db", required=True, dest="db_path", help="server database (JSON)")
    server.add_argument("--p", type=int, required=True, help="field characteristic of the encoding")
    server.add_argument("--e", type=int, default=1, help="field extension degree")
    server.add_argument("--host", default="127.0.0.1", help="TCP address to bind")
    server.add_argument(
        "--port", type=int, default=0, help="TCP port to bind (0 picks a free port)"
    )
    server.add_argument(
        "--unix", default=None, dest="unix_path", help="serve on a Unix socket path instead of TCP"
    )
    server.add_argument(
        "--name", default=None, help="server name announced by the __ping__ handshake"
    )
    server.add_argument(
        "--max-frame-bytes",
        type=int,
        default=None,
        dest="max_frame_bytes",
        help="per-frame payload ceiling (default 64 MiB; must match the client's)",
    )
    server.add_argument(
        "--parent-watch",
        action="store_true",
        dest="parent_watch",
        help="shut down when stdin reaches EOF (the spawning parent died)",
    )
    server.add_argument(
        "--delay",
        type=float,
        default=0.0,
        help="injected per-request delay in seconds (latency fault injection)",
    )
    server.add_argument(
        "--chaos",
        action="store_true",
        help="export the corrupt_share fault injector (chaos testing only)",
    )
    server.set_defaults(handler=commands.cmd_server)

    # ------------------------------------------------------------------
    # gateway
    # ------------------------------------------------------------------
    gateway = subparsers.add_parser(
        "gateway",
        help="serve many concurrent client sessions over one share-server "
        "fleet (the repro-gateway daemon)",
    )
    gateway.add_argument(
        "--server",
        action="append",
        required=True,
        dest="servers",
        metavar="HOST:PORT",
        help="address of one share server (repeat once per server, in server order)",
    )
    gateway.add_argument("--seed", required=True, dest="seed_path", help="seed file")
    gateway.add_argument("--p", type=int, required=True, help="field characteristic of the encoding")
    gateway.add_argument("--e", type=int, default=1, help="field extension degree")
    gateway.add_argument(
        "--sharing", choices=["additive", "shamir"], default="additive",
        help="sharing scheme deployed on the fleet",
    )
    gateway.add_argument(
        "--threshold", type=int, default=None,
        help="reconstruction threshold k of a (k, n) Shamir deployment",
    )
    gateway.add_argument(
        "--read-quorum", type=int, default=None, dest="read_quorum",
        help="servers contacted per share read (default: all)",
    )
    gateway.add_argument(
        "--no-verify", action="store_false", dest="verify_shares",
        help="skip cross-checking share reads beyond the quorum",
    )
    gateway.add_argument(
        "--hedge", type=float, default=0.0,
        help="RTT quantile in (0, 1) that triggers hedged straggler co-issue "
        "(0 disables hedging)",
    )
    gateway.add_argument(
        "--cache-bytes", type=int, default=0, dest="cache_bytes",
        help="shared result-cache byte bound over the read surface "
        "(0 disables caching)",
    )
    gateway.add_argument(
        "--fair", action="store_true",
        help="weighted fair queueing of upstream-bound work across sessions",
    )
    gateway.add_argument(
        "--fair-cap", type=int, default=8, dest="fair_cap",
        help="per-session in-flight upstream dispatch cap under --fair",
    )
    gateway.add_argument("--host", default="127.0.0.1", help="TCP address to bind")
    gateway.add_argument(
        "--port", type=int, default=0, help="TCP port to bind (0 picks a free port)"
    )
    gateway.add_argument(
        "--unix", default=None, dest="unix_path", help="serve on a Unix socket path instead of TCP"
    )
    gateway.add_argument(
        "--name", default=None, help="gateway name announced by the __ping__ handshake"
    )
    gateway.add_argument(
        "--max-frame-bytes",
        type=int,
        default=None,
        dest="max_frame_bytes",
        help="per-frame payload ceiling (default 64 MiB; must match the client's)",
    )
    gateway.add_argument(
        "--parent-watch",
        action="store_true",
        dest="parent_watch",
        help="shut down when stdin reaches EOF (the spawning parent died)",
    )
    gateway.set_defaults(handler=commands.cmd_gateway)

    # ------------------------------------------------------------------
    # experiments
    # ------------------------------------------------------------------
    experiments = subparsers.add_parser(
        "experiments", help="re-run the paper's evaluation figures and print their tables"
    )
    experiments.add_argument(
        "--figure",
        choices=["4", "5", "6", "7", "trie", "all"],
        default="all",
        help="which figure to reproduce",
    )
    experiments.add_argument("--scale", type=float, default=0.02, help="document scale (~MB of XML)")
    experiments.set_defaults(handler=commands.cmd_experiments)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except commands.CommandError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2


def server_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-server`` console script.

    Equivalent to ``python -m repro.cli server …`` — a shard daemon serving
    one share database over a socket (see the ``server`` subcommand).
    """
    if argv is None:
        argv = sys.argv[1:]
    return main(["server"] + list(argv))


def gateway_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-gateway`` console script.

    Equivalent to ``python -m repro.cli gateway …`` — a session gateway
    multiplexing many concurrent clients over one share-server fleet (see
    the ``gateway`` subcommand).
    """
    if argv is None:
        argv = sys.argv[1:]
    return main(["gateway"] + list(argv))
