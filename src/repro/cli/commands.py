"""Implementations of the CLI subcommands.

Each ``cmd_*`` function takes the parsed ``argparse`` namespace and returns a
process exit code.  They print human-readable summaries to stdout and raise
:class:`CommandError` for user-facing failures (missing files, malformed
inputs), which the dispatcher turns into exit code 2.
"""

from __future__ import annotations

import argparse
import os

from repro.encode.encoder import Encoder, NODE_TABLE_NAME
from repro.encode.tagmap import TagMap, TagMapError
from repro.engines.advanced import AdvancedQueryEngine
from repro.engines.simple import SimpleQueryEngine
from repro.experiments import (
    render_record,
    run_accuracy_experiment,
    run_encoding_experiment,
    run_query_length_experiment,
    run_strictness_experiment,
    run_trie_compression_experiment,
)
from repro.experiments.workloads import build_database
from repro.filters.client import ClientFilter
from repro.filters.interface import MatchRule
from repro.filters.server import CorruptibleServerFilter, ServerFilter
from repro.gf.factory import field_for_alphabet, make_field
from repro.poly.ring import QuotientRing
from repro.prg.generator import KeyedPRG
from repro.prg.seed import SeedFile
from repro.secretshare.additive import AdditiveSharing
from repro.storage.database import Database
from repro.trie.transform import TrieTransformer
from repro.xmark.generator import generate_document
from repro.xmldoc.dtd import XMARK_DTD
from repro.xmldoc.parser import parse_document, parse_string
from repro.xmldoc.serializer import serialize
from repro.xpath.parser import parse_query
from repro.xpath.rewrite import rewrite_for_trie


class CommandError(Exception):
    """A user-facing CLI failure (bad arguments, missing files, …)."""


def _require_file(path: str, description: str) -> str:
    if not os.path.exists(path):
        raise CommandError("%s not found: %s" % (description, path))
    return path


# ----------------------------------------------------------------------
# genxmark
# ----------------------------------------------------------------------


def cmd_genxmark(args: argparse.Namespace) -> int:
    """Generate a synthetic auction document and write it to disk."""
    if args.scale <= 0:
        raise CommandError("--scale must be positive, got %r" % args.scale)
    document = generate_document(scale=args.scale, seed=args.seed)
    text = serialize(document)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(
        "wrote %s: %d elements, %d bytes (scale %.3f, seed %d)"
        % (args.output, document.element_count(), len(text.encode("utf-8")), args.scale, args.seed)
    )
    return 0


# ----------------------------------------------------------------------
# makemap / makeseed
# ----------------------------------------------------------------------


def cmd_makemap(args: argparse.Namespace) -> int:
    """Create a tag map file from a DTD or a sample document."""
    if args.dtd is None and args.xml is None:
        raise CommandError("makemap needs --dtd or --xml to define the tag alphabet")
    names = []
    if args.dtd == "xmark":
        names.extend(XMARK_DTD.element_names())
    if args.xml is not None:
        document = parse_document(_require_file(args.xml, "XML document"))
        for tag in sorted(document.distinct_tags()):
            if tag not in names:
                names.append(tag)
    if args.trie:
        for tag in TrieTransformer().tag_alphabet():
            if tag not in names:
                names.append(tag)
    field = None
    if args.p is not None:
        field = make_field(args.p, args.e)
    try:
        tag_map = TagMap.from_names(names, field=field, shuffle_seed=args.shuffle_seed)
    except TagMapError as error:
        raise CommandError(str(error)) from error
    tag_map.save(args.output)
    print("wrote %s: %d tags over F_%d" % (args.output, len(tag_map), tag_map.field.order))
    return 0


def cmd_makeseed(args: argparse.Namespace) -> int:
    """Generate a fresh seed file (the encryption key)."""
    try:
        seed = SeedFile.generate(args.num_bytes)
    except ValueError as error:
        raise CommandError(str(error)) from error
    seed.save(args.output)
    print("wrote %s: %d random bytes — keep this file secret" % (args.output, args.num_bytes))
    return 0


# ----------------------------------------------------------------------
# encode
# ----------------------------------------------------------------------


def _load_map(args: argparse.Namespace) -> TagMap:
    try:
        return TagMap.load(_require_file(args.map_path, "map file"), p=args.p, e=args.e)
    except TagMapError as error:
        raise CommandError(str(error)) from error


def _load_seed(args: argparse.Namespace) -> bytes:
    try:
        return SeedFile.load(_require_file(args.seed_path, "seed file")).seed
    except ValueError as error:
        raise CommandError(str(error)) from error


def cmd_encode(args: argparse.Namespace) -> int:
    """Encode a plaintext document into the secret-shared server database."""
    tag_map = _load_map(args)
    seed = _load_seed(args)
    with open(_require_file(args.xml_path, "XML document"), "r", encoding="utf-8") as handle:
        xml_text = handle.read()
    if args.trie:
        document = parse_string(xml_text)
        document = TrieTransformer().transform_document(document)
        xml_text = serialize(document)
    try:
        encoded = Encoder(tag_map, seed).encode_text(xml_text)
    except TagMapError as error:
        raise CommandError(
            "%s — regenerate the map file so it covers every tag of the document" % error
        ) from error
    encoded.database.save(args.output)
    stats = encoded.stats
    print("wrote %s" % args.output)
    print("  nodes           : %d" % stats.node_count)
    print("  input size      : %d bytes" % stats.input_bytes)
    print("  output size     : %d bytes (%.2fx input)" % (stats.output_bytes, stats.expansion_ratio))
    print("  index size      : %d bytes" % stats.index_bytes)
    print("  structure share : %.1f%%" % (stats.structure_fraction * 100.0))
    print("  encode time     : %.3f s" % stats.encoding_seconds)
    return 0


# ----------------------------------------------------------------------
# query
# ----------------------------------------------------------------------


def cmd_query(args: argparse.Namespace) -> int:
    """Run one query against a previously encoded server database."""
    tag_map = _load_map(args)
    seed = _load_seed(args)
    database = Database.load(_require_file(args.db_path, "server database"))
    if NODE_TABLE_NAME not in database:
        raise CommandError("%s does not contain a node table" % args.db_path)

    ring = QuotientRing(tag_map.field)
    server = ServerFilter(database.table(NODE_TABLE_NAME), ring)
    sharing = AdditiveSharing(ring, KeyedPRG(seed, tag_map.field))
    client = ClientFilter(server, sharing, tag_map)
    engine = SimpleQueryEngine(client) if args.engine == "simple" else AdvancedQueryEngine(client)

    parsed = parse_query(args.xpath)
    if args.trie:
        parsed = rewrite_for_trie(parsed)
    rule = MatchRule.from_strict_flag(args.strict)
    result = engine.execute(parsed, rule=rule)

    print("query        : %s" % args.xpath)
    print("engine       : %s   test: %s" % (args.engine, rule.value))
    print("matches      : %d node(s)" % result.result_size)
    if result.matches:
        print("pre numbers  : %s" % ", ".join(str(pre) for pre in result.matches))
    print("evaluations  : %d" % result.evaluations)
    print("equality     : %d" % result.equality_tests)
    print("elapsed      : %.4f s" % result.elapsed_seconds)
    return 0


# ----------------------------------------------------------------------
# server
# ----------------------------------------------------------------------


def cmd_server(args: argparse.Namespace) -> int:
    """Serve one encoded share database over a real socket.

    This is the daemon half of a :class:`~repro.rmi.server.SocketCluster`
    deployment (and of the ``repro-server`` entry point): it loads the node
    table written by ``encode`` / :meth:`Database.save`, rebuilds the ring
    from ``--p``/``--e``, and answers the full ``ServerFilter`` protocol
    over a length-prefixed framed socket until a ``__shutdown__`` request
    (or Ctrl-C).  On startup it prints one READY line announcing the bound
    port and its pid — the handshake a spawning parent waits for.
    """
    import sys as _sys
    import threading as _threading

    from repro.rmi.methods import SERVER_METHODS
    from repro.rmi.server import SocketServer, format_ready_line
    from repro.rmi.socket import DEFAULT_MAX_FRAME_BYTES

    database = Database.load(_require_file(args.db_path, "server database"))
    if NODE_TABLE_NAME not in database:
        raise CommandError("%s does not contain a node table" % args.db_path)
    if args.p is not None and args.p < 2:
        raise CommandError("--p must be a prime >= 2, got %d" % args.p)
    try:
        ring = QuotientRing(make_field(args.p, args.e))
    except Exception as error:
        raise CommandError("cannot build F_{%d^%d}: %s" % (args.p, args.e, error)) from error
    table = database.table(NODE_TABLE_NAME)
    # --chaos exports the share-corruption fault injector; chaos harnesses
    # only — a production fleet must never expose it on the wire.
    chaos = bool(getattr(args, "chaos", False))
    filter_class = CorruptibleServerFilter if chaos else ServerFilter
    server_filter = filter_class(table, ring)
    # A fleet server's wire surface is exactly the declarative spec table
    # (plus the chaos injector when explicitly gated on): an endpoint must
    # be registered in repro.rmi.methods to be remotely callable.
    method_table = SERVER_METHODS | frozenset(("corrupt_share",)) if chaos else SERVER_METHODS
    server = SocketServer(
        server_filter,
        host=args.host,
        port=args.port,
        unix_path=args.unix_path,
        name=args.name or "repro-server",
        max_frame_bytes=args.max_frame_bytes or DEFAULT_MAX_FRAME_BYTES,
        delay=args.delay,
        method_table=method_table,
    )
    if args.parent_watch:
        # The spawning parent holds our stdin pipe: EOF means it is gone
        # (crashed, SIGKILLed, or just exited), so shut down rather than
        # linger as an orphan holding the port and the share table.  Read
        # the raw fd — a daemon thread parked in the *buffered* stdin
        # reader holds its lock and crashes interpreter shutdown
        # ("could not acquire lock ... at interpreter shutdown").
        stdin_fd = _sys.stdin.fileno()

        def _watch_parent() -> None:
            try:
                while os.read(stdin_fd, 4096):
                    pass
            except OSError:  # pragma: no cover - stdin already closed
                pass
            server.close()

        _threading.Thread(target=_watch_parent, daemon=True, name="parent-watch").start()
    address = server.start()
    print(format_ready_line(address, len(table)))
    _sys.stdout.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    finally:
        server.close()
    return 0


# ----------------------------------------------------------------------
# gateway
# ----------------------------------------------------------------------


def _parse_server_endpoint(text: str) -> "object":
    """Parse one ``--server HOST:PORT`` argument into a ServerAddress."""
    from repro.rmi.socket import ServerAddress

    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise CommandError("--server expects HOST:PORT, got %r" % text)
    try:
        port = int(port_text)
    except ValueError:
        raise CommandError("--server expects a numeric port, got %r" % text) from None
    if not 0 < port < 65536:
        raise CommandError("--server port out of range: %r" % text)
    return ServerAddress(host=host, port=port)


def cmd_gateway(args: argparse.Namespace) -> int:
    """Serve many concurrent client sessions over one share-server fleet.

    The daemon half of the ``repro-gateway`` entry point: it dials the
    already-running share servers named by ``--server`` (one multiplexed
    asyncio connection each), rebuilds the deployment's sharing scheme from
    the seed file and ``--p``/``--e``/``--sharing``/``--threshold``, and
    serves the single-server ``ServerFilter`` surface to any number of
    concurrent clients — each connection an isolated session, every share
    read scatter-gathered, verified and combined gateway-side.  On startup
    it prints one READY line announcing the bound port and its pid (the
    ``nodes=`` field counts the fleet's servers).
    """
    import sys as _sys
    import threading as _threading

    from repro.prg.generator import KeyedPRG as _KeyedPRG
    from repro.rmi.aio import AsyncClusterTransport
    from repro.rmi.gateway import AsyncClusterClient, Gateway
    from repro.rmi.server import format_ready_line
    from repro.rmi.socket import DEFAULT_MAX_FRAME_BYTES
    from repro.secretshare import make_scheme
    from repro.secretshare.scheme import SharingError

    seed = _load_seed(args)
    servers = [_parse_server_endpoint(text) for text in args.servers]
    if args.p < 2:
        raise CommandError("--p must be a prime >= 2, got %d" % args.p)
    try:
        ring = QuotientRing(make_field(args.p, args.e))
    except Exception as error:
        raise CommandError("cannot build F_{%d^%d}: %s" % (args.p, args.e, error)) from error
    prg = _KeyedPRG(seed, ring.field)
    try:
        scheme = make_scheme(
            args.sharing, ring, prg, servers=len(servers), threshold=args.threshold
        )
    except (ValueError, SharingError) as error:
        raise CommandError(str(error)) from error
    if args.cache_bytes < 0:
        raise CommandError("--cache-bytes must be non-negative, got %d" % args.cache_bytes)
    if args.fair_cap < 1:
        raise CommandError("--fair-cap must be positive, got %d" % args.fair_cap)
    max_frame_bytes = args.max_frame_bytes or DEFAULT_MAX_FRAME_BYTES
    try:
        cluster = AsyncClusterTransport(
            servers,
            max_frame_bytes=max_frame_bytes,
            hedge=args.hedge or False,
        )
    except ValueError as error:
        raise CommandError(str(error)) from error
    try:
        # Fail fast on an unusable session configuration (e.g. a read
        # quorum below the scheme threshold) instead of erroring per
        # connecting client later.
        AsyncClusterClient(
            cluster, scheme, read_quorum=args.read_quorum, verify_shares=args.verify_shares
        )
    except (ValueError, SharingError) as error:
        raise CommandError(str(error)) from error
    gateway = Gateway(
        cluster,
        scheme,
        read_quorum=args.read_quorum,
        verify_shares=args.verify_shares,
        host=args.host,
        port=args.port,
        unix_path=args.unix_path,
        max_frame_bytes=max_frame_bytes,
        name=args.name or "repro-gateway",
        cache_bytes=args.cache_bytes,
        fair=args.fair,
        fair_session_cap=args.fair_cap,
    )
    if args.parent_watch:
        # Same orphan protection as cmd_server: parent's stdin pipe EOF
        # means the spawning process died — shut down with it.
        stdin_fd = _sys.stdin.fileno()

        def _watch_parent() -> None:
            try:
                while os.read(stdin_fd, 4096):
                    pass
            except OSError:  # pragma: no cover - stdin already closed
                pass
            gateway.close()

        _threading.Thread(target=_watch_parent, daemon=True, name="parent-watch").start()
    address = gateway.start()
    print(format_ready_line(address, len(servers)))
    _sys.stdout.flush()
    try:
        gateway.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    finally:
        gateway.close()
    return 0


# ----------------------------------------------------------------------
# experiments
# ----------------------------------------------------------------------


def cmd_experiments(args: argparse.Namespace) -> int:
    """Re-run the requested paper figure(s) and print their tables."""
    if args.scale <= 0:
        raise CommandError("--scale must be positive, got %r" % args.scale)
    selection = args.figure
    records = []
    if selection in ("4", "all"):
        records.append(run_encoding_experiment(scales=[args.scale * step for step in range(1, 11)]))
    if selection in ("5", "6", "7", "all"):
        database = build_database(scale=args.scale)
        if selection in ("5", "all"):
            records.append(run_query_length_experiment(database=database))
        if selection in ("6", "all"):
            records.append(run_strictness_experiment(database=database))
        if selection in ("7", "all"):
            records.append(run_accuracy_experiment(database=database))
    if selection in ("trie", "all"):
        records.append(run_trie_compression_experiment())
    for record in records:
        print(render_record(record))
        print()
    return 0
