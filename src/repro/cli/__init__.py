"""Command-line interface mirroring the prototype's tooling.

The original prototype was driven by small command-line programs
(``MySQLEncode`` plus the query engines); this package provides the same
workflow for the reproduction::

    python -m repro.cli genxmark  --scale 0.05 --output auction.xml
    python -m repro.cli makemap   --dtd xmark --p 83 --output tags.map
    python -m repro.cli makeseed  --output secret.seed
    python -m repro.cli encode    --map tags.map --seed secret.seed \
                                  --xml auction.xml --output server-db.json
    python -m repro.cli query     --db server-db.json --map tags.map \
                                  --seed secret.seed "/site/regions/europe/item"
    python -m repro.cli experiments --figure 5

Every command is importable and unit-testable via :func:`repro.cli.main`.
"""

from repro.cli.main import build_parser, main

__all__ = ["main", "build_parser"]
