"""Plain-text rendering of experiment records.

The benchmark harness prints these tables so the rows/series of every paper
figure can be compared side by side with the published plots; the same
renderer produced the numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.metrics.records import ExperimentRecord


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an ASCII table with right-padded columns."""
    columns = [list(map(_format_cell, column)) for column in zip(*([headers] + [list(r) for r in rows]))] if rows else [[_format_cell(h)] for h in headers]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(map(_format_cell, headers), widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_format_cell(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return "%.4g" % value
        return "%.3f" % value
    return str(value)


def render_record(record: ExperimentRecord) -> str:
    """Render one experiment record as a titled text report."""
    renderer = _RENDERERS.get(record.experiment_id, _render_generic)
    body = renderer(record)
    title = "%s — %s" % (record.experiment_id, record.title)
    return "%s\n%s\n%s" % (title, "=" * len(title), body)


# ----------------------------------------------------------------------
# Per-experiment renderers
# ----------------------------------------------------------------------


def _render_encoding(record: ExperimentRecord) -> str:
    headers = ["input (MB)", "output (MB)", "index (MB)", "time (s)", "nodes", "struct %", "output/input"]
    rows = []
    series = record.series
    for i in range(len(series.get("input_mb", []))):
        rows.append(
            [
                series["input_mb"][i],
                series["output_mb"][i],
                series["index_mb"][i],
                series["time_s"][i],
                series["nodes"][i],
                series["structure_fraction"][i] * 100.0,
                series["expansion_ratio"][i],
            ]
        )
    return render_table(headers, rows)


def _render_query_length(record: ExperimentRecord) -> str:
    headers = ["#", "query", "engine", "result size", "evaluations", "equality tests", "time (s)"]
    rows = []
    for measurement in record.measurements:
        rows.append(
            [
                measurement.extra.get("query_number", ""),
                measurement.query,
                measurement.engine,
                measurement.result_size,
                measurement.evaluations,
                measurement.equality_tests,
                measurement.elapsed_seconds,
            ]
        )
    return render_table(headers, rows)


def _render_strictness(record: ExperimentRecord) -> str:
    headers = ["#", "query", "configuration", "result size", "evaluations", "equality tests", "time (s)"]
    rows = []
    for measurement in record.measurements:
        rows.append(
            [
                measurement.extra.get("query_number", ""),
                measurement.query,
                measurement.extra.get("configuration", ""),
                measurement.result_size,
                measurement.evaluations,
                measurement.equality_tests,
                measurement.elapsed_seconds,
            ]
        )
    return render_table(headers, rows)


def _render_accuracy(record: ExperimentRecord) -> str:
    headers = ["#", "query", "// steps", "equality size (E)", "containment size (C)", "accuracy %"]
    rows = []
    for measurement in record.measurements:
        rows.append(
            [
                measurement.extra.get("query_number", ""),
                measurement.query,
                measurement.extra.get("descendant_steps", ""),
                measurement.extra.get("equality_size", ""),
                measurement.extra.get("containment_size", ""),
                measurement.extra.get("accuracy_percent", ""),
            ]
        )
    return render_table(headers, rows)


def _render_trie(record: ExperimentRecord) -> str:
    rows = [[name, values[0] if values else ""] for name, values in record.series.items()]
    return render_table(["metric", "value"], rows)


def _render_generic(record: ExperimentRecord) -> str:
    parts: List[str] = []
    if record.series:
        rows = [[name, ", ".join(_format_cell(v) for v in values)] for name, values in record.series.items()]
        parts.append(render_table(["series", "values"], rows))
    if record.measurements:
        headers = ["query", "engine", "test", "result size", "evaluations", "time (s)"]
        rows = [
            [m.query, m.engine, m.test, m.result_size, m.evaluations, m.elapsed_seconds]
            for m in record.measurements
        ]
        parts.append(render_table(headers, rows))
    return "\n\n".join(parts) if parts else "(empty record)"


_RENDERERS = {
    "figure-4": _render_encoding,
    "figure-5": _render_query_length,
    "figure-6": _render_strictness,
    "figure-7": _render_accuracy,
    "section-4-trie": _render_trie,
}
