"""Section 4 size claims — trie compression of text content.

The paper states (prose, section 4):

* removing duplicate words reduces a text by about 50%,
* the compressed trie reduces it by 75–80%,
* with ``p = 29`` one polynomial costs 17 bytes, so the encoded cost of a
  single letter after trie compression is roughly 3.5–4.5 bytes.

This experiment pushes synthetic text corpora (drawn from the XMark
generator's vocabulary, whose word-frequency skew drives the dedup ratio)
through the trie transform and reports the same ratios.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence

from repro.metrics.records import ExperimentRecord
from repro.prg.generator import SplitMix64
from repro.trie.stats import measure_text_compression

#: word stems and suffixes used to synthesise a natural-language-like corpus:
#: repeated words (≈ half of all occurrences) drive the deduplication ratio,
#: shared stems across inflected forms drive the trie's prefix sharing.
_STEMS = (
    "auction", "bid", "price", "gold", "silver", "market", "trade", "offer",
    "sell", "buy", "estate", "castle", "forest", "river", "mountain", "village",
    "harbor", "vessel", "cargo", "spice", "silk", "amber", "ivory", "copper",
    "iron", "grain", "wool", "linen", "pearl", "ruby", "emerald", "crown",
    "scroll", "ledger", "coin", "purse", "wagon", "horse", "stable", "bridge",
    "tower", "gate", "wall", "street", "square", "fountain", "garden", "orchard",
    "vineyard", "cellar", "barrel", "bottle", "candle", "lantern", "mirror",
    "carpet", "paint", "statue", "organ", "violin", "trumpet", "drum", "anchor",
    "compass", "chart", "voyage", "captain", "sail", "merchant", "broker",
    "notary", "clerk", "guild", "charter", "contract", "pay", "credit",
    "interest", "profit", "loss", "account", "balance", "invoice", "receipt",
    "warehouse", "quay", "dock", "ferry", "mill", "bake", "brew", "tan",
    "forge", "smith", "mason", "carpenter", "weave", "tailor", "cobble",
    "porter", "courier", "herald", "wander", "journey", "letter", "story",
    "winter", "summer", "spring", "autumn", "morning", "evening", "night",
)
_SUFFIXES = ("", "s", "ed", "ing", "er", "ers", "ment", "ments", "ful", "less")


def build_corpus(num_texts: int = 120, words_per_text: int = 60, seed: int = 424242) -> List[str]:
    """Deterministic corpus with a natural-language-like duplication profile.

    Roughly half of all word occurrences repeat an earlier word (matching the
    paper's "removing duplicate words … reduces the size by 50%"); distinct
    words are stem+suffix combinations so the compressed trie shares stems.
    """
    rng = SplitMix64(seed)
    texts: List[str] = []
    # Rolling window of recently introduced words.  deque(maxlen=…) evicts
    # the oldest entry in O(1); the previous list.pop(0) shifted the whole
    # 8000-element window on every eviction, making long runs quadratic.
    recent: Deque[str] = deque(maxlen=8000)
    for _ in range(num_texts):
        words_in_text: List[str] = []
        for _ in range(words_per_text):
            if recent and rng.next_float() < 0.5:
                words_in_text.append(recent[rng.next_below(len(recent))])
            else:
                word = rng.choice(_STEMS)
                if rng.next_float() < 0.6:
                    word += rng.choice(_STEMS)
                word += rng.choice(_SUFFIXES)
                words_in_text.append(word)
                recent.append(word)
        texts.append(" ".join(words_in_text))
    return texts


def run_trie_compression_experiment(
    texts: Optional[Sequence[str]] = None,
    p: int = 29,
    e: int = 1,
) -> ExperimentRecord:
    """Measure dedup/trie reduction ratios and encoded bytes per letter."""
    corpus = list(texts) if texts is not None else build_corpus()
    report = measure_text_compression(corpus, p=p, e=e)

    record = ExperimentRecord(
        experiment_id="section-4-trie",
        title="Trie compression of text content",
        parameters={"p": p, "e": e, "texts": len(corpus)},
    )
    record.add_series_point("original_bytes", report.original_bytes)
    record.add_series_point("deduplicated_bytes", report.deduplicated_bytes)
    record.add_series_point("compressed_trie_nodes", report.compressed_trie_nodes)
    record.add_series_point("uncompressed_trie_nodes", report.uncompressed_trie_nodes)
    record.add_series_point("dedup_reduction_percent", report.dedup_reduction * 100.0)
    record.add_series_point("trie_reduction_percent", report.trie_reduction * 100.0)
    record.add_series_point("polynomial_bytes", report.polynomial_bytes)
    record.add_series_point("encoded_bytes_per_letter", report.encoded_bytes_per_original_letter)
    return record
