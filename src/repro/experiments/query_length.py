"""Figure 5 + Table 1 — evaluations vs query length, simple vs advanced.

The paper runs the nine prefix queries of table 1 (chosen so the advanced
engine's look-ahead cannot prune anything — the DTD already guarantees every
containment) and plots, per query, the result-set size and the number of
polynomial evaluations of each engine.  The finding: the two engines are
comparable, differing by at most a constant factor.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.database import EncryptedXMLDatabase
from repro.experiments.workloads import TABLE1_QUERIES, bench_scale, build_database
from repro.filters.interface import MatchRule
from repro.metrics.records import ExperimentRecord, QueryMeasurement


def run_query_length_experiment(
    database: Optional[EncryptedXMLDatabase] = None,
    queries: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
    rule: MatchRule = MatchRule.CONTAINMENT,
) -> ExperimentRecord:
    """Run the table-1 queries on both engines and collect evaluation counts."""
    if database is None:
        database = build_database(scale=scale if scale is not None else bench_scale())
    queries = list(queries) if queries is not None else list(TABLE1_QUERIES)

    record = ExperimentRecord(
        experiment_id="figure-5",
        title="Varying the query length: evaluations, simple vs advanced",
        parameters={
            "rule": rule.value,
            "queries": queries,
            "nodes": database.node_count,
            "field": database.field_order,
        },
    )

    for index, query in enumerate(queries, start=1):
        for engine in ("simple", "advanced"):
            before_calls = database.transport_stats.calls
            before_bytes = database.transport_stats.total_bytes
            result = database.query(query, engine=engine, strict=rule.is_strict)
            record.add(
                QueryMeasurement(
                    query=query,
                    engine=engine,
                    test=rule.value,
                    result_size=result.result_size,
                    evaluations=result.evaluations,
                    equality_tests=result.equality_tests,
                    elapsed_seconds=result.elapsed_seconds,
                    remote_calls=database.transport_stats.calls - before_calls,
                    remote_bytes=database.transport_stats.total_bytes - before_bytes,
                    extra={"query_number": index, "query_length": len(query.strip("/").split("/"))},
                )
            )
        record.add_series_point("output_size", record.measurements[-1].result_size)
    return record
