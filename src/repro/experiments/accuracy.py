"""Figure 7 — accuracy of the containment test.

Accuracy is defined as ``E / C`` where ``E`` is the result-set size under the
equality test and ``C`` the result-set size under the containment test for
the same query.  The paper observes that accuracy drops with every ``//`` in
the query and reaches 100% for absolute queries without ``//``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.database import EncryptedXMLDatabase
from repro.experiments.workloads import TABLE2_QUERIES, bench_scale, build_database
from repro.metrics.records import ExperimentRecord, QueryMeasurement
from repro.xpath.parser import parse_query


def run_accuracy_experiment(
    database: Optional[EncryptedXMLDatabase] = None,
    queries: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
    engine: str = "advanced",
) -> ExperimentRecord:
    """Measure containment-test accuracy (E/C) for each table-2 query."""
    if database is None:
        database = build_database(scale=scale if scale is not None else bench_scale())
    queries = list(queries) if queries is not None else list(TABLE2_QUERIES)

    record = ExperimentRecord(
        experiment_id="figure-7",
        title="Accuracy of the containment test (E/C)",
        parameters={"engine": engine, "queries": queries, "nodes": database.node_count},
    )

    for index, query in enumerate(queries, start=1):
        equality_result = database.query(query, engine=engine, strict=True)
        containment_result = database.query(query, engine=engine, strict=False)
        exact = len(equality_result.matches)
        loose = len(containment_result.matches)
        accuracy = (exact / loose * 100.0) if loose else 100.0
        descendant_steps = parse_query(query).descendant_step_count()
        record.add(
            QueryMeasurement(
                query=query,
                engine=engine,
                test="accuracy",
                result_size=exact,
                evaluations=containment_result.evaluations,
                equality_tests=equality_result.equality_tests,
                elapsed_seconds=equality_result.elapsed_seconds + containment_result.elapsed_seconds,
                extra={
                    "query_number": index,
                    "equality_size": exact,
                    "containment_size": loose,
                    "accuracy_percent": accuracy,
                    "descendant_steps": descendant_steps,
                },
            )
        )
        record.add_series_point("accuracy_percent", accuracy)
        record.add_series_point("descendant_steps", descendant_steps)
    return record
