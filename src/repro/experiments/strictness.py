"""Figure 6 + Table 2 — strict vs non-strict checking on both engines.

For each of the five table-2 queries the paper runs four configurations —
{simple, advanced} × {equality (strict), containment (non-strict)} — and
plots the execution time.  Findings: the advanced algorithm outperforms the
simple one on every query; strict checking sometimes costs a little and
sometimes helps a lot (it shrinks the intermediate result sets).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.database import EncryptedXMLDatabase
from repro.experiments.workloads import TABLE2_QUERIES, bench_scale, build_database
from repro.metrics.records import ExperimentRecord, QueryMeasurement

_CONFIGURATIONS = (
    ("simple", False, "non-strict/simple"),
    ("simple", True, "strict/simple"),
    ("advanced", False, "non-strict/advanced"),
    ("advanced", True, "strict/advanced"),
)


def run_strictness_experiment(
    database: Optional[EncryptedXMLDatabase] = None,
    queries: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
) -> ExperimentRecord:
    """Run every table-2 query in all four engine/test configurations."""
    if database is None:
        database = build_database(scale=scale if scale is not None else bench_scale())
    queries = list(queries) if queries is not None else list(TABLE2_QUERIES)

    record = ExperimentRecord(
        experiment_id="figure-6",
        title="Strictness: equality test versus containment test",
        parameters={
            "queries": queries,
            "nodes": database.node_count,
            "field": database.field_order,
        },
    )

    for index, query in enumerate(queries, start=1):
        for engine, strict, label in _CONFIGURATIONS:
            before_calls = database.transport_stats.calls
            before_bytes = database.transport_stats.total_bytes
            result = database.query(query, engine=engine, strict=strict)
            record.add(
                QueryMeasurement(
                    query=query,
                    engine=engine,
                    test="equality" if strict else "containment",
                    result_size=result.result_size,
                    evaluations=result.evaluations,
                    equality_tests=result.equality_tests,
                    elapsed_seconds=result.elapsed_seconds,
                    remote_calls=database.transport_stats.calls - before_calls,
                    remote_bytes=database.transport_stats.total_bytes - before_bytes,
                    extra={"query_number": index, "configuration": label},
                )
            )
    return record


def configuration_times(record: ExperimentRecord) -> dict:
    """Per-configuration list of execution times, keyed like the figure legend."""
    times: dict = {}
    for measurement in record.measurements:
        label = measurement.extra.get("configuration", "%s/%s" % (measurement.test, measurement.engine))
        times.setdefault(label, []).append(measurement.elapsed_seconds)
    return times
