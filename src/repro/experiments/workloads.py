"""Shared workload definitions: queries, documents, database construction.

The queries are transcribed verbatim from the paper:

* **Table 1** — nine prefix queries of increasing length along the path
  ``/site/regions/europe/item/description/parlist/listitem/text/keyword``
  (the worst case for the advanced engine: the DTD already guarantees every
  containment the look-ahead checks).
* **Table 2** — five queries mixing ``//`` and ``*`` used by the strictness
  (figure 6) and accuracy (figure 7) experiments.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.core.database import EncryptedXMLDatabase
from repro.xmark.generator import generate_document
from repro.xmldoc.dtd import XMARK_DTD
from repro.xmldoc.nodes import XMLDocument

#: Table 1: queries with increasing length (figure 5's x-axis).
TABLE1_QUERIES: List[str] = [
    "/site",
    "/site/regions",
    "/site/regions/europe",
    "/site/regions/europe/item",
    "/site/regions/europe/item/description",
    "/site/regions/europe/item/description/parlist",
    "/site/regions/europe/item/description/parlist/listitem",
    "/site/regions/europe/item/description/parlist/listitem/text",
    "/site/regions/europe/item/description/parlist/listitem/text/keyword",
]

#: Table 2: queries for the strictness and accuracy checks (figures 6 and 7).
TABLE2_QUERIES: List[str] = [
    "/site//europe/item",
    "/site//europe//item",
    "/site/*/person//city",
    "/*/*/open_auction/bidder/date",
    "//bidder/date",
]

#: the paper's field configuration for XMark documents
PAPER_P = 83
PAPER_E = 1

#: deterministic seed material used by the experiment harness
DEFAULT_DOCUMENT_SEED = 20050905
DEFAULT_ENCODING_SEED = b"sdm-2005-brinkman-reproduction-seed!"


def bench_scale(default: float = 0.02) -> float:
    """Document scale for benchmarks, overridable via ``REPRO_BENCH_SCALE``.

    ``scale`` ≈ megabytes of XMark XML.  The default keeps CI runs fast;
    ``REPRO_BENCH_SCALE=1`` reproduces the smallest paper-sized document and
    ``REPRO_BENCH_SCALE=10`` the largest.
    """
    raw = os.environ.get("REPRO_BENCH_SCALE")
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError as error:
        raise ValueError("REPRO_BENCH_SCALE must be a number, got %r" % raw) from error
    if value <= 0:
        raise ValueError("REPRO_BENCH_SCALE must be positive, got %r" % raw)
    return value


def build_document(scale: float, seed: int = DEFAULT_DOCUMENT_SEED) -> XMLDocument:
    """Generate the XMark-style document used by the query experiments."""
    return generate_document(scale=scale, seed=seed)


def build_database(
    scale: float = 0.02,
    document: Optional[XMLDocument] = None,
    use_rmi: bool = True,
    seed: bytes = DEFAULT_ENCODING_SEED,
    p: int = PAPER_P,
    e: int = PAPER_E,
) -> EncryptedXMLDatabase:
    """Encode a document with the paper's configuration (``F_83``, XMark DTD map)."""
    if document is None:
        document = build_document(scale)
    return EncryptedXMLDatabase.from_document(
        document,
        tag_names=XMARK_DTD.element_names(),
        seed=seed,
        p=p,
        e=e,
        use_rmi=use_rmi,
        keep_plaintext=True,
    )
