"""Ablation experiments for the design choices DESIGN.md calls out.

These are not in the paper; they quantify decisions the prototype made
implicitly so EXPERIMENTS.md can discuss them:

* **Equality-test cost vs fan-out** — the paper notes "the cost of a single
  equality test depends on the number of children"; this ablation measures
  reconstructions per equality test against node fan-out.
* **Index ablation** — what the B-tree indices on pre/post/parent buy: query
  work with and without indexes (the unindexed path falls back to scans).
* **RMI overhead** — remote calls and bytes with the simulated transport
  versus direct in-process calls.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.database import EncryptedXMLDatabase
from repro.experiments.workloads import TABLE2_QUERIES, bench_scale, build_database, build_document
from repro.metrics.records import ExperimentRecord, QueryMeasurement
from repro.metrics.timer import Stopwatch
from repro.xmldoc.dtd import XMARK_DTD


def run_equality_cost_ablation(
    database: Optional[EncryptedXMLDatabase] = None, scale: Optional[float] = None
) -> ExperimentRecord:
    """Measure equality-test cost (reconstructions) as a function of fan-out."""
    if database is None:
        database = build_database(scale=scale if scale is not None else bench_scale())
    record = ExperimentRecord(
        experiment_id="ablation-equality-cost",
        title="Equality-test cost versus node fan-out",
        parameters={"nodes": database.node_count},
    )
    client = database.client_filter
    root = client.root_pre()
    # Sample nodes with different fan-outs: the root, one mid-level container
    # and one leaf-ish node from each table-2 query result.
    sample_pres: List[int] = [root]
    for query in TABLE2_QUERIES:
        matches = database.plaintext_query(query)
        sample_pres.extend(matches[:2])
    seen = set()
    for pre in sample_pres:
        if pre in seen:
            continue
        seen.add(pre)
        children = client.children_of(pre)
        tag = database.tag_of(pre)
        if tag is None:
            continue
        before = client.counters.snapshot()
        watch = Stopwatch().start()
        client.equals(pre, tag)
        elapsed = watch.stop()
        after = client.counters.snapshot()
        record.add(
            QueryMeasurement(
                query="equals(%s)" % tag,
                engine="client-filter",
                test="equality",
                result_size=1,
                evaluations=after["evaluations"] - before["evaluations"],
                equality_tests=after["equality_tests"] - before["equality_tests"],
                elapsed_seconds=elapsed,
                extra={
                    "fanout": len(children),
                    "reconstructions": after["reconstructions"] - before["reconstructions"],
                },
            )
        )
    return record


def run_index_ablation(scale: Optional[float] = None) -> ExperimentRecord:
    """Compare query latency with and without the pre/post/parent B-trees."""
    scale = scale if scale is not None else bench_scale()
    document = build_document(scale)
    record = ExperimentRecord(
        experiment_id="ablation-indexes",
        title="Effect of the pre/post/parent B-tree indexes",
        parameters={"scale": scale},
    )
    for label, index_columns in (("indexed", None), ("unindexed", [])):
        database = EncryptedXMLDatabase.from_document(
            document,
            tag_names=XMARK_DTD.element_names(),
            seed=b"ablation-index-seed-000000000000",
            p=83,
            use_rmi=False,
            index_columns=index_columns,
        )
        for query in TABLE2_QUERIES:
            result = database.query(query, engine="advanced", strict=False)
            record.add(
                QueryMeasurement(
                    query=query,
                    engine="advanced",
                    test="containment",
                    result_size=result.result_size,
                    evaluations=result.evaluations,
                    equality_tests=result.equality_tests,
                    elapsed_seconds=result.elapsed_seconds,
                    extra={"configuration": label},
                )
            )
    return record


def run_rmi_overhead_ablation(scale: Optional[float] = None) -> ExperimentRecord:
    """Quantify the simulated RMI boundary: calls and bytes per query."""
    scale = scale if scale is not None else bench_scale()
    document = build_document(scale)
    record = ExperimentRecord(
        experiment_id="ablation-rmi",
        title="Remote-invocation overhead of the client/server split",
        parameters={"scale": scale},
    )
    for label, use_rmi in (("rmi", True), ("direct", False)):
        database = EncryptedXMLDatabase.from_document(
            document,
            tag_names=XMARK_DTD.element_names(),
            seed=b"ablation-rmi-seed-00000000000000",
            p=83,
            use_rmi=use_rmi,
        )
        for query in TABLE2_QUERIES:
            before_calls = database.transport_stats.calls
            before_bytes = database.transport_stats.total_bytes
            result = database.query(query, engine="advanced", strict=False)
            record.add(
                QueryMeasurement(
                    query=query,
                    engine="advanced",
                    test="containment",
                    result_size=result.result_size,
                    evaluations=result.evaluations,
                    equality_tests=result.equality_tests,
                    elapsed_seconds=result.elapsed_seconds,
                    remote_calls=database.transport_stats.calls - before_calls,
                    remote_bytes=database.transport_stats.total_bytes - before_bytes,
                    extra={"configuration": label},
                )
            )
    return record
