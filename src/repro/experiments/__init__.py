"""Experiment harness: one runner per table/figure of the paper's evaluation.

| Paper reference        | Runner                                             |
|------------------------|----------------------------------------------------|
| Figure 4 (§6.1)        | :func:`repro.experiments.encoding.run_encoding_experiment` |
| Figure 5 + Table 1     | :func:`repro.experiments.query_length.run_query_length_experiment` |
| Figure 6 + Table 2     | :func:`repro.experiments.strictness.run_strictness_experiment` |
| Figure 7               | :func:`repro.experiments.accuracy.run_accuracy_experiment` |
| §4 trie size claims    | :func:`repro.experiments.trie_compression.run_trie_compression_experiment` |
| Design-choice ablations| :mod:`repro.experiments.ablations` |

Each runner returns an :class:`repro.metrics.records.ExperimentRecord`; the
:mod:`repro.experiments.reporting` module renders records as the text tables
the benchmark harness prints and EXPERIMENTS.md reproduces.

Scale knobs: every runner takes an explicit ``scale`` (≈ megabytes of XMark
input).  The benchmarks default to small scales so the suite is laptop-fast
and honour the ``REPRO_BENCH_SCALE`` environment variable for paper-sized
runs (``REPRO_BENCH_SCALE=1.0`` ≈ the paper's smallest document).
"""

from repro.experiments.accuracy import run_accuracy_experiment
from repro.experiments.encoding import run_encoding_experiment
from repro.experiments.query_length import run_query_length_experiment
from repro.experiments.reporting import render_record, render_table
from repro.experiments.strictness import run_strictness_experiment
from repro.experiments.trie_compression import run_trie_compression_experiment
from repro.experiments.workloads import (
    TABLE1_QUERIES,
    TABLE2_QUERIES,
    build_database,
    build_document,
    bench_scale,
)

__all__ = [
    "run_encoding_experiment",
    "run_query_length_experiment",
    "run_strictness_experiment",
    "run_accuracy_experiment",
    "run_trie_compression_experiment",
    "render_record",
    "render_table",
    "TABLE1_QUERIES",
    "TABLE2_QUERIES",
    "build_document",
    "build_database",
    "bench_scale",
]
