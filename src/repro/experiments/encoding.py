"""Figure 4 — encoding cost: output size, index size and time vs input size.

The paper encodes XMark documents of 1–10 MB and plots (i) the encoded
database size, (ii) the size of the B-tree indices on pre/post/parent and
(iii) the encoding time, all against the input XML size.  The reported
findings: both storage and time are strictly linear in the input; roughly
17% of the output is the pre/post/parent bookkeeping; the remainder is about
1.5× the input size.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.encode.encoder import Encoder
from repro.encode.tagmap import TagMap
from repro.experiments.workloads import (
    DEFAULT_DOCUMENT_SEED,
    DEFAULT_ENCODING_SEED,
    PAPER_E,
    PAPER_P,
    bench_scale,
)
from repro.gf.factory import make_field
from repro.metrics.records import ExperimentRecord
from repro.xmark.generator import generate_document
from repro.xmldoc.dtd import XMARK_DTD
from repro.xmldoc.serializer import serialize


def run_encoding_experiment(
    scales: Optional[Sequence[float]] = None,
    p: int = PAPER_P,
    e: int = PAPER_E,
    document_seed: int = DEFAULT_DOCUMENT_SEED,
    encoding_seed: bytes = DEFAULT_ENCODING_SEED,
) -> ExperimentRecord:
    """Encode documents of increasing size and record the figure-4 series.

    ``scales`` is the list of document scales (≈ MB).  When omitted, a sweep
    of ten sizes is derived from :func:`repro.experiments.workloads.bench_scale`
    so the paper's 1–10 MB sweep is reproduced at ``REPRO_BENCH_SCALE=1``.
    """
    if scales is None:
        unit = bench_scale(0.01)
        scales = [unit * step for step in range(1, 11)]

    field = make_field(p, e)
    tag_map = TagMap.from_names(XMARK_DTD.element_names(), field=field)
    record = ExperimentRecord(
        experiment_id="figure-4",
        title="Encoding: output size, index size and time vs input size",
        parameters={"p": p, "e": e, "scales": list(scales)},
    )

    for scale in scales:
        document = generate_document(scale=scale, seed=document_seed)
        xml_text = serialize(document)
        encoder = Encoder(tag_map, encoding_seed)
        encoded = encoder.encode_text(xml_text)
        stats = encoded.stats
        record.add_series_point("input_mb", stats.input_bytes / 1_000_000.0)
        record.add_series_point("output_mb", stats.output_bytes / 1_000_000.0)
        record.add_series_point("index_mb", stats.index_bytes / 1_000_000.0)
        record.add_series_point("time_s", stats.encoding_seconds)
        record.add_series_point("nodes", stats.node_count)
        record.add_series_point("structure_fraction", stats.structure_fraction)
        record.add_series_point("expansion_ratio", stats.expansion_ratio)
    return record


def summarize_linearity(record: ExperimentRecord) -> dict:
    """Least-squares slopes of output size and time against input size.

    The paper's claim is strict linearity; the harness reports the slope and
    the coefficient of determination so EXPERIMENTS.md can quote them.
    """
    inputs = record.series.get("input_mb", [])
    summary = {}
    for series_name in ("output_mb", "time_s", "index_mb"):
        values = record.series.get(series_name, [])
        if len(inputs) >= 2 and len(values) == len(inputs):
            slope, intercept, r_squared = _least_squares(inputs, values)
            summary[series_name] = {
                "slope": slope,
                "intercept": intercept,
                "r_squared": r_squared,
            }
    return summary


def _least_squares(xs: List[float], ys: List[float]):
    """Simple one-dimensional least squares fit returning (slope, intercept, R^2)."""
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    covariance = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    variance = sum((x - mean_x) ** 2 for x in xs)
    if variance == 0:
        return 0.0, mean_y, 0.0
    slope = covariance / variance
    intercept = mean_y - slope * mean_x
    residual = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    total = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return slope, intercept, r_squared
