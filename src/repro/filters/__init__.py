"""The distributed filter: basic operations shared by both query engines.

Section 5.2 of the paper: *"Each different query engine will use the same set
of basic operations.  These operations are offered by ServerFilter and
ClientFilter.  Both classes implement a common interface Filter but are
adapted to work on the server site respectively the client site."*

* :class:`~repro.filters.interface.Filter` — the common interface.
* :class:`~repro.filters.server.ServerFilter` — runs "on the server": answers
  structural queries from the indexed node table, evaluates stored shares,
  and buffers intermediate result queues so the thin client only ever holds
  one node at a time (the ``next_node`` pipeline).
* :class:`~repro.filters.client.ClientFilter` — runs "on the client": holds
  the secret seed and tag map, regenerates client shares, combines them with
  server results, and exposes the two matching rules (containment test and
  equality test) to the query engines.
* :class:`~repro.filters.cluster.ClusterClient` — presents an n-server share
  deployment behind the exact ``ServerFilter`` surface: structural queries
  fail over between replicas, share requests scatter-gather and recombine
  through the deployment's sharing scheme.
"""

from repro.filters.client import ClientFilter
from repro.filters.cluster import (
    ClusterClient,
    ClusterProtocolError,
    ClusterUnavailableError,
    InconsistentShareError,
)
from repro.filters.interface import Filter, MatchRule
from repro.filters.server import CorruptibleServerFilter, ServerFilter

__all__ = [
    "Filter",
    "MatchRule",
    "ServerFilter",
    "CorruptibleServerFilter",
    "ClientFilter",
    "ClusterClient",
    "ClusterProtocolError",
    "ClusterUnavailableError",
    "InconsistentShareError",
]
