"""Client-side filter: share regeneration, containment and equality tests.

The client holds the secret material (seed → PRG, tag map) and talks to the
server filter — directly or through an RMI-style proxy.  Its job per node is:

* **containment test**: ask the server to evaluate its stored share at the
  mapped tag value, evaluate the regenerated client share at the same point,
  add the two results; zero means the tag occurs somewhere in the subtree.
* **equality test**: fetch the node's share and all of its children's
  shares, reconstruct the full polynomials, and check that the node's own
  factor (after taking out the product of the children) is exactly
  ``x − map(tag)``.

Every primitive updates the shared :class:`~repro.metrics.counters.EvaluationCounters`
so the experiment harness can report the same numbers the paper plots.

The ``*_many`` methods are the hot path: they resolve a whole candidate list
with O(1) remote calls via the server's batch endpoints while recording
exactly the same evaluation counters as the per-node loop would (so the
paper's figures are unaffected).  Constructing the filter with
``batched=False`` degrades every batch method to a per-node remote loop —
the baseline the batching benchmark compares against.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.encode.tagmap import TagMap
from repro.filters.interface import Filter, MatchRule
from repro.metrics.counters import EvaluationCounters
from repro.poly.ring import QuotientRing, RingPolynomial
from repro.secretshare.additive import AdditiveSharing


class ClientFilter(Filter):
    """The trusted half of the filter pair."""

    def __init__(
        self,
        server,
        sharing: AdditiveSharing,
        tag_map: TagMap,
        counters: Optional[EvaluationCounters] = None,
        batched: bool = True,
    ):
        """``server`` is a :class:`ServerFilter` or a proxy exposing its methods.

        ``batched`` selects whether the ``*_many`` methods use the server's
        bulk endpoints (one remote call per batch) or loop over the per-node
        primitives (one remote call per node, the pre-batching behaviour).
        """
        self._server = server
        self._sharing = sharing
        self._ring: QuotientRing = sharing.ring
        self._tag_map = tag_map
        self._batched = batched
        self.counters = counters or EvaluationCounters()

    # ------------------------------------------------------------------
    # Structure passthrough (counted as server fetches)
    # ------------------------------------------------------------------

    def root_pre(self) -> int:
        """Locate the root node on the server."""
        self.counters.count_fetch()
        return self._server.root_pre()

    def children_of(self, pre: int) -> List[int]:
        """Direct children of ``pre`` (document order)."""
        self.counters.count_fetch()
        return list(self._server.children_of(pre))

    def descendants_of(self, pre: int) -> List[int]:
        """All proper descendants of ``pre``."""
        self.counters.count_fetch()
        return list(self._server.descendants_of(pre))

    def parent_of(self, pre: int) -> int:
        """Parent of ``pre`` (0 for the root)."""
        self.counters.count_fetch()
        return self._server.parent_of(pre)

    def node_count(self) -> int:
        """Total number of nodes stored on the server."""
        return self._server.node_count()

    # ------------------------------------------------------------------
    # Batched structure access (O(1) remote calls per candidate list)
    # ------------------------------------------------------------------

    def children_of_many(self, pres: Sequence[int]) -> List[List[int]]:
        """Children of every node in ``pres``, one remote call."""
        pres = list(pres)
        if not pres:
            return []
        self.counters.count_fetch(len(pres))
        if self._batched:
            return [list(children) for children in self._server.children_of_many(pres)]
        return [list(self._server.children_of(pre)) for pre in pres]

    def descendants_of_many(self, pres: Sequence[int]) -> List[List[int]]:
        """Descendants of every node in ``pres``, one remote call."""
        pres = list(pres)
        if not pres:
            return []
        self.counters.count_fetch(len(pres))
        if self._batched:
            return [list(descendants) for descendants in self._server.descendants_of_many(pres)]
        return [list(self._server.descendants_of(pre)) for pre in pres]

    def parents_of_many(self, pres: Sequence[int]) -> List[int]:
        """Parents of every node in ``pres`` (0 for the root), one remote call."""
        pres = list(pres)
        if not pres:
            return []
        self.counters.count_fetch(len(pres))
        if self._batched:
            parents = []
            for pre, info in zip(pres, self._server.node_infos(pres)):
                if info is None:
                    raise LookupError("no node with pre=%d" % pre)
                parents.append(info["parent"])
            return parents
        return [self._server.parent_of(pre) for pre in pres]

    # ------------------------------------------------------------------
    # Pipeline passthrough
    # ------------------------------------------------------------------

    def open_queue(self, pres: List[int]) -> int:
        """Buffer an explicit list of candidate nodes on the server."""
        return self._server.open_queue(list(pres))

    def open_children_queue(self, pres: List[int]) -> int:
        """Buffer the children of all ``pres`` on the server."""
        self.counters.count_fetch(len(pres))
        return self._server.open_children_queue(list(pres))

    def open_descendants_queue(self, pres: List[int]) -> int:
        """Buffer the descendants of all ``pres`` on the server."""
        self.counters.count_fetch(len(pres))
        return self._server.open_descendants_queue(list(pres))

    def next_node(self, queue_id: int) -> Optional[int]:
        """Pull the next buffered node (``None`` when exhausted)."""
        result = self._server.next_node(queue_id)
        return None if result == -1 else result

    def close_queue(self, queue_id: int) -> None:
        """Discard a server-side queue."""
        self._server.close_queue(queue_id)

    # ------------------------------------------------------------------
    # Share primitives
    # ------------------------------------------------------------------

    def evaluate(self, pre: int, point: int) -> int:
        """Evaluate the regenerated *client* share of node ``pre`` at ``point``."""
        self.counters.count_regeneration()
        client_share = self._sharing.client_share(pre)
        return self._ring.evaluate(client_share, point)

    def shared_evaluation(self, pre: int, point: int) -> int:
        """Combined evaluation: server share + client share at ``point``."""
        server_value = self._server.evaluate(pre, point)
        client_value = self.evaluate(pre, point)
        self.counters.count_evaluation()
        return self._ring.field.add(server_value, client_value)

    def shared_evaluation_many(self, pres: Sequence[int], point: int) -> List[int]:
        """Combined evaluations for a whole candidate list, one remote call.

        The server evaluates every stored share in a single
        ``evaluate_batch`` request; the client regenerates and evaluates its
        own shares locally and adds the two result vectors.  Counter
        bookkeeping matches a loop of :meth:`shared_evaluation` exactly.
        """
        pres = list(pres)
        if not pres:
            return []
        if self._batched:
            server_values = self._server.evaluate_batch(pres, point)
        else:
            server_values = [self._server.evaluate(pre, point) for pre in pres]
        # Regenerate all client shares (memoised in the PRG) and evaluate
        # them in one kernel sweep; counter bookkeeping stays exactly that
        # of a per-node shared_evaluation loop.  Array-native kernels keep
        # the whole regenerate→evaluate→add pipeline in arrays.
        self.counters.count_regeneration(len(pres))
        self.counters.count_evaluation(len(pres))
        client_values = self._sharing.client_evaluations(pres, point)
        kernel = self._ring.kernel
        if kernel.array_native:
            return kernel.unwrap(kernel.vec_add(server_values, client_values))
        add = self._ring.field.add
        return [
            add(server_value, client_value)
            for server_value, client_value in zip(server_values, client_values)
        ]

    def reconstruct(self, pre: int) -> RingPolynomial:
        """Reconstruct the full node polynomial from both shares."""
        server_coeffs = self._server.fetch_share(pre)
        server_share = RingPolynomial(self._ring, server_coeffs)
        self.counters.count_fetch()
        self.counters.count_regeneration()
        self.counters.count_reconstruction()
        return self._sharing.reconstruct(server_share, pre)

    def reconstruct_many(self, pres: Sequence[int]) -> List[RingPolynomial]:
        """Reconstruct many node polynomials with one share fetch."""
        pres = list(pres)
        if not pres:
            return []
        if self._batched:
            coefficient_lists = self._server.fetch_shares_batch(pres)
        else:
            coefficient_lists = [self._server.fetch_share(pre) for pre in pres]
        self.counters.count_fetch(len(pres))
        self.counters.count_regeneration(len(pres))
        self.counters.count_reconstruction(len(pres))
        # One bulk reconstruction: array-native schemes add the regenerated
        # client block to the whole share matrix in a single sweep; the
        # generic path validates and reconstructs per row like the old loop.
        return self._sharing.reconstruct_rows(coefficient_lists, pres)

    # ------------------------------------------------------------------
    # Matching rules
    # ------------------------------------------------------------------

    def tag_value(self, tag: str) -> int:
        """Map a tag name to its secret field value."""
        return self._tag_map.value(tag)

    def knows_tag(self, tag: str) -> bool:
        """Whether ``tag`` is present in the client's map.

        Tags outside the map cannot occur in the encoded document, so both
        matching rules treat them as matching nothing (rather than failing) —
        mirroring how the prototype simply finds no hits for a tag the map
        file never assigned a value to.
        """
        return tag in self._tag_map

    def contains_value(self, pre: int, value: int) -> bool:
        """Containment test against an already-mapped field value."""
        return self.shared_evaluation(pre, value) == 0

    def contains(self, pre: int, tag: str) -> bool:
        """Containment test: does ``tag`` occur anywhere in ``pre``'s subtree?"""
        if not self.knows_tag(tag):
            return False
        return self.contains_value(pre, self.tag_value(tag))

    def equals_value(self, pre: int, value: int) -> bool:
        """Equality test against an already-mapped field value.

        Reconstructs the node's polynomial and the product of all its direct
        children's polynomials, then checks that the remaining factor is
        exactly ``x − value``.  The cost grows with the number of children
        (each child share must be fetched, regenerated and multiplied in),
        which is why the paper calls this the expensive test.
        """
        node_poly = self.reconstruct(pre)
        children = self.children_of(pre)
        product = self._ring.one()
        for child_pre in children:
            product = self._ring.mul(product, self.reconstruct(child_pre))
        self.counters.count_equality_test(len(children))
        return self._ring.divides_cleanly(node_poly, product, value)

    def equals(self, pre: int, tag: str) -> bool:
        """Equality test: is node ``pre`` itself labelled ``tag``?"""
        if not self.knows_tag(tag):
            return False
        return self.equals_value(pre, self.tag_value(tag))

    def matches(self, pre: int, tag: str, rule: MatchRule) -> bool:
        """Dispatch on the matching rule chosen for the query."""
        if rule is MatchRule.EQUALITY:
            return self.equals(pre, tag)
        return self.contains(pre, tag)

    def matches_value(self, pre: int, value: int, rule: MatchRule) -> bool:
        """Rule dispatch when the value has already been mapped."""
        if rule is MatchRule.EQUALITY:
            return self.equals_value(pre, value)
        return self.contains_value(pre, value)

    # ------------------------------------------------------------------
    # Batched matching rules
    # ------------------------------------------------------------------

    def contains_value_many(self, pres: Sequence[int], value: int) -> List[bool]:
        """Containment tests for a whole candidate list, one remote call."""
        return [combined == 0 for combined in self.shared_evaluation_many(pres, value)]

    def contains_many(self, pres: Sequence[int], tag: str) -> List[bool]:
        """Batch variant of :meth:`contains` (aligned with ``pres``)."""
        pres = list(pres)
        if not self.knows_tag(tag):
            return [False] * len(pres)
        return self.contains_value_many(pres, self.tag_value(tag))

    def equals_value_many(self, pres: Sequence[int], value: int) -> List[bool]:
        """Equality tests for a whole candidate list.

        One ``children_of_many`` call discovers every child, then a single
        ``fetch_shares_batch`` call retrieves the shares of all nodes and
        children at once; the polynomial arithmetic runs locally.
        """
        pres = list(pres)
        if not pres:
            return []
        children_lists = self.children_of_many(pres)
        fetch_order: List[int] = []
        for pre, children in zip(pres, children_lists):
            fetch_order.append(pre)
            fetch_order.extend(children)
        polynomials = iter(self.reconstruct_many(fetch_order))
        results = []
        for pre, children in zip(pres, children_lists):
            node_poly = next(polynomials)
            product = self._ring.one()
            for _ in children:
                product = self._ring.mul(product, next(polynomials))
            self.counters.count_equality_test(len(children))
            results.append(self._ring.divides_cleanly(node_poly, product, value))
        return results

    def equals_many(self, pres: Sequence[int], tag: str) -> List[bool]:
        """Batch variant of :meth:`equals` (aligned with ``pres``)."""
        pres = list(pres)
        if not self.knows_tag(tag):
            return [False] * len(pres)
        return self.equals_value_many(pres, self.tag_value(tag))

    def matches_many(self, pres: Sequence[int], tag: str, rule: MatchRule) -> List[bool]:
        """Rule dispatch for a whole candidate list."""
        if rule is MatchRule.EQUALITY:
            return self.equals_many(pres, tag)
        return self.contains_many(pres, tag)
