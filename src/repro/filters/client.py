"""Client-side filter: share regeneration, containment and equality tests.

The client holds the secret material (seed → PRG, tag map) and talks to the
server filter — directly or through an RMI-style proxy.  Its job per node is:

* **containment test**: ask the server to evaluate its stored share at the
  mapped tag value, evaluate the regenerated client share at the same point,
  add the two results; zero means the tag occurs somewhere in the subtree.
* **equality test**: fetch the node's share and all of its children's
  shares, reconstruct the full polynomials, and check that the node's own
  factor (after taking out the product of the children) is exactly
  ``x − map(tag)``.

Every primitive updates the shared :class:`~repro.metrics.counters.EvaluationCounters`
so the experiment harness can report the same numbers the paper plots.
"""

from __future__ import annotations

from typing import List, Optional

from repro.encode.tagmap import TagMap
from repro.filters.interface import Filter, MatchRule
from repro.metrics.counters import EvaluationCounters
from repro.poly.ring import QuotientRing, RingPolynomial
from repro.secretshare.additive import AdditiveSharing


class ClientFilter(Filter):
    """The trusted half of the filter pair."""

    def __init__(
        self,
        server,
        sharing: AdditiveSharing,
        tag_map: TagMap,
        counters: Optional[EvaluationCounters] = None,
    ):
        """``server`` is a :class:`ServerFilter` or a proxy exposing its methods."""
        self._server = server
        self._sharing = sharing
        self._ring: QuotientRing = sharing.ring
        self._tag_map = tag_map
        self.counters = counters or EvaluationCounters()

    # ------------------------------------------------------------------
    # Structure passthrough (counted as server fetches)
    # ------------------------------------------------------------------

    def root_pre(self) -> int:
        """Locate the root node on the server."""
        self.counters.count_fetch()
        return self._server.root_pre()

    def children_of(self, pre: int) -> List[int]:
        """Direct children of ``pre`` (document order)."""
        self.counters.count_fetch()
        return list(self._server.children_of(pre))

    def descendants_of(self, pre: int) -> List[int]:
        """All proper descendants of ``pre``."""
        self.counters.count_fetch()
        return list(self._server.descendants_of(pre))

    def parent_of(self, pre: int) -> int:
        """Parent of ``pre`` (0 for the root)."""
        self.counters.count_fetch()
        return self._server.parent_of(pre)

    def node_count(self) -> int:
        """Total number of nodes stored on the server."""
        return self._server.node_count()

    # ------------------------------------------------------------------
    # Pipeline passthrough
    # ------------------------------------------------------------------

    def open_queue(self, pres: List[int]) -> int:
        """Buffer an explicit list of candidate nodes on the server."""
        return self._server.open_queue(list(pres))

    def open_children_queue(self, pres: List[int]) -> int:
        """Buffer the children of all ``pres`` on the server."""
        self.counters.count_fetch(len(pres))
        return self._server.open_children_queue(list(pres))

    def open_descendants_queue(self, pres: List[int]) -> int:
        """Buffer the descendants of all ``pres`` on the server."""
        self.counters.count_fetch(len(pres))
        return self._server.open_descendants_queue(list(pres))

    def next_node(self, queue_id: int) -> Optional[int]:
        """Pull the next buffered node (``None`` when exhausted)."""
        result = self._server.next_node(queue_id)
        return None if result == -1 else result

    def close_queue(self, queue_id: int) -> None:
        """Discard a server-side queue."""
        self._server.close_queue(queue_id)

    # ------------------------------------------------------------------
    # Share primitives
    # ------------------------------------------------------------------

    def evaluate(self, pre: int, point: int) -> int:
        """Evaluate the regenerated *client* share of node ``pre`` at ``point``."""
        self.counters.count_regeneration()
        client_share = self._sharing.client_share(pre)
        return self._ring.evaluate(client_share, point)

    def shared_evaluation(self, pre: int, point: int) -> int:
        """Combined evaluation: server share + client share at ``point``."""
        server_value = self._server.evaluate(pre, point)
        client_value = self.evaluate(pre, point)
        self.counters.count_evaluation()
        return self._ring.field.add(server_value, client_value)

    def reconstruct(self, pre: int) -> RingPolynomial:
        """Reconstruct the full node polynomial from both shares."""
        server_coeffs = self._server.fetch_share(pre)
        server_share = RingPolynomial(self._ring, server_coeffs)
        self.counters.count_fetch()
        self.counters.count_regeneration()
        self.counters.count_reconstruction()
        return self._sharing.reconstruct(server_share, pre)

    # ------------------------------------------------------------------
    # Matching rules
    # ------------------------------------------------------------------

    def tag_value(self, tag: str) -> int:
        """Map a tag name to its secret field value."""
        return self._tag_map.value(tag)

    def knows_tag(self, tag: str) -> bool:
        """Whether ``tag`` is present in the client's map.

        Tags outside the map cannot occur in the encoded document, so both
        matching rules treat them as matching nothing (rather than failing) —
        mirroring how the prototype simply finds no hits for a tag the map
        file never assigned a value to.
        """
        return tag in self._tag_map

    def contains_value(self, pre: int, value: int) -> bool:
        """Containment test against an already-mapped field value."""
        return self.shared_evaluation(pre, value) == 0

    def contains(self, pre: int, tag: str) -> bool:
        """Containment test: does ``tag`` occur anywhere in ``pre``'s subtree?"""
        if not self.knows_tag(tag):
            return False
        return self.contains_value(pre, self.tag_value(tag))

    def equals_value(self, pre: int, value: int) -> bool:
        """Equality test against an already-mapped field value.

        Reconstructs the node's polynomial and the product of all its direct
        children's polynomials, then checks that the remaining factor is
        exactly ``x − value``.  The cost grows with the number of children
        (each child share must be fetched, regenerated and multiplied in),
        which is why the paper calls this the expensive test.
        """
        node_poly = self.reconstruct(pre)
        children = self.children_of(pre)
        product = self._ring.one()
        for child_pre in children:
            product = self._ring.mul(product, self.reconstruct(child_pre))
        self.counters.count_equality_test(len(children))
        return self._ring.divides_cleanly(node_poly, product, value)

    def equals(self, pre: int, tag: str) -> bool:
        """Equality test: is node ``pre`` itself labelled ``tag``?"""
        if not self.knows_tag(tag):
            return False
        return self.equals_value(pre, self.tag_value(tag))

    def matches(self, pre: int, tag: str, rule: MatchRule) -> bool:
        """Dispatch on the matching rule chosen for the query."""
        if rule is MatchRule.EQUALITY:
            return self.equals(pre, tag)
        return self.contains(pre, tag)

    def matches_value(self, pre: int, value: int, rule: MatchRule) -> bool:
        """Rule dispatch when the value has already been mapped."""
        if rule is MatchRule.EQUALITY:
            return self.equals_value(pre, value)
        return self.contains_value(pre, value)
