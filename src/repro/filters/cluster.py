"""Cluster-transparent server access: n share servers behind one surface.

:class:`ClusterClient` exposes exactly the method surface of a single
:class:`~repro.filters.server.ServerFilter`, so the existing
:class:`~repro.filters.client.ClientFilter` — and through it both query
engines and the leakage observer — runs unmodified against an ``n``-server
deployment.  Behind the surface it

* routes **structural** queries (``pre``/``post``/``parent`` are replicated
  on every server) to one sticky primary, failing over to the next live
  server on a connection error,
* **scatter-gathers** the share endpoints (``evaluate`` /
  ``evaluate_batch`` / ``fetch_share`` / ``fetch_shares_batch``) across the
  cluster through :meth:`~repro.rmi.cluster.ClusterTransport.invoke_quorum`
  and recombines the per-server replies through the deployment's
  :class:`~repro.secretshare.scheme.SharingScheme` — any ``k`` replies for a
  threshold scheme, locally regenerated PRG lanes for missing additive
  shares.  With verification off the read completes on the **first k**
  successful replies (straggler replies drain in the background), which is
  the latency-optimal Shamir read,
* **verifies** surplus replies against the reconstruction when the scheme
  carries redundancy, so a corrupted or desynchronised server is detected
  and reported instead of silently corrupting query results,
* **escalates** to the spare servers in one batched scatter when the
  initial quorum cannot be completed, instead of trickling one call per
  spare,
* optionally **hedges** slow reads (``hedge=``): when the modeled straggler
  among the contacted servers is markedly slower than an idle spare, the
  spare is co-issued in the same round so the k-th reply arrives earlier,
* optionally **prefetches** (``prefetch=``): the next structural rounds are
  modeled as overlapping the in-flight share scatter, pipelining the
  engines' batch expansion with share fetches on the makespan clock,
* keeps the server-side ``next_node`` queues working by pinning each queue
  to the server that opened it.

Only *connection-level* failures trigger fail-over; semantic errors (an
unknown ``pre`` raises :class:`LookupError` on every replica alike)
propagate unchanged, matching single-server behaviour.  This includes the
real-wire failures of a socket deployment: a killed or unreachable server
process surfaces as :class:`~repro.rmi.socket.ServerUnavailable` (a
``ConnectionError``), so quorum completion and structural fail-over engage
identically whether the outage is modeled (``set_down``) or an actual dead
process.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.rmi.cache import STRUCTURAL_READ_METHODS, GatewayCache
from repro.rmi.cluster import ClusterTransport
from repro.secretshare.scheme import (
    AttributionInconclusive,
    SharingError,
    SharingScheme,
)


class ClusterProtocolError(RuntimeError):
    """Base class of cluster-level protocol failures."""


class ClusterUnavailableError(ClusterProtocolError):
    """Not enough live servers to answer a request."""


class InconsistentShareError(ClusterProtocolError):
    """Redundant replies disagree: at least one server holds corrupt shares.

    ``servers`` lists the indices whose replies contradicted the
    reconstruction from the base subset — detection only, relative to that
    subset, so a corrupt *base member* makes every honest surplus server
    appear here.  ``suspects`` is the stronger verdict from the scheme's
    majority vote across k-subsets (:meth:`SharingScheme.attribute_corruption`):
    the servers whose replies disagree with the unique honest majority.  It
    is empty when attribution was inconclusive (too few replies, a tie, or a
    scheme without redundancy).  ``evidence`` carries the vote tallies and
    first-divergence positions for supervisors and logs.
    """

    def __init__(
        self,
        message: str,
        servers: Sequence[int],
        suspects: Sequence[int] = (),
        evidence: Optional[Dict[str, object]] = None,
    ):
        super().__init__(message)
        self.servers = tuple(servers)
        self.suspects = tuple(suspects)
        self.evidence: Dict[str, object] = dict(evidence or {})


class ClusterClient:
    """Presents an ``n``-server share deployment as one server filter."""

    #: spare-vs-straggler latency ratio that triggers a hedged co-issue
    DEFAULT_HEDGE_RATIO = 1.5

    def __init__(
        self,
        transport: ClusterTransport,
        scheme: SharingScheme,
        read_quorum: Optional[int] = None,
        verify_shares: bool = True,
        hedge: Union[bool, float] = False,
        prefetch: int = 0,
        result_cache: Optional[GatewayCache] = None,
    ):
        """``transport`` carries the calls; ``scheme`` recombines the replies.

        ``read_quorum`` is the number of servers contacted per share read —
        defaulting to all of them, which buys immediate fail-over *and* the
        redundancy that makes :class:`InconsistentShareError` detection
        possible.  Setting it to ``scheme.threshold`` minimises traffic at
        the cost of both.  ``verify_shares=False`` skips the consistency
        check — the reconstruction then completes on the first ``threshold``
        successful replies and stops waiting for stragglers.

        ``hedge`` (only meaningful with verification off) co-issues a share
        read to the fastest idle spare whenever the slowest contacted server
        is at least ``hedge`` times slower than that spare (``True`` selects
        :data:`DEFAULT_HEDGE_RATIO`) — one extra call buys a shorter tail.
        ``prefetch`` marks up to that many structural rounds after each
        share read as overlapping it on the makespan clock, modelling the
        engine's next batch expansion pipelined with in-flight fetches.

        ``result_cache`` (default off) is a shared
        :class:`~repro.rmi.cache.GatewayCache`: structural reads and
        *combined* share reads are answered from it when present, and
        computed results are stored back.  Results served from the cache
        are shared **by reference** — callers must treat them as
        read-only, which every consumer in this stack already does.
        Queue cursors are per-client mutable state and never touch the
        cache.
        """
        if transport.num_servers != scheme.num_servers:
            raise SharingError(
                "transport has %d servers but the scheme shards across %d"
                % (transport.num_servers, scheme.num_servers)
            )
        if read_quorum is None:
            read_quorum = scheme.num_servers
        if not scheme.threshold <= read_quorum <= scheme.num_servers:
            raise SharingError(
                "read_quorum must be in [%d, %d], got %d"
                % (scheme.threshold, scheme.num_servers, read_quorum)
            )
        if prefetch < 0:
            raise ValueError("prefetch must be non-negative, got %d" % prefetch)
        if hedge is not False and hedge is not True and hedge < 1:
            raise ValueError("hedge ratio must be at least 1, got %r" % hedge)
        self.transport = transport
        self.scheme = scheme
        self.ring = scheme.ring
        self._read_quorum = read_quorum
        self._verify = verify_shares
        self._hedge_ratio = (
            0.0 if hedge is False else (self.DEFAULT_HEDGE_RATIO if hedge is True else float(hedge))
        )
        self._prefetch = prefetch
        self._result_cache = result_cache
        self._overlap_credits = 0
        self._primary = 0
        # Server-side queues are pinned to one server; local ids hide that.
        self._queue_routes: Dict[int, Tuple[int, int]] = {}
        self._next_local_queue_id = 1
        #: inconsistency reports observed so far (kept even when raising)
        self.inconsistencies: List[Dict[str, object]] = []
        #: zero-arg repair hook (see :meth:`enable_read_repair`); ``None``
        #: keeps the historical raise-on-inconsistency behaviour
        self._repairer: Optional[Callable[[], Dict[int, int]]] = None
        #: pre -> row version, for version-salted share regeneration of
        #: written rows (absent = 0, the bulk-encoded stream)
        self._versions: Dict[int, int] = {}
        #: read-repair rounds that converged (bench/test observability)
        self.read_repairs: List[Dict[int, int]] = []

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------

    @property
    def num_servers(self) -> int:
        """Number of servers in the deployment."""
        return self.transport.num_servers

    def _server_order(self, start: Optional[int] = None) -> List[int]:
        """Preference order: live servers from ``start``, then downed ones."""
        count = self.num_servers
        start = self._primary if start is None else start
        rotated = [(start + offset) % count for offset in range(count)]
        live = [index for index in rotated if not self.transport.is_down(index)]
        down = [index for index in rotated if self.transport.is_down(index)]
        return live + down

    # ------------------------------------------------------------------
    # Read repair (version skew vs corruption)
    # ------------------------------------------------------------------

    def enable_read_repair(self, repairer: Callable[[], Dict[int, int]]) -> None:
        """Arm reconstruction-time read repair.

        ``repairer`` is a zero-argument callable that inspects the fleet
        for version skew and catches lagging servers up, returning the
        ``{server: deltas replayed}`` map — pass
        :meth:`~repro.rmi.write.WriteCoordinator.repair_stale`.  With it
        armed, a reconstruction that fails verification first asks the
        repairer; if any server was behind, the read retries once against
        the converged fleet.  A fleet with *no* skew (true corruption)
        re-raises the original :class:`InconsistentShareError` untouched,
        so the attribution/quarantine path is unaffected.
        """
        self._repairer = repairer

    def note_versions(self, versions: Dict[int, int]) -> None:
        """Record row versions (pre -> epoch) for share regeneration.

        The version-salted PRG streams make a written row's share a
        function of ``(pre, version)``; a client regenerating shares of a
        downed server must know the committed versions or it reconstructs
        against the dead row's old masks.  The write path pushes
        :meth:`~repro.encode.mutate.DocumentState.versions` here after
        every commit.
        """
        self._versions.update(versions)

    def _version_for(self, pre: int) -> int:
        return self._versions.get(pre, 0)

    def _with_read_repair(self, compute: Callable[[], Any]) -> Any:
        """Run one reconstruction, repairing version skew on divergence."""
        try:
            return compute()
        except InconsistentShareError:
            if self._repairer is None:
                raise
            repaired = self._repairer()
            if not repaired:
                raise  # no skew: genuine corruption, let attribution stand
            self.read_repairs.append(dict(repaired))
            return compute()

    # ------------------------------------------------------------------
    # Structural queries: one server answers, fail over on connection loss
    # ------------------------------------------------------------------

    def _take_overlap(self) -> bool:
        """Consume one prefetch credit; the next round then overlaps."""
        if self._overlap_credits <= 0:
            return False
        self._overlap_credits -= 1
        return True

    def _cached_call(self, method: str, args: Tuple[Any, ...], compute: Callable[[], Any]) -> Any:
        """One read through the shared result cache (when configured).

        A hit returns the stored value by reference (immutable by
        contract); a miss computes, stores, and returns.  With no cache
        this is exactly ``compute()``.
        """
        cache = self._result_cache
        if cache is None:
            return compute()
        found, value = cache.lookup(method, args)
        if found:
            return value
        value = compute()
        cache.store(method, args, value)
        return value

    def _call_any(self, method: str, *args: Any) -> Any:
        """Invoke a replicated (structure-only) method on one live server."""
        if self._result_cache is not None and method in STRUCTURAL_READ_METHODS:
            return self._cached_call(method, args, lambda: self._call_any_direct(method, args))
        return self._call_any_direct(method, args)

    def _call_any_direct(self, method: str, args: Tuple[Any, ...]) -> Any:
        last_error: Optional[BaseException] = None
        overlap = self._take_overlap()
        for index in self._server_order():
            try:
                result = self.transport.invoke(index, method, args, overlap=overlap)
            except ConnectionError as exc:
                last_error = exc
                continue
            self._primary = index
            return result
        raise ClusterUnavailableError(
            "no live server could answer %s: %s" % (method, last_error)
        )

    def node_count(self) -> int:
        return self._call_any("node_count")

    def root_pre(self) -> int:
        return self._call_any("root_pre")

    def node_info(self, pre: int):
        return self._call_any("node_info", pre)

    def node_infos(self, pres: List[int]):
        return self._call_any("node_infos", pres)

    def children_of(self, pre: int) -> List[int]:
        return self._call_any("children_of", pre)

    def children_of_many(self, pres: List[int]) -> List[List[int]]:
        return self._call_any("children_of_many", pres)

    def descendants_of(self, pre: int) -> List[int]:
        return self._call_any("descendants_of", pre)

    def descendants_of_many(self, pres: List[int]) -> List[List[int]]:
        return self._call_any("descendants_of_many", pres)

    def parent_of(self, pre: int) -> int:
        return self._call_any("parent_of", pre)

    # ------------------------------------------------------------------
    # next_node pipeline: queues are pinned to the server that opened them
    # ------------------------------------------------------------------

    def _open_queue_on_primary(self, method: str, pres: List[int]) -> int:
        last_error: Optional[BaseException] = None
        overlap = self._take_overlap()
        for index in self._server_order():
            try:
                remote_id = self.transport.invoke(index, method, (list(pres),), overlap=overlap)
            except ConnectionError as exc:
                last_error = exc
                continue
            self._primary = index
            local_id = self._next_local_queue_id
            self._next_local_queue_id += 1
            self._queue_routes[local_id] = (index, remote_id)
            return local_id
        raise ClusterUnavailableError(
            "no live server could answer %s: %s" % (method, last_error)
        )

    def _queue_route(self, queue_id: int) -> Tuple[int, int]:
        route = self._queue_routes.get(queue_id)
        if route is None:
            raise LookupError("unknown queue id %d" % queue_id)
        return route

    def open_queue(self, pres: List[int]) -> int:
        return self._open_queue_on_primary("open_queue", pres)

    def open_children_queue(self, pres: List[int]) -> int:
        return self._open_queue_on_primary("open_children_queue", pres)

    def open_descendants_queue(self, pres: List[int]) -> int:
        return self._open_queue_on_primary("open_descendants_queue", pres)

    def next_node(self, queue_id: int) -> int:
        server, remote_id = self._queue_route(queue_id)
        return self.transport.invoke(server, "next_node", (remote_id,))

    def queue_size(self, queue_id: int) -> int:
        server, remote_id = self._queue_route(queue_id)
        return self.transport.invoke(server, "queue_size", (remote_id,))

    def close_queue(self, queue_id: int) -> bool:
        server, remote_id = self._queue_routes.pop(queue_id, (None, None))
        if server is None:
            return False
        return self.transport.invoke(server, "close_queue", (remote_id,))

    # ------------------------------------------------------------------
    # Share access: scatter, regenerate, verify, combine
    # ------------------------------------------------------------------

    def _hedged_targets(self, targets: List[int], spares: List[int]) -> List[int]:
        """Co-issue the fastest spare when the modeled straggler warrants it.

        The hedge is a pure function of the configured per-server latencies:
        when the slowest contacted server is at least ``hedge`` times slower
        than the fastest idle spare, the spare joins the scatter — its reply
        can complete the first-k quorum before the straggler's would.
        """
        if not self._hedge_ratio or self._verify or not spares:
            return targets
        live_spares = [index for index in spares if not self.transport.is_down(index)]
        if not live_spares:
            return targets
        straggler = max(self.transport.latency_of(index) for index in targets)
        best_spare = min(live_spares, key=lambda index: (self.transport.latency_of(index), index))
        if straggler >= self._hedge_ratio * self.transport.latency_of(best_spare):
            return targets + [best_spare]
        return targets

    def _gather(
        self, method: str, args: Tuple[Any, ...]
    ) -> Tuple[Dict[int, Any], Dict[int, BaseException]]:
        """Scatter to ``read_quorum`` servers; stop at the first-k successes.

        With verification on, every contacted server's reply is awaited (the
        redundancy *is* the point); with verification off the quorum read
        returns as soon as ``threshold`` good replies are in, and straggler
        replies drain in the background.  If the admitted subset cannot be
        completed, the remaining candidates are escalated in **one** batched
        scatter instead of one call per spare server.

        Only *connection-level* failures are collected for the caller to
        judge the surviving subset; semantic errors (an unknown ``pre``
        raises :class:`LookupError` on every replica alike, a bad argument
        fails everywhere) re-raise immediately, exactly as the single-server
        path would.
        """
        replies: Dict[int, Any] = {}
        failures: Dict[int, BaseException] = {}

        def absorb(batch) -> None:
            for reply in batch:
                if reply.ok:
                    replies[reply.server] = reply.value
                elif isinstance(reply.error, ConnectionError):
                    failures[reply.server] = reply.error
                else:
                    raise reply.error

        order = self._server_order(start=0)
        targets = order[: self._read_quorum]
        spares = order[self._read_quorum :]
        targets = self._hedged_targets(targets, spares)
        quorum = len(targets) if self._verify else min(self.scheme.threshold, len(targets))
        absorb(self.transport.invoke_quorum(method, args, k=quorum, indices=targets))
        if not self.scheme.sufficient(replies):
            remaining = [index for index in spares if index not in replies and index not in failures]
            if remaining:
                absorb(self.transport.invoke_all(method, args, indices=remaining))
        self._overlap_credits = self._prefetch
        return replies, failures

    def _complete_with_regenerated(
        self,
        replies: Dict[int, Any],
        failures: Dict[int, BaseException],
        regenerate: Callable[[int], Any],
        method: str,
    ) -> Dict[int, Any]:
        """Fill regenerable gaps locally; fail if the set stays incomplete."""
        if not self.scheme.complete(replies):
            for index in range(self.num_servers):
                if index in replies or not self.scheme.regenerable(index):
                    continue
                replies[index] = regenerate(index)
                if self.scheme.complete(replies):
                    break
        if not self.scheme.complete(replies):
            raise ClusterUnavailableError(
                "%s gathered %d of %d replies (threshold %d); failures: %s"
                % (
                    method,
                    len(replies),
                    self.num_servers,
                    self.scheme.threshold,
                    {index: repr(error) for index, error in failures.items()},
                )
            )
        return replies

    def _verify_vectors(
        self,
        vectors: Dict[int, Sequence[int]],
        method: str,
        pres: Optional[Sequence[int]] = None,
        stride: int = 1,
    ) -> None:
        """Check redundant replies; attribute, record and raise on disagreement.

        ``pres``/``stride`` translate a vector component back to the node it
        belongs to: component ``c`` is batch position ``c // stride``, node
        ``pres[c // stride]`` (``stride`` is 1 for evaluation vectors and the
        ring length for flattened share rows).
        """
        if not self._verify or len(vectors) <= self.scheme.threshold:
            return
        inconsistent = self.scheme.verify_vectors(vectors)
        if not inconsistent:
            return
        suspects: Tuple[int, ...] = ()
        evidence: Dict[str, object] = {}
        try:
            attribution = self.scheme.attribute_corruption(vectors)
        except AttributionInconclusive as inconclusive:
            evidence = dict(inconclusive.evidence)
            evidence["inconclusive"] = str(inconclusive)
            verdict = "attribution inconclusive (%s)" % inconclusive
        else:
            suspects = attribution.suspects
            evidence = attribution.as_dict()
            verdict = "suspects %s by majority vote over %d %d-subsets" % (
                list(suspects),
                attribution.subsets,
                self.scheme.threshold,
            )
            position = self._divergence_position(attribution.divergence, pres, stride)
            if position:
                verdict += "; first divergence at %s" % position
        report = {
            "method": method,
            "servers": tuple(inconsistent),
            "suspects": suspects,
            "evidence": evidence,
        }
        self.inconsistencies.append(report)
        raise InconsistentShareError(
            "%s: replies from servers %s are inconsistent with the "
            "reconstruction; %s" % (method, list(inconsistent), verdict),
            inconsistent,
            suspects=suspects,
            evidence=evidence,
        )

    @staticmethod
    def _divergence_position(
        divergence: Dict[int, int],
        pres: Optional[Sequence[int]],
        stride: int,
    ) -> str:
        """Human-readable location of the earliest suspect divergence."""
        if not divergence:
            return ""
        component = min(divergence.values())
        batch_position = component // max(stride, 1)
        if pres is None or batch_position >= len(pres):
            return "component %d" % component
        if len(pres) == 1:
            return "pre %d" % pres[0]
        return "batch position %d (pre %d)" % (batch_position, pres[batch_position])

    def evaluate(self, pre: int, point: int) -> int:
        """Combined server-side evaluation of node ``pre`` at ``point``."""
        return self._cached_call(
            "evaluate",
            (pre, point),
            lambda: self._with_read_repair(lambda: self._evaluate_direct(pre, point)),
        )

    def _evaluate_direct(self, pre: int, point: int) -> int:
        replies, failures = self._gather("evaluate", (pre, point))
        replies = self._complete_with_regenerated(
            replies,
            failures,
            lambda index: self.ring.evaluate(
                self.scheme.regenerate_share(pre, index, self._version_for(pre)), point
            ),
            "evaluate",
        )
        vectors = {index: (value,) for index, value in replies.items()}
        self._verify_vectors(vectors, "evaluate", pres=(pre,))
        return self.scheme.combine_vectors(vectors)[0]

    def evaluate_batch(self, pres: List[int], point: int) -> List[int]:
        """Combined server-side evaluations for a whole candidate list."""
        pres = list(pres)
        if not pres:
            return []
        return self._cached_call(
            "evaluate_batch",
            (pres, point),
            lambda: self._with_read_repair(
                lambda: self._evaluate_batch_direct(pres, point)
            ),
        )

    def _evaluate_batch_direct(self, pres: List[int], point: int) -> List[int]:
        replies, failures = self._gather("evaluate_batch", (pres, point))

        def regenerate(index: int) -> List[int]:
            shares = [
                self.scheme.regenerate_share(pre, index, self._version_for(pre))
                for pre in pres
            ]
            return self.ring.evaluate_many(shares, point)

        replies = self._complete_with_regenerated(replies, failures, regenerate, "evaluate_batch")
        self._verify_vectors(replies, "evaluate_batch", pres=pres)
        return self.scheme.combine_values_many(replies)

    def evaluate_many(self, pres: List[int], point: int) -> List[int]:
        """Alias of :meth:`evaluate_batch` (protocol compatibility)."""
        return self.evaluate_batch(pres, point)

    def fetch_share(self, pre: int) -> List[int]:
        """The *combined* server-share coefficients of node ``pre``."""
        return self._cached_call(
            "fetch_share",
            (pre,),
            lambda: self._with_read_repair(lambda: self._fetch_share_direct(pre)),
        )

    def _fetch_share_direct(self, pre: int) -> List[int]:
        replies, failures = self._gather("fetch_share", (pre,))
        replies = self._complete_with_regenerated(
            replies,
            failures,
            lambda index: list(
                self.scheme.regenerate_share(pre, index, self._version_for(pre)).coeffs
            ),
            "fetch_share",
        )
        self._verify_vectors(replies, "fetch_share", pres=(pre,), stride=self.ring.length)
        return self.scheme.combine_vectors(replies)

    def fetch_shares_batch(self, pres: List[int]) -> List[List[int]]:
        """Combined share coefficients for all ``pres``, scatter-gathered.

        Per-server replies are flattened to one long vector so the scheme
        combines (and verifies) each batch with one kernel pass instead of
        one per node; the combination is component-wise linear, so the
        flattening is exact.
        """
        pres = list(pres)
        if not pres:
            return []
        return self._cached_call(
            "fetch_shares_batch",
            (pres,),
            lambda: self._with_read_repair(
                lambda: self._fetch_shares_batch_direct(pres)
            ),
        )

    def _fetch_shares_batch_direct(self, pres: List[int]) -> List[List[int]]:
        replies, failures = self._gather("fetch_shares_batch", (pres,))

        def regenerate(index: int) -> List[List[int]]:
            return [
                list(self.scheme.regenerate_share(pre, index, self._version_for(pre)).coeffs)
                for pre in pres
            ]

        replies = self._complete_with_regenerated(replies, failures, regenerate, "fetch_shares_batch")
        flat = {
            index: [value for vector in vectors for value in vector]
            for index, vectors in replies.items()
        }
        self._verify_vectors(flat, "fetch_shares_batch", pres=pres, stride=self.ring.length)
        combined = self.scheme.combine_vectors(flat)
        length = self.ring.length
        return [combined[start : start + length] for start in range(0, len(combined), length)]

    def fetch_shares(self, pres: List[int]) -> List[List[int]]:
        """Alias of :meth:`fetch_shares_batch` (protocol compatibility)."""
        return self.fetch_shares_batch(pres)

    def close(self) -> None:
        """Release the transport's pooled resources (threads, sockets).

        Idempotent — delegates to
        :meth:`~repro.rmi.cluster.ClusterTransport.close`; the client stays
        usable, resources are reacquired lazily on the next call.  The
        facade's context-manager ``__exit__`` calls this so deployments
        never leak scatter pools or server connections.
        """
        self.transport.close()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "ClusterClient(servers=%d, scheme=%s, quorum=%d)" % (
            self.num_servers,
            self.scheme.name,
            self._read_quorum,
        )
