"""Cluster-transparent server access: n share servers behind one surface.

:class:`ClusterClient` exposes exactly the method surface of a single
:class:`~repro.filters.server.ServerFilter`, so the existing
:class:`~repro.filters.client.ClientFilter` — and through it both query
engines and the leakage observer — runs unmodified against an ``n``-server
deployment.  Behind the surface it

* routes **structural** queries (``pre``/``post``/``parent`` are replicated
  on every server) to one sticky primary, failing over to the next live
  server on a connection error,
* **scatter-gathers** the share endpoints (``evaluate`` /
  ``evaluate_batch`` / ``fetch_share`` / ``fetch_shares_batch``) across the
  cluster and recombines the per-server replies through the deployment's
  :class:`~repro.secretshare.scheme.SharingScheme` — any ``k`` replies for a
  threshold scheme, locally regenerated PRG lanes for missing additive
  shares,
* **verifies** surplus replies against the reconstruction when the scheme
  carries redundancy, so a corrupted or desynchronised server is detected
  and reported instead of silently corrupting query results,
* keeps the server-side ``next_node`` queues working by pinning each queue
  to the server that opened it.

Only *connection-level* failures trigger fail-over; semantic errors (an
unknown ``pre`` raises :class:`LookupError` on every replica alike)
propagate unchanged, matching single-server behaviour.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.rmi.cluster import ClusterTransport
from repro.secretshare.scheme import SharingError, SharingScheme


class ClusterProtocolError(RuntimeError):
    """Base class of cluster-level protocol failures."""


class ClusterUnavailableError(ClusterProtocolError):
    """Not enough live servers to answer a request."""


class InconsistentShareError(ClusterProtocolError):
    """Redundant replies disagree: at least one server holds corrupt shares.

    ``servers`` lists the indices whose replies contradicted the
    reconstruction from the base subset.  With exactly ``threshold`` replies
    corruption is undetectable; with more, disagreement is provable but
    attribution is relative to the base subset (a majority vote across
    subsets would be needed to pin the culprit down — see ROADMAP).
    """

    def __init__(self, message: str, servers: Sequence[int]):
        super().__init__(message)
        self.servers = tuple(servers)


class ClusterClient:
    """Presents an ``n``-server share deployment as one server filter."""

    def __init__(
        self,
        transport: ClusterTransport,
        scheme: SharingScheme,
        read_quorum: Optional[int] = None,
        verify_shares: bool = True,
    ):
        """``transport`` carries the calls; ``scheme`` recombines the replies.

        ``read_quorum`` is the number of servers contacted per share read —
        defaulting to all of them, which buys immediate fail-over *and* the
        redundancy that makes :class:`InconsistentShareError` detection
        possible.  Setting it to ``scheme.threshold`` minimises traffic at
        the cost of both.  ``verify_shares=False`` skips the consistency
        check (the reconstruction then trusts the first ``threshold``
        replies).
        """
        if transport.num_servers != scheme.num_servers:
            raise SharingError(
                "transport has %d servers but the scheme shards across %d"
                % (transport.num_servers, scheme.num_servers)
            )
        if read_quorum is None:
            read_quorum = scheme.num_servers
        if not scheme.threshold <= read_quorum <= scheme.num_servers:
            raise SharingError(
                "read_quorum must be in [%d, %d], got %d"
                % (scheme.threshold, scheme.num_servers, read_quorum)
            )
        self.transport = transport
        self.scheme = scheme
        self.ring = scheme.ring
        self._read_quorum = read_quorum
        self._verify = verify_shares
        self._primary = 0
        # Server-side queues are pinned to one server; local ids hide that.
        self._queue_routes: Dict[int, Tuple[int, int]] = {}
        self._next_local_queue_id = 1
        #: inconsistency reports observed so far (kept even when raising)
        self.inconsistencies: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------

    @property
    def num_servers(self) -> int:
        """Number of servers in the deployment."""
        return self.transport.num_servers

    def _server_order(self, start: Optional[int] = None) -> List[int]:
        """Preference order: live servers from ``start``, then downed ones."""
        count = self.num_servers
        start = self._primary if start is None else start
        rotated = [(start + offset) % count for offset in range(count)]
        live = [index for index in rotated if not self.transport.is_down(index)]
        down = [index for index in rotated if self.transport.is_down(index)]
        return live + down

    # ------------------------------------------------------------------
    # Structural queries: one server answers, fail over on connection loss
    # ------------------------------------------------------------------

    def _call_any(self, method: str, *args: Any) -> Any:
        """Invoke a replicated (structure-only) method on one live server."""
        last_error: Optional[BaseException] = None
        for index in self._server_order():
            try:
                result = self.transport.invoke(index, method, args)
            except ConnectionError as exc:
                last_error = exc
                continue
            self._primary = index
            return result
        raise ClusterUnavailableError(
            "no live server could answer %s: %s" % (method, last_error)
        )

    def node_count(self) -> int:
        return self._call_any("node_count")

    def root_pre(self) -> int:
        return self._call_any("root_pre")

    def node_info(self, pre: int):
        return self._call_any("node_info", pre)

    def node_infos(self, pres: List[int]):
        return self._call_any("node_infos", pres)

    def children_of(self, pre: int) -> List[int]:
        return self._call_any("children_of", pre)

    def children_of_many(self, pres: List[int]) -> List[List[int]]:
        return self._call_any("children_of_many", pres)

    def descendants_of(self, pre: int) -> List[int]:
        return self._call_any("descendants_of", pre)

    def descendants_of_many(self, pres: List[int]) -> List[List[int]]:
        return self._call_any("descendants_of_many", pres)

    def parent_of(self, pre: int) -> int:
        return self._call_any("parent_of", pre)

    # ------------------------------------------------------------------
    # next_node pipeline: queues are pinned to the server that opened them
    # ------------------------------------------------------------------

    def _open_queue_on_primary(self, method: str, pres: List[int]) -> int:
        last_error: Optional[BaseException] = None
        for index in self._server_order():
            try:
                remote_id = self.transport.invoke(index, method, (list(pres),))
            except ConnectionError as exc:
                last_error = exc
                continue
            self._primary = index
            local_id = self._next_local_queue_id
            self._next_local_queue_id += 1
            self._queue_routes[local_id] = (index, remote_id)
            return local_id
        raise ClusterUnavailableError(
            "no live server could answer %s: %s" % (method, last_error)
        )

    def _queue_route(self, queue_id: int) -> Tuple[int, int]:
        route = self._queue_routes.get(queue_id)
        if route is None:
            raise LookupError("unknown queue id %d" % queue_id)
        return route

    def open_queue(self, pres: List[int]) -> int:
        return self._open_queue_on_primary("open_queue", pres)

    def open_children_queue(self, pres: List[int]) -> int:
        return self._open_queue_on_primary("open_children_queue", pres)

    def open_descendants_queue(self, pres: List[int]) -> int:
        return self._open_queue_on_primary("open_descendants_queue", pres)

    def next_node(self, queue_id: int) -> int:
        server, remote_id = self._queue_route(queue_id)
        return self.transport.invoke(server, "next_node", (remote_id,))

    def queue_size(self, queue_id: int) -> int:
        server, remote_id = self._queue_route(queue_id)
        return self.transport.invoke(server, "queue_size", (remote_id,))

    def close_queue(self, queue_id: int) -> bool:
        server, remote_id = self._queue_routes.pop(queue_id, (None, None))
        if server is None:
            return False
        return self.transport.invoke(server, "close_queue", (remote_id,))

    # ------------------------------------------------------------------
    # Share access: scatter, regenerate, verify, combine
    # ------------------------------------------------------------------

    def _gather(
        self, method: str, args: Tuple[Any, ...]
    ) -> Tuple[Dict[int, Any], Dict[int, BaseException]]:
        """Contact up to ``read_quorum`` servers (more if replies are short).

        Only *connection-level* failures are collected for the caller to
        judge the surviving subset; semantic errors (an unknown ``pre``
        raises :class:`LookupError` on every replica alike, a bad argument
        fails everywhere) re-raise immediately, exactly as the single-server
        path would.
        """
        replies: Dict[int, Any] = {}
        failures: Dict[int, BaseException] = {}

        def absorb(batch) -> None:
            for reply in batch:
                if reply.ok:
                    replies[reply.server] = reply.value
                elif isinstance(reply.error, ConnectionError):
                    failures[reply.server] = reply.error
                else:
                    raise reply.error

        order = self._server_order(start=0)
        absorb(self.transport.invoke_all(method, args, indices=order[: self._read_quorum]))
        for index in order[self._read_quorum :]:
            if self.scheme.sufficient(replies):
                break
            absorb(self.transport.invoke_all(method, args, indices=[index]))
        return replies, failures

    def _complete_with_regenerated(
        self,
        replies: Dict[int, Any],
        failures: Dict[int, BaseException],
        regenerate: Callable[[int], Any],
        method: str,
    ) -> Dict[int, Any]:
        """Fill regenerable gaps locally; fail if the set stays incomplete."""
        if not self.scheme.complete(replies):
            for index in range(self.num_servers):
                if index in replies or not self.scheme.regenerable(index):
                    continue
                replies[index] = regenerate(index)
                if self.scheme.complete(replies):
                    break
        if not self.scheme.complete(replies):
            raise ClusterUnavailableError(
                "%s gathered %d of %d replies (threshold %d); failures: %s"
                % (
                    method,
                    len(replies),
                    self.num_servers,
                    self.scheme.threshold,
                    {index: repr(error) for index, error in failures.items()},
                )
            )
        return replies

    def _verify_vectors(self, vectors: Dict[int, Sequence[int]], method: str) -> None:
        """Check redundant replies; record and raise on disagreement."""
        if not self._verify or len(vectors) <= self.scheme.threshold:
            return
        inconsistent = self.scheme.verify_vectors(vectors)
        if not inconsistent:
            return
        report = {"method": method, "servers": tuple(inconsistent)}
        self.inconsistencies.append(report)
        raise InconsistentShareError(
            "%s: replies from servers %s are inconsistent with the "
            "reconstruction" % (method, list(inconsistent)),
            inconsistent,
        )

    def evaluate(self, pre: int, point: int) -> int:
        """Combined server-side evaluation of node ``pre`` at ``point``."""
        replies, failures = self._gather("evaluate", (pre, point))
        replies = self._complete_with_regenerated(
            replies,
            failures,
            lambda index: self.ring.evaluate(self.scheme.regenerate_share(pre, index), point),
            "evaluate",
        )
        vectors = {index: (value,) for index, value in replies.items()}
        self._verify_vectors(vectors, "evaluate")
        return self.scheme.combine_vectors(vectors)[0]

    def evaluate_batch(self, pres: List[int], point: int) -> List[int]:
        """Combined server-side evaluations for a whole candidate list."""
        pres = list(pres)
        if not pres:
            return []
        replies, failures = self._gather("evaluate_batch", (pres, point))

        def regenerate(index: int) -> List[int]:
            shares = [self.scheme.regenerate_share(pre, index) for pre in pres]
            return self.ring.evaluate_many(shares, point)

        replies = self._complete_with_regenerated(replies, failures, regenerate, "evaluate_batch")
        self._verify_vectors(replies, "evaluate_batch")
        return self.scheme.combine_values_many(replies)

    def evaluate_many(self, pres: List[int], point: int) -> List[int]:
        """Alias of :meth:`evaluate_batch` (protocol compatibility)."""
        return self.evaluate_batch(pres, point)

    def fetch_share(self, pre: int) -> List[int]:
        """The *combined* server-share coefficients of node ``pre``."""
        replies, failures = self._gather("fetch_share", (pre,))
        replies = self._complete_with_regenerated(
            replies,
            failures,
            lambda index: list(self.scheme.regenerate_share(pre, index).coeffs),
            "fetch_share",
        )
        self._verify_vectors(replies, "fetch_share")
        return self.scheme.combine_vectors(replies)

    def fetch_shares_batch(self, pres: List[int]) -> List[List[int]]:
        """Combined share coefficients for all ``pres``, scatter-gathered.

        Per-server replies are flattened to one long vector so the scheme
        combines (and verifies) each batch with one kernel pass instead of
        one per node; the combination is component-wise linear, so the
        flattening is exact.
        """
        pres = list(pres)
        if not pres:
            return []
        replies, failures = self._gather("fetch_shares_batch", (pres,))

        def regenerate(index: int) -> List[List[int]]:
            return [list(self.scheme.regenerate_share(pre, index).coeffs) for pre in pres]

        replies = self._complete_with_regenerated(replies, failures, regenerate, "fetch_shares_batch")
        flat = {
            index: [value for vector in vectors for value in vector]
            for index, vectors in replies.items()
        }
        self._verify_vectors(flat, "fetch_shares_batch")
        combined = self.scheme.combine_vectors(flat)
        length = self.ring.length
        return [combined[start : start + length] for start in range(0, len(combined), length)]

    def fetch_shares(self, pres: List[int]) -> List[List[int]]:
        """Alias of :meth:`fetch_shares_batch` (protocol compatibility)."""
        return self.fetch_shares_batch(pres)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "ClusterClient(servers=%d, scheme=%s, quorum=%d)" % (
            self.num_servers,
            self.scheme.name,
            self._read_quorum,
        )
