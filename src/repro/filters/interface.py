"""The common ``Filter`` interface and the matching-rule enumeration."""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import List, Optional


class MatchRule(enum.Enum):
    """The two matching rules compared throughout section 6.

    * ``CONTAINMENT`` (non-strict): a single shared evaluation at the mapped
      tag value; zero means the tag occurs *somewhere in the node's subtree*.
    * ``EQUALITY`` (strict): reconstruct the node and all of its children and
      check that the node's own factor is exactly ``x − map(tag)``.
    """

    CONTAINMENT = "containment"
    EQUALITY = "equality"

    @property
    def is_strict(self) -> bool:
        """Strict checking corresponds to the equality test."""
        return self is MatchRule.EQUALITY

    @classmethod
    def from_strict_flag(cls, strict: bool) -> "MatchRule":
        """Map the paper's strict / non-strict terminology onto a rule."""
        return cls.EQUALITY if strict else cls.CONTAINMENT


class Filter(ABC):
    """Basic tree-structure and polynomial operations.

    Implemented by :class:`~repro.filters.server.ServerFilter` (operating on
    the stored shares) and :class:`~repro.filters.client.ClientFilter`
    (operating on regenerated shares and combining both sides).  All node
    references are ``pre`` numbers, which is what the relational encoding
    keys everything by.
    """

    @abstractmethod
    def root_pre(self) -> int:
        """The ``pre`` number of the document root."""

    @abstractmethod
    def children_of(self, pre: int) -> List[int]:
        """``pre`` numbers of the direct children of a node, document order."""

    @abstractmethod
    def descendants_of(self, pre: int) -> List[int]:
        """``pre`` numbers of all proper descendants of a node."""

    @abstractmethod
    def parent_of(self, pre: int) -> int:
        """``pre`` number of the parent (0 for the root)."""

    @abstractmethod
    def evaluate(self, pre: int, point: int) -> int:
        """Evaluate this side's share of node ``pre`` at ``point``."""

    @abstractmethod
    def node_count(self) -> int:
        """Total number of stored nodes."""
